//! Property-based tests shared by all baseline kernels: symmetry, bounds,
//! positive semidefiniteness of feature-map kernels, and behaviour of the
//! kernel-matrix utilities on random Gram matrices.

use haqjsk_graph::generators::{barabasi_albert, erdos_renyi, random_tree, watts_strogatz};
use haqjsk_graph::Graph;
use haqjsk_kernels::{
    DepthBasedAlignedKernel, GraphKernel, GraphletKernel, JensenTsallisKernel, KernelMatrix,
    QjskUnaligned, RandomWalkKernel, ShortestPathKernel, WeisfeilerLehmanKernel,
};
use haqjsk_linalg::Matrix;
use proptest::prelude::*;

fn random_graph(seed: u64, which: usize) -> Graph {
    match which % 4 {
        0 => erdos_renyi(5 + (seed % 6) as usize, 0.4, seed),
        1 => barabasi_albert(6 + (seed % 5) as usize, 2, seed),
        2 => watts_strogatz(7 + (seed % 5) as usize, 4, 0.25, seed),
        _ => random_tree(6 + (seed % 7) as usize, seed),
    }
}

fn classical_kernels() -> Vec<Box<dyn GraphKernel>> {
    vec![
        Box::new(WeisfeilerLehmanKernel::new(2)),
        Box::new(ShortestPathKernel::new()),
        Box::new(GraphletKernel::three_only()),
        Box::new(RandomWalkKernel::new(3, 0.1)),
        Box::new(DepthBasedAlignedKernel::new(3, 1.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every kernel is symmetric and produces finite, non-negative values on
    /// random graph pairs.
    #[test]
    fn kernels_are_symmetric_and_finite(seed_a in 0u64..300, seed_b in 0u64..300, fam_a in 0usize..4, fam_b in 0usize..4) {
        let a = random_graph(seed_a, fam_a);
        let b = random_graph(seed_b, fam_b);
        for kernel in classical_kernels() {
            let ab = kernel.compute(&a, &b);
            let ba = kernel.compute(&b, &a);
            prop_assert!(ab.is_finite(), "{}", kernel.name());
            prop_assert!(ab >= 0.0, "{}", kernel.name());
            prop_assert!((ab - ba).abs() < 1e-7, "{}: {ab} vs {ba}", kernel.name());
        }
    }

    /// Feature-map kernels (WL, SP, graphlet) produce PSD Gram matrices on
    /// random datasets.
    #[test]
    fn feature_map_kernels_are_psd(seed in 0u64..200, count in 4usize..8) {
        let graphs: Vec<Graph> = (0..count).map(|i| random_graph(seed + i as u64, i)).collect();
        for kernel in [
            &WeisfeilerLehmanKernel::new(2) as &dyn GraphKernel,
            &ShortestPathKernel::new(),
            &GraphletKernel::three_only(),
        ] {
            let gram = kernel.gram_matrix(&graphs);
            prop_assert!(
                gram.is_positive_semidefinite(1e-7).unwrap(),
                "{} should be PSD, min eigenvalue {}",
                kernel.name(),
                gram.min_eigenvalue().unwrap()
            );
        }
    }

    /// The unaligned QJSK kernel lies in (0, 1] with 1 exactly on identical
    /// graphs; the Weisfeiler-Lehman kernel dominates cross terms with its
    /// self-similarity (Cauchy-Schwarz).
    #[test]
    fn kernel_value_bounds(seed in 0u64..200) {
        let a = random_graph(seed, 0);
        let b = random_graph(seed + 17, 1);
        let qjsk = QjskUnaligned::default();
        let v = qjsk.compute(&a, &b);
        prop_assert!(v > 0.0 && v <= 1.0 + 1e-9);
        prop_assert!((qjsk.compute(&a, &a) - 1.0).abs() < 1e-9);

        let wl = WeisfeilerLehmanKernel::new(2);
        let ab = wl.compute(&a, &b);
        let aa = wl.compute(&a, &a);
        let bb = wl.compute(&b, &b);
        prop_assert!(ab * ab <= aa * bb + 1e-6);
    }

    /// Normalising any symmetric PSD Gram matrix keeps it PSD and bounds
    /// entries by 1; centring makes row sums vanish.
    #[test]
    fn kernel_matrix_utilities(raw in proptest::collection::vec(0.0..2.0f64, 25)) {
        let m = Matrix::from_vec(5, 5, raw).unwrap();
        // Make it symmetric PSD via M Mᵀ.
        let psd = m.matmul(&m.transpose()).unwrap();
        let gram = KernelMatrix::new(psd).unwrap();
        let normalized = gram.normalized();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!(normalized.get(i, j).abs() <= 1.0 + 1e-9);
            }
        }
        prop_assert!(normalized.is_positive_semidefinite(1e-7).unwrap());
        let centered = gram.centered();
        for i in 0..5 {
            let s: f64 = (0..5).map(|j| centered.get(i, j)).sum();
            prop_assert!(s.abs() < 1e-8);
        }
        // PSD projection never lowers the minimum eigenvalue below zero.
        let projected = gram.project_psd().unwrap();
        prop_assert!(projected.min_eigenvalue().unwrap() >= -1e-8);
    }

    /// The simplified JTQK kernel stays within [0, 1] and is symmetric.
    #[test]
    fn jtqk_bounds(seed in 0u64..100) {
        let a = random_graph(seed, 2);
        let b = random_graph(seed + 31, 3);
        let kernel = JensenTsallisKernel::new(2.0, 2);
        let ab = kernel.compute(&a, &b);
        prop_assert!(ab >= 0.0 && ab <= 1.0 + 1e-9);
        prop_assert!((ab - kernel.compute(&b, &a)).abs() < 1e-9);
    }

    /// WL and SP kernels are invariant under vertex relabelling.
    #[test]
    fn r_convolution_kernels_are_permutation_invariant(seed in 0u64..150) {
        let g = random_graph(seed, 1);
        let n = g.num_vertices();
        let perm: Vec<usize> = (0..n).rev().collect();
        let h = g.permute(&perm).unwrap();
        let probe = random_graph(seed + 5, 2);
        for kernel in [
            &WeisfeilerLehmanKernel::new(2) as &dyn GraphKernel,
            &ShortestPathKernel::new(),
            &GraphletKernel::three_only(),
        ] {
            let before = kernel.compute(&g, &probe);
            let after = kernel.compute(&h, &probe);
            prop_assert!((before - after).abs() < 1e-8, "{}", kernel.name());
        }
    }
}
