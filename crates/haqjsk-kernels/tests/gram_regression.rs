//! Acceptance regression for the per-pair fast paths: the Gram matrices of
//! the three quantum kernels (unaligned QJSK, Umeyama-aligned QJSK, JTQK)
//! must match the pre-refactor algorithm — which recomputed every endpoint
//! entropy and alignment eigendecomposition from scratch inside the pair
//! loop — within 1e-9 on the 32-graph acceptance dataset.
//!
//! The legacy reference below replicates that algorithm through public
//! APIs; in particular it guards the entropy hoisting against
//! padded-vs-unpadded spectrum drift and the Umeyama basis reconstruction
//! against permutation flips.

use haqjsk_graph::generators::{barabasi_albert, cycle_graph, erdos_renyi, star_graph};
use haqjsk_graph::Graph;
use haqjsk_kernels::jtqk::jensen_tsallis_difference;
use haqjsk_kernels::{
    cached_alignment_basis, cached_ctqw_density, cached_graph_spectrals, clear_density_cache,
    GraphKernel, JensenTsallisKernel, QjskAligned, QjskUnaligned,
};
use haqjsk_quantum::{ctqw_density_infinite, qjsd, DensityMatrix};

/// The 32-graph synthetic acceptance dataset (mixed generator families,
/// mixed sizes so zero-padding paths are exercised).
fn acceptance_dataset() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(5 + i));
        graphs.push(star_graph(5 + i));
        graphs.push(erdos_renyi(6 + i, 0.35, i as u64));
        graphs.push(barabasi_albert(7 + i, 2, 100 + i as u64));
    }
    assert_eq!(graphs.len(), 32);
    graphs
}

fn densities(graphs: &[Graph]) -> Vec<DensityMatrix> {
    graphs
        .iter()
        .map(|g| ctqw_density_infinite(g).expect("non-empty graph"))
        .collect()
}

/// Pre-refactor unaligned QJSK pair value: zero-pad, then the full QJSD
/// with all three entropies recomputed from scratch.
fn legacy_unaligned(mu: f64, a: &DensityMatrix, b: &DensityMatrix) -> f64 {
    let n = a.dim().max(b.dim());
    let pa = a.zero_pad(n).unwrap();
    let pb = b.zero_pad(n).unwrap();
    (-mu * qjsd(&pa, &pb).unwrap()).exp()
}

/// Pre-refactor aligned QJSK pair value: Umeyama matching with both padded
/// densities eigendecomposed per pair, then the full QJSD.
fn legacy_aligned(mu: f64, a: &DensityMatrix, b: &DensityMatrix) -> f64 {
    let n = a.dim().max(b.dim());
    let pa = a.zero_pad(n).unwrap();
    let pb = b.zero_pad(n).unwrap();
    let perm = QjskAligned::umeyama_match(pa.matrix(), pb.matrix());
    let aligned_b = pb.permute(&perm).unwrap();
    (-mu * qjsd(&pa, &aligned_b).unwrap()).exp()
}

/// Pre-refactor JTQK pair value: Jensen–Tsallis difference of the padded
/// densities with all three Tsallis entropies recomputed, times the
/// per-pair-normalised WL factor.
fn legacy_jtqk(
    kernel: &JensenTsallisKernel,
    ga: &Graph,
    gb: &Graph,
    a: &DensityMatrix,
    b: &DensityMatrix,
) -> f64 {
    let n = a.dim().max(b.dim());
    let pa = a.zero_pad(n).unwrap();
    let pb = b.zero_pad(n).unwrap();
    let quantum = (-jensen_tsallis_difference(&pa, &pb, kernel.q)).exp();
    quantum * kernel.local_factor(ga, gb)
}

fn assert_gram_matches(
    name: &str,
    gram: &haqjsk_kernels::KernelMatrix,
    reference: impl Fn(usize, usize) -> f64,
) {
    let n = gram.len();
    let mut worst = 0.0_f64;
    for i in 0..n {
        for j in 0..n {
            let diff = (gram.get(i, j) - reference(i, j)).abs();
            worst = worst.max(diff);
            assert!(
                diff < 1e-9,
                "{name}: pair ({i},{j}) drifted by {diff} from the pre-refactor value"
            );
        }
    }
    println!("{name}: max drift from legacy path {worst:.3e}");
}

#[test]
fn unaligned_qjsk_gram_matches_pre_refactor_values() {
    let graphs = acceptance_dataset();
    let rhos = densities(&graphs);
    let kernel = QjskUnaligned::default();
    let gram = kernel.gram_matrix(&graphs);
    assert_gram_matches("QJSK (unaligned)", &gram, |i, j| {
        legacy_unaligned(kernel.mu, &rhos[i], &rhos[j])
    });
}

#[test]
fn aligned_qjsk_gram_matches_pre_refactor_values() {
    let graphs = acceptance_dataset();
    let rhos = densities(&graphs);
    let kernel = QjskAligned::default();
    let gram = kernel.gram_matrix(&graphs);
    assert_gram_matches("QJSK (aligned)", &gram, |i, j| {
        legacy_aligned(kernel.mu, &rhos[i], &rhos[j])
    });
}

#[test]
fn jtqk_gram_matches_pre_refactor_values() {
    let graphs = acceptance_dataset();
    let rhos = densities(&graphs);
    let kernel = JensenTsallisKernel::default();
    let gram = kernel.gram_matrix(&graphs);
    assert_gram_matches("JTQK", &gram, |i, j| {
        legacy_jtqk(&kernel, &graphs[i], &graphs[j], &rhos[i], &rhos[j])
    });
}

#[test]
fn clearing_the_density_cache_clears_derived_artifact_caches() {
    let g = cycle_graph(9);
    let _ = cached_ctqw_density(&g);
    let _ = cached_graph_spectrals(&g);
    let _ = cached_alignment_basis(&g);
    clear_density_cache();
    assert_eq!(
        haqjsk_kernels::features::spectral_cache().stats().entries,
        0
    );
    assert_eq!(
        haqjsk_kernels::features::alignment_cache().stats().entries,
        0
    );
    assert_eq!(haqjsk_kernels::features::density_cache().stats().entries, 0);
}
