//! Acceptance tests for the tile-batched Gram paths.
//!
//! 1. The tile-batched QJSK/JTQK Gram matrices (whole tiles of mixtures
//!    through one batched values-only eigensolve) must be **byte-identical**
//!    to the per-pair fallback on every execution backend — the batched
//!    eigensolver's bit-identity must survive the full kernel stack.
//! 2. JTQK's cached-WL local factor (content-hashed per-graph histograms,
//!    merge-join cross dot) must reproduce the original per-pair
//!    dictionary-based WL refinement within 1e-12 on the 32-graph
//!    acceptance dataset.

use haqjsk_engine::BackendKind;
use haqjsk_graph::generators::{barabasi_albert, cycle_graph, erdos_renyi, star_graph};
use haqjsk_graph::Graph;
use haqjsk_kernels::kernel::gram_from_pairwise_on;
use haqjsk_kernels::{GraphKernel, JensenTsallisKernel, QjskAligned, QjskUnaligned};
use std::collections::HashMap;

/// The 32-graph synthetic acceptance dataset (mixed generator families,
/// mixed sizes so zero-padding and dimension-class chunking are exercised).
fn acceptance_dataset() -> Vec<Graph> {
    let mut graphs = Vec::new();
    for i in 0..8 {
        graphs.push(cycle_graph(5 + i));
        graphs.push(star_graph(5 + i));
        graphs.push(erdos_renyi(6 + i, 0.35, i as u64));
        graphs.push(barabasi_albert(7 + i, 2, 100 + i as u64));
    }
    assert_eq!(graphs.len(), 32);
    graphs
}

fn assert_bytes_equal(name: &str, backend: BackendKind, tile: &[f64], pairwise: &[f64]) {
    assert_eq!(tile.len(), pairwise.len());
    for (k, (a, b)) in tile.iter().zip(pairwise).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name} on {backend}: entry {k} drifted ({a} vs {b})"
        );
    }
}

#[test]
fn tile_batched_gram_is_byte_identical_to_per_pair_on_all_backends() {
    let graphs = acceptance_dataset();
    let before = haqjsk_linalg::batch_solve_stats();
    let kernels: Vec<(&str, &dyn GraphKernel)> = vec![
        ("QJSK (unaligned)", &QjskUnaligned { mu: 1.0 }),
        ("QJSK (aligned)", &QjskAligned { mu: 1.0 }),
        (
            "JTQK",
            &JensenTsallisKernel {
                q: 2.0,
                wl_iterations: 3,
            },
        ),
    ];
    for (name, kernel) in kernels {
        // Per-pair reference: one pair at a time through the same cached
        // per-graph artifacts, scheduled by the same backend.
        for backend in BackendKind::ALL {
            let tile = kernel.gram_matrix_on(&graphs, Some(backend));
            let pairwise =
                gram_from_pairwise_on(&graphs, Some(backend), |a, b| kernel.compute(a, b));
            assert_bytes_equal(
                name,
                backend,
                tile.matrix().data(),
                pairwise.matrix().data(),
            );
        }
    }
    let after = haqjsk_linalg::batch_solve_stats();
    assert!(
        after.batched_matrices > before.batched_matrices,
        "the tile paths must actually route mixtures through the batched eigensolver"
    );
}

/// Forcing each compiled eigensolver SIMD path must leave every tile-batched
/// Gram matrix byte-identical: the explicit-SIMD lanes are a pure execution
/// strategy, invisible in the numbers all the way up the kernel stack. The
/// scalar-forced Gram is the reference; each other available ISA is forced
/// via the process-global override and compared entry by entry.
#[test]
fn forced_simd_paths_leave_grams_byte_identical() {
    struct ClearOverride;
    impl Drop for ClearOverride {
        fn drop(&mut self) {
            haqjsk_linalg::set_simd_path(None).expect("clearing the override never fails");
        }
    }

    let graphs = acceptance_dataset();
    let kernels: Vec<(&str, &dyn GraphKernel)> = vec![
        ("QJSK (unaligned)", &QjskUnaligned { mu: 1.0 }),
        ("QJSK (aligned)", &QjskAligned { mu: 1.0 }),
        (
            "JTQK",
            &JensenTsallisKernel {
                q: 2.0,
                wl_iterations: 3,
            },
        ),
    ];
    let _guard = ClearOverride;
    for (name, kernel) in kernels {
        haqjsk_linalg::set_simd_path(Some(haqjsk_linalg::SimdPath::Scalar)).unwrap();
        let reference = kernel.gram_matrix(&graphs);
        for path in haqjsk_linalg::available_simd_paths() {
            if path == haqjsk_linalg::SimdPath::Scalar {
                continue;
            }
            haqjsk_linalg::set_simd_path(Some(path)).unwrap();
            let forced = kernel.gram_matrix(&graphs);
            for (k, (a, b)) in forced
                .matrix()
                .data()
                .iter()
                .zip(reference.matrix().data())
                .enumerate()
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name} with forced '{}' lanes: Gram entry {k} drifted ({a} vs {b})",
                    path.label()
                );
            }
        }
    }
}

/// The original dictionary-based WL refinement (pre-content-hashing), as the
/// JTQK local factor ran it per pair: a joint two-graph refinement with a
/// shared compressed-label dictionary, reproduced here as the regression
/// reference for the cached-histogram local factor.
fn legacy_wl_feature_maps(iterations: usize, graphs: &[Graph]) -> Vec<HashMap<u64, f64>> {
    let mut features: Vec<HashMap<u64, f64>> = vec![HashMap::new(); graphs.len()];
    let mut labels: Vec<Vec<u64>> = graphs
        .iter()
        .map(|g| g.effective_labels().iter().map(|&l| l as u64).collect())
        .collect();
    let mut dictionary: HashMap<String, u64> = HashMap::new();
    let mut next_label: u64 = 1_000_000;

    for (gi, graph_labels) in labels.iter().enumerate() {
        for &label in graph_labels {
            *features[gi].entry(label).or_insert(0.0) += 1.0;
        }
    }
    for round in 0..iterations {
        let round_offset = (round as u64 + 1) << 32;
        let mut new_labels: Vec<Vec<u64>> = Vec::with_capacity(graphs.len());
        for (gi, graph) in graphs.iter().enumerate() {
            let mut updated = Vec::with_capacity(graph.num_vertices());
            for v in 0..graph.num_vertices() {
                let mut neigh: Vec<u64> = graph.neighbors(v).map(|u| labels[gi][u]).collect();
                neigh.sort_unstable();
                let signature = format!("{}|{:?}", labels[gi][v], neigh);
                let compressed = *dictionary.entry(signature).or_insert_with(|| {
                    next_label += 1;
                    next_label
                });
                updated.push(compressed);
            }
            new_labels.push(updated);
        }
        labels = new_labels;
        for (gi, graph_labels) in labels.iter().enumerate() {
            for &label in graph_labels {
                *features[gi].entry(round_offset ^ label).or_insert(0.0) += 1.0;
            }
        }
    }
    features
}

fn legacy_dot(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter_map(|(k, va)| large.get(k).map(|vb| va * vb))
        .sum()
}

fn legacy_local_factor(iterations: usize, a: &Graph, b: &Graph) -> f64 {
    let maps = legacy_wl_feature_maps(iterations, &[a.clone(), b.clone()]);
    let ab = legacy_dot(&maps[0], &maps[1]);
    let aa = legacy_dot(&maps[0], &maps[0]);
    let bb = legacy_dot(&maps[1], &maps[1]);
    if aa <= 0.0 || bb <= 0.0 {
        0.0
    } else {
        ab / (aa * bb).sqrt()
    }
}

#[test]
fn jtqk_cached_wl_local_factor_matches_direct_refinement() {
    let graphs = acceptance_dataset();
    let kernel = JensenTsallisKernel::default();
    let gram = kernel.gram_matrix(&graphs);
    let mut worst = 0.0_f64;
    for i in 0..graphs.len() {
        for j in i..graphs.len() {
            let reference = kernel.quantum_factor(&graphs[i], &graphs[j])
                * legacy_local_factor(kernel.wl_iterations, &graphs[i], &graphs[j]);
            let diff = (gram.get(i, j) - reference).abs();
            worst = worst.max(diff);
            assert!(
                diff < 1e-12,
                "pair ({i},{j}): cached-WL local factor drifted by {diff} from the \
                 direct per-pair refinement"
            );
        }
    }
    println!("JTQK cached-WL local factor: max drift {worst:.3e}");
}

#[test]
fn jtqk_local_factor_stays_in_unit_interval_and_normalises_self() {
    let kernel = JensenTsallisKernel::default();
    let graphs = acceptance_dataset();
    for g in graphs.iter().take(6) {
        let self_factor = kernel.local_factor(g, g);
        assert!(
            (self_factor - 1.0).abs() < 1e-12,
            "self similarity normalises to 1"
        );
    }
    let cross = kernel.local_factor(&graphs[0], &graphs[5]);
    assert!((0.0..=1.0 + 1e-12).contains(&cross));
}
