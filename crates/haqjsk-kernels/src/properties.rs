//! Static property tables of the paper (Table I and Table III).
//!
//! Table I summarises which theoretical properties each kernel family has
//! (positive definiteness, tottering reduction, structural / transitive
//! alignment, local / global information, hierarchical alignment); Table III
//! records the design axes of the concrete comparison kernels. Both are
//! fixed facts about the methods rather than measured quantities, so they are
//! encoded as data and rendered by the benchmark harness.

/// Tri-state answer used in the paper's property tables: yes, no, or "the
/// kernel does not refer to this problem" (rendered as "-").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyAnswer {
    /// The kernel family has the property.
    Yes,
    /// The kernel family does not have the property.
    No,
    /// The property is not applicable to this family.
    NotApplicable,
}

impl PropertyAnswer {
    /// Table cell rendering used by the harness.
    pub fn symbol(self) -> &'static str {
        match self {
            PropertyAnswer::Yes => "Yes",
            PropertyAnswer::No => "No",
            PropertyAnswer::NotApplicable => "-",
        }
    }
}

/// One row of Table I: the property profile of a kernel family.
#[derive(Debug, Clone)]
pub struct KernelFamilyProperties {
    /// Family name as used in the paper.
    pub family: &'static str,
    /// Positive definite?
    pub positive_definite: PropertyAnswer,
    /// Reduces tottering?
    pub reduce_tottering: PropertyAnswer,
    /// Uses structural alignment?
    pub structural_alignment: PropertyAnswer,
    /// Alignment is transitive?
    pub transitive_alignment: PropertyAnswer,
    /// Captures local information?
    pub local_information: PropertyAnswer,
    /// Captures global information?
    pub global_information: PropertyAnswer,
    /// Uses hierarchical alignment?
    pub hierarchical_alignment: PropertyAnswer,
}

/// The rows of Table I, in the paper's order.
pub fn table1_kernel_family_properties() -> Vec<KernelFamilyProperties> {
    use PropertyAnswer::{No, NotApplicable as Na, Yes};
    vec![
        KernelFamilyProperties {
            family: "HAQJSK",
            positive_definite: Yes,
            reduce_tottering: Yes,
            structural_alignment: Yes,
            transitive_alignment: Yes,
            local_information: Yes,
            global_information: Yes,
            hierarchical_alignment: Yes,
        },
        KernelFamilyProperties {
            family: "QJSK",
            positive_definite: No,
            reduce_tottering: Yes,
            structural_alignment: Yes,
            transitive_alignment: No,
            local_information: Yes,
            global_information: Yes,
            hierarchical_alignment: No,
        },
        KernelFamilyProperties {
            family: "DBAK",
            positive_definite: No,
            reduce_tottering: Na,
            structural_alignment: Yes,
            transitive_alignment: No,
            local_information: Yes,
            global_information: No,
            hierarchical_alignment: No,
        },
        KernelFamilyProperties {
            family: "R-convolution kernels",
            positive_definite: Yes,
            reduce_tottering: Na,
            structural_alignment: No,
            transitive_alignment: No,
            local_information: Yes,
            global_information: No,
            hierarchical_alignment: Na,
        },
        KernelFamilyProperties {
            family: "Global graph kernels",
            positive_definite: Yes,
            reduce_tottering: Na,
            structural_alignment: No,
            transitive_alignment: No,
            local_information: No,
            global_information: Yes,
            hierarchical_alignment: Na,
        },
    ]
}

/// One row of Table III: the design axes of a concrete comparison kernel.
#[derive(Debug, Clone)]
pub struct ComparisonKernelInfo {
    /// Kernel acronym.
    pub name: &'static str,
    /// Kernel framework (information theory / R-convolution).
    pub framework: &'static str,
    /// Whether the kernel aligns vertices.
    pub aligned: bool,
    /// Whether the alignment (if any) is transitive.
    pub transitive: bool,
    /// Which structure patterns the kernel compares.
    pub structure_patterns: &'static str,
    /// Computing model (quantum walks vs classical).
    pub computing_model: &'static str,
}

/// The rows of Table III, in the paper's order (restricted to the kernels
/// implemented in this workspace).
pub fn table3_comparison_kernels() -> Vec<ComparisonKernelInfo> {
    vec![
        ComparisonKernelInfo {
            name: "HAQJSK(A)",
            framework: "Information theory",
            aligned: true,
            transitive: true,
            structure_patterns: "Global structures",
            computing_model: "Quantum walks",
        },
        ComparisonKernelInfo {
            name: "HAQJSK(D)",
            framework: "Information theory",
            aligned: true,
            transitive: true,
            structure_patterns: "Local (vertices) + global",
            computing_model: "Quantum walks",
        },
        ComparisonKernelInfo {
            name: "QJSK",
            framework: "Information theory",
            aligned: false,
            transitive: false,
            structure_patterns: "Global (entropy)",
            computing_model: "Quantum walks",
        },
        ComparisonKernelInfo {
            name: "ASK / DBAK",
            framework: "Information theory + R-convolution",
            aligned: true,
            transitive: false,
            structure_patterns: "Local (vertices / subtrees)",
            computing_model: "Classical",
        },
        ComparisonKernelInfo {
            name: "JTQK",
            framework: "Information theory + R-convolution",
            aligned: false,
            transitive: false,
            structure_patterns: "Global (entropy) + local (subtrees)",
            computing_model: "Quantum walks",
        },
        ComparisonKernelInfo {
            name: "GCGK",
            framework: "R-convolution",
            aligned: false,
            transitive: false,
            structure_patterns: "Local (subgraphs)",
            computing_model: "Classical",
        },
        ComparisonKernelInfo {
            name: "WLSK",
            framework: "R-convolution",
            aligned: false,
            transitive: false,
            structure_patterns: "Local (subtrees)",
            computing_model: "Classical",
        },
        ComparisonKernelInfo {
            name: "SPGK",
            framework: "R-convolution",
            aligned: false,
            transitive: false,
            structure_patterns: "Local (paths)",
            computing_model: "Classical",
        },
        ComparisonKernelInfo {
            name: "Random walk",
            framework: "R-convolution",
            aligned: false,
            transitive: false,
            structure_patterns: "Local (walks)",
            computing_model: "Classical",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_haqjsk_with_all_properties() {
        let rows = table1_kernel_family_properties();
        let haqjsk = rows.iter().find(|r| r.family == "HAQJSK").unwrap();
        assert_eq!(haqjsk.positive_definite, PropertyAnswer::Yes);
        assert_eq!(haqjsk.transitive_alignment, PropertyAnswer::Yes);
        assert_eq!(haqjsk.hierarchical_alignment, PropertyAnswer::Yes);
        // Only HAQJSK has transitive alignment in the paper's table.
        let transitive: Vec<&str> = rows
            .iter()
            .filter(|r| r.transitive_alignment == PropertyAnswer::Yes)
            .map(|r| r.family)
            .collect();
        assert_eq!(transitive, vec!["HAQJSK"]);
    }

    #[test]
    fn table1_qjsk_is_not_positive_definite() {
        let rows = table1_kernel_family_properties();
        let qjsk = rows.iter().find(|r| r.family == "QJSK").unwrap();
        assert_eq!(qjsk.positive_definite, PropertyAnswer::No);
        assert_eq!(qjsk.global_information, PropertyAnswer::Yes);
    }

    #[test]
    fn table3_has_expected_structure() {
        let rows = table3_comparison_kernels();
        assert!(rows.len() >= 8);
        let aligned_and_transitive: Vec<&str> = rows
            .iter()
            .filter(|r| r.aligned && r.transitive)
            .map(|r| r.name)
            .collect();
        assert_eq!(aligned_and_transitive, vec!["HAQJSK(A)", "HAQJSK(D)"]);
        assert!(rows
            .iter()
            .any(|r| r.name == "WLSK" && r.computing_model == "Classical"));
    }

    #[test]
    fn symbols_render() {
        assert_eq!(PropertyAnswer::Yes.symbol(), "Yes");
        assert_eq!(PropertyAnswer::No.symbol(), "No");
        assert_eq!(PropertyAnswer::NotApplicable.symbol(), "-");
    }
}
