//! Nyström low-rank approximation of kernel matrices.
//!
//! The complexity analysis of Sec. III-D makes the quadratic number of kernel
//! evaluations the dominant cost on large corpora (RED-B with 2000 graphs,
//! COLLAB with 5000). The Nyström method replaces the full `N × N` Gram
//! matrix by `K ≈ C W⁺ Cᵀ`, where `C` holds the kernel values against `m ≪ N`
//! landmark graphs and `W` is the landmark-landmark block — reducing the
//! number of kernel evaluations from `N(N+1)/2` to `m·N`. This module
//! implements landmark selection, the pseudo-inverse through the symmetric
//! eigendecomposition, and reconstruction / feature-map extraction.

use crate::kernel::GraphKernel;
use crate::matrix::KernelMatrix;
use haqjsk_graph::Graph;
use haqjsk_linalg::{symmetric_eigen, LinalgError, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How landmark graphs are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkSelection {
    /// The first `m` graphs of the dataset (deterministic, order-dependent).
    First,
    /// A uniformly random subset of size `m`, driven by the given seed.
    Uniform {
        /// RNG seed for the subset draw.
        seed: u64,
    },
}

/// A Nyström approximation of a kernel's Gram matrix over a dataset.
#[derive(Debug, Clone)]
pub struct NystromApproximation {
    /// Indices of the landmark graphs within the dataset.
    pub landmarks: Vec<usize>,
    /// `N × m` cross-kernel block `C` (dataset vs landmarks).
    cross: Matrix,
    /// Pseudo-inverse `W⁺` of the landmark-landmark block.
    w_pinv: Matrix,
}

impl NystromApproximation {
    /// Builds the approximation by evaluating the kernel only against the
    /// `num_landmarks` selected landmark graphs.
    pub fn fit(
        kernel: &dyn GraphKernel,
        graphs: &[Graph],
        num_landmarks: usize,
        selection: LandmarkSelection,
    ) -> Result<Self, LinalgError> {
        let n = graphs.len();
        if n == 0 {
            return Err(LinalgError::InvalidArgument(
                "cannot approximate an empty dataset".to_string(),
            ));
        }
        let m = num_landmarks.clamp(1, n);
        let landmarks: Vec<usize> = match selection {
            LandmarkSelection::First => (0..m).collect(),
            LandmarkSelection::Uniform { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut rng);
                let mut chosen: Vec<usize> = all.into_iter().take(m).collect();
                chosen.sort_unstable();
                chosen
            }
        };

        // Cross block C (N x m): kernel of every graph against every landmark.
        let mut cross = Matrix::zeros(n, m);
        for (col, &l) in landmarks.iter().enumerate() {
            for row in 0..n {
                cross[(row, col)] = kernel.compute(&graphs[row], &graphs[l]);
            }
        }
        // Landmark block W (m x m) is a sub-block of C.
        let mut w = Matrix::zeros(m, m);
        for (i, &li) in landmarks.iter().enumerate() {
            for j in 0..m {
                w[(i, j)] = cross[(li, j)];
            }
        }
        let w_pinv = pseudo_inverse(&w.symmetrize()?)?;
        Ok(NystromApproximation {
            landmarks,
            cross,
            w_pinv,
        })
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of dataset items covered.
    pub fn len(&self) -> usize {
        self.cross.rows()
    }

    /// Whether the approximation covers an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The approximated full Gram matrix `C W⁺ Cᵀ`, wrapped as a
    /// [`KernelMatrix`]. By construction it is symmetric PSD whenever the
    /// landmark block is.
    pub fn reconstruct(&self) -> Result<KernelMatrix, LinalgError> {
        let cw = self.cross.matmul(&self.w_pinv)?;
        let full = cw.matmul(&self.cross.transpose())?;
        KernelMatrix::new(full.symmetrize()?)
    }

    /// Explicit feature map `Φ = C (W⁺)^{1/2}` such that `Φ Φᵀ` equals the
    /// reconstruction; each row is an `m`-dimensional embedding of one graph
    /// that can be fed to linear models directly.
    pub fn feature_map(&self) -> Result<Matrix, LinalgError> {
        let eig = symmetric_eigen(&self.w_pinv)?;
        let sqrt = eig.map_spectrum(|l| if l > 0.0 { l.sqrt() } else { 0.0 });
        self.cross.matmul(&sqrt)
    }
}

/// Moore–Penrose pseudo-inverse of a symmetric matrix through its
/// eigendecomposition, discarding eigenvalues below a relative tolerance.
fn pseudo_inverse(symmetric: &Matrix) -> Result<Matrix, LinalgError> {
    let eig = symmetric_eigen(symmetric)?;
    let scale = eig
        .eigenvalues
        .iter()
        .fold(0.0_f64, |acc, &l| acc.max(l.abs()));
    let tol = 1e-10 * scale.max(1.0);
    Ok(eig.map_spectrum(|l| if l.abs() > tol { 1.0 / l } else { 0.0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wl::WeisfeilerLehmanKernel;
    use haqjsk_graph::generators::{barabasi_albert, cycle_graph, path_graph, star_graph};

    fn dataset() -> Vec<Graph> {
        let mut graphs = Vec::new();
        for i in 0..6 {
            graphs.push(cycle_graph(7 + i % 3));
            graphs.push(star_graph(7 + i % 3));
            graphs.push(path_graph(8 + i % 2));
            graphs.push(barabasi_albert(8 + i % 3, 2, i as u64));
        }
        graphs
    }

    #[test]
    fn full_rank_nystrom_reproduces_the_exact_gram_matrix() {
        let graphs = dataset();
        let kernel = WeisfeilerLehmanKernel::new(2);
        let exact = kernel.gram_matrix(&graphs);
        // Using every graph as a landmark the approximation is exact.
        let nystrom =
            NystromApproximation::fit(&kernel, &graphs, graphs.len(), LandmarkSelection::First)
                .unwrap();
        let approx = nystrom.reconstruct().unwrap();
        let err = (approx.matrix() - exact.matrix()).max_abs();
        let scale = exact.matrix().max_abs();
        assert!(err / scale < 1e-6, "relative error {err}");
    }

    #[test]
    fn low_rank_approximation_is_close_and_psd() {
        let graphs = dataset();
        let kernel = WeisfeilerLehmanKernel::new(2);
        let exact = kernel.gram_matrix(&graphs);
        let nystrom =
            NystromApproximation::fit(&kernel, &graphs, 8, LandmarkSelection::Uniform { seed: 3 })
                .unwrap();
        assert_eq!(nystrom.num_landmarks(), 8);
        assert_eq!(nystrom.len(), graphs.len());
        assert!(!nystrom.is_empty());
        let approx = nystrom.reconstruct().unwrap();
        assert!(approx.is_positive_semidefinite(1e-6).unwrap());
        // The dataset only contains four structural families, so a rank-8
        // approximation should capture most of the Gram matrix.
        let rel_err =
            (approx.matrix() - exact.matrix()).frobenius_norm() / exact.matrix().frobenius_norm();
        assert!(rel_err < 0.25, "relative Frobenius error {rel_err}");
    }

    #[test]
    fn feature_map_reproduces_the_reconstruction() {
        let graphs = dataset();
        let kernel = WeisfeilerLehmanKernel::new(2);
        let nystrom =
            NystromApproximation::fit(&kernel, &graphs, 6, LandmarkSelection::First).unwrap();
        let phi = nystrom.feature_map().unwrap();
        assert_eq!(phi.shape(), (graphs.len(), 6));
        let via_features = phi.matmul(&phi.transpose()).unwrap();
        let direct = nystrom.reconstruct().unwrap();
        assert!((&via_features - direct.matrix()).max_abs() < 1e-6);
    }

    #[test]
    fn landmark_selection_variants() {
        let graphs = dataset();
        let kernel = WeisfeilerLehmanKernel::new(1);
        let first =
            NystromApproximation::fit(&kernel, &graphs, 4, LandmarkSelection::First).unwrap();
        assert_eq!(first.landmarks, vec![0, 1, 2, 3]);
        let uniform =
            NystromApproximation::fit(&kernel, &graphs, 4, LandmarkSelection::Uniform { seed: 11 })
                .unwrap();
        assert_eq!(uniform.num_landmarks(), 4);
        // Landmarks are valid, sorted and unique.
        for w in uniform.landmarks.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(uniform.landmarks.iter().all(|&l| l < graphs.len()));
        // Requesting more landmarks than graphs clamps.
        let clamped =
            NystromApproximation::fit(&kernel, &graphs[..3], 10, LandmarkSelection::First).unwrap();
        assert_eq!(clamped.num_landmarks(), 3);
        // Empty datasets are rejected.
        assert!(NystromApproximation::fit(&kernel, &[], 2, LandmarkSelection::First).is_err());
    }
}
