//! Classical random-walk kernel.
//!
//! The marginalised random-walk kernel of Kashima et al. counts pairs of
//! walks of equal length in the two graphs. On the direct product graph
//! `G_× = G_p × G_q` this reduces to sums of powers of the product adjacency
//! matrix:
//!
//! ```text
//! k_RW(G_p, G_q) = Σ_{ℓ=1..L} λ^ℓ · 1ᵀ A_×^ℓ 1
//! ```
//!
//! with a decay factor `λ` small enough for the series to stay bounded. The
//! implementation builds the (label-consistent) direct product adjacency and
//! iterates matrix-vector products, so one pair costs `O(L · |E_×|)`-ish work
//! on the dense product matrix. This is the "tottering" R-convolution
//! baseline the paper contrasts the CTQW against.

use crate::kernel::GraphKernel;
use haqjsk_graph::Graph;
use haqjsk_linalg::Matrix;

/// Fixed-length decayed random-walk kernel on the direct product graph.
#[derive(Debug, Clone)]
pub struct RandomWalkKernel {
    /// Maximum walk length `L`.
    pub max_length: usize,
    /// Per-step decay factor `λ`.
    pub decay: f64,
    /// Whether product vertices must agree on their (effective) labels.
    pub respect_labels: bool,
}

impl Default for RandomWalkKernel {
    fn default() -> Self {
        RandomWalkKernel {
            max_length: 6,
            decay: 0.1,
            respect_labels: false,
        }
    }
}

impl RandomWalkKernel {
    /// Creates an unlabelled random-walk kernel with the given length and
    /// decay.
    pub fn new(max_length: usize, decay: f64) -> Self {
        RandomWalkKernel {
            max_length,
            decay,
            respect_labels: false,
        }
    }

    /// Adjacency matrix of the direct (tensor) product graph. Vertex `(u, v)`
    /// of the product is indexed as `u * |V_q| + v`; two product vertices are
    /// adjacent iff both projections are adjacent (and labels agree when
    /// `respect_labels` is set).
    pub fn product_adjacency(&self, p: &Graph, q: &Graph) -> Matrix {
        let np = p.num_vertices();
        let nq = q.num_vertices();
        let labels_p = p.effective_labels();
        let labels_q = q.effective_labels();
        let mut adj = Matrix::zeros(np * nq, np * nq);
        for (u1, u2) in p.edges() {
            for (v1, v2) in q.edges() {
                // Four orientations of matching the two edges.
                let pairs = [
                    ((u1, v1), (u2, v2)),
                    ((u1, v2), (u2, v1)),
                    ((u2, v1), (u1, v2)),
                    ((u2, v2), (u1, v1)),
                ];
                for ((a1, b1), (a2, b2)) in pairs {
                    if self.respect_labels
                        && (labels_p[a1] != labels_q[b1] || labels_p[a2] != labels_q[b2])
                    {
                        continue;
                    }
                    let i = a1 * nq + b1;
                    let j = a2 * nq + b2;
                    adj[(i, j)] = 1.0;
                    adj[(j, i)] = 1.0;
                }
            }
        }
        adj
    }
}

impl GraphKernel for RandomWalkKernel {
    fn name(&self) -> &'static str {
        "Random walk"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        let adj = self.product_adjacency(a, b);
        let n = adj.rows();
        if n == 0 {
            return 0.0;
        }
        // Iterate x_{ℓ} = A_× x_{ℓ-1} starting from the all-ones vector; the
        // walk count of length ℓ is 1ᵀ x_ℓ.
        let mut x = vec![1.0_f64; n];
        let mut total = 0.0;
        let mut decay_pow = 1.0;
        for _ in 1..=self.max_length {
            x = adj.matvec(&x).expect("square product matrix");
            decay_pow *= self.decay;
            total += decay_pow * x.iter().sum::<f64>();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn product_adjacency_shape_and_symmetry() {
        let kernel = RandomWalkKernel::default();
        let p = path_graph(3);
        let q = cycle_graph(4);
        let adj = kernel.product_adjacency(&p, &q);
        assert_eq!(adj.shape(), (12, 12));
        assert!(adj.is_symmetric(0.0));
    }

    #[test]
    fn kernel_on_single_edges() {
        // Product of two single edges has 4 product vertices forming two
        // disjoint edges; the number of length-1 walks is 4 (directed), so
        // k = decay * 4 for L = 1.
        let e = path_graph(2);
        let kernel = RandomWalkKernel::new(1, 0.5);
        let v = kernel.compute(&e, &e);
        assert!((v - 0.5 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_and_monotonicity_in_length() {
        let a = cycle_graph(5);
        let b = star_graph(5);
        let short = RandomWalkKernel::new(2, 0.1);
        let long = RandomWalkKernel::new(6, 0.1);
        assert!((short.compute(&a, &b) - short.compute(&b, &a)).abs() < 1e-9);
        assert!(long.compute(&a, &b) >= short.compute(&a, &b));
    }

    #[test]
    fn denser_graphs_have_larger_kernel_values() {
        let kernel = RandomWalkKernel::default();
        let sparse = path_graph(5);
        let dense = complete_graph(5);
        assert!(kernel.compute(&dense, &dense) > kernel.compute(&sparse, &sparse));
    }

    #[test]
    fn label_constraint_reduces_value() {
        let mut a = path_graph(4);
        let mut b = path_graph(4);
        a.set_labels(vec![1, 1, 1, 1]).unwrap();
        b.set_labels(vec![1, 1, 2, 2]).unwrap();
        let unlabelled = RandomWalkKernel::new(4, 0.2);
        let labelled = RandomWalkKernel {
            max_length: 4,
            decay: 0.2,
            respect_labels: true,
        };
        assert!(labelled.compute(&a, &b) < unlabelled.compute(&a, &b));
    }

    #[test]
    fn empty_product_yields_zero() {
        let kernel = RandomWalkKernel::default();
        let isolated = Graph::new(0);
        let g = path_graph(3);
        assert_eq!(kernel.compute(&isolated, &g), 0.0);
    }
}
