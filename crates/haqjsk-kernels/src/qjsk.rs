//! The original Quantum Jensen–Shannon kernels (Sec. II-D of the paper).
//!
//! Two baselines are implemented:
//!
//! * [`QjskUnaligned`] — `k_QJSU(G_p, G_q) = exp(-μ · D_QJS(ρ_p, ρ_q))`
//!   (Eq. 9–10), where the smaller density matrix is zero-padded so the
//!   composite state can be formed. The kernel value depends on the vertex
//!   order of the two graphs, i.e. it is **not** permutation invariant.
//! * [`QjskAligned`] — `k_QJSA(G_p, G_q) = exp(-μ · min_Q D_QJS(ρ_p, Qρ_qQᵀ))`
//!   (Eq. 11), where `Q` is the vertex correspondence estimated with
//!   Umeyama's spectral matching on the density-matrix eigenvectors. The
//!   alignment restores permutation invariance but is not transitive, so the
//!   kernel is still not guaranteed positive definite — exactly the drawback
//!   the HAQJSK kernels remove.

use crate::features::cached_ctqw_density;
use crate::kernel::{gram_from_indexed_prefetched, GraphKernel};
use crate::matrix::KernelMatrix;
use haqjsk_engine::BackendKind;
use haqjsk_graph::Graph;
use haqjsk_linalg::assignment::hungarian_max;
use haqjsk_linalg::{symmetric_eigen, Matrix};
use haqjsk_quantum::{qjsd, DensityMatrix};
use std::sync::{Arc, OnceLock};

/// Per-dataset pin of the cached densities: each graph resolves through the
/// process-global cache at most once per Gram computation (one hash + one
/// shard lock), and the held `Arc`s keep the values alive even if a byte
/// budget evicts them from the cache mid-computation — the pair loop then
/// reads a lock-free slot. Batched backends fill every slot as one parallel
/// batch through the prefetch hook; lazy backends fill on first touch.
struct PinnedDensities<'a> {
    graphs: &'a [Graph],
    slots: Vec<OnceLock<Arc<DensityMatrix>>>,
}

impl<'a> PinnedDensities<'a> {
    fn new(graphs: &'a [Graph]) -> Self {
        PinnedDensities {
            graphs,
            slots: graphs.iter().map(|_| OnceLock::new()).collect(),
        }
    }

    fn density(&self, i: usize) -> &DensityMatrix {
        self.slots[i].get_or_init(|| cached_ctqw_density(&self.graphs[i]))
    }
}

/// The unaligned QJSK kernel of Eq. (9).
#[derive(Debug, Clone)]
pub struct QjskUnaligned {
    /// Decay factor `μ` (the paper sets it to 1).
    pub mu: f64,
}

impl Default for QjskUnaligned {
    fn default() -> Self {
        QjskUnaligned { mu: 1.0 }
    }
}

impl QjskUnaligned {
    /// Creates the kernel with decay factor `mu`.
    pub fn new(mu: f64) -> Self {
        QjskUnaligned { mu }
    }

    fn kernel_from_densities(&self, a: &DensityMatrix, b: &DensityMatrix) -> f64 {
        let n = a.dim().max(b.dim());
        let pa = a.zero_pad(n).expect("padding up never fails");
        let pb = b.zero_pad(n).expect("padding up never fails");
        let d = qjsd(&pa, &pb).expect("equal dimensions after padding");
        (-self.mu * d).exp()
    }
}

impl GraphKernel for QjskUnaligned {
    fn name(&self) -> &'static str {
        "QJSK (unaligned)"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        let rho_a = cached_ctqw_density(a);
        let rho_b = cached_ctqw_density(b);
        self.kernel_from_densities(&rho_a, &rho_b)
    }

    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let pinned = PinnedDensities::new(graphs);
        gram_from_indexed_prefetched(
            graphs.len(),
            backend,
            |i| {
                let _ = pinned.density(i);
            },
            |i, j| self.kernel_from_densities(pinned.density(i), pinned.density(j)),
        )
    }
}

/// The Umeyama-aligned QJSK kernel of Eq. (11).
#[derive(Debug, Clone)]
pub struct QjskAligned {
    /// Decay factor `μ`.
    pub mu: f64,
}

impl Default for QjskAligned {
    fn default() -> Self {
        QjskAligned { mu: 1.0 }
    }
}

impl QjskAligned {
    /// Creates the kernel with decay factor `mu`.
    pub fn new(mu: f64) -> Self {
        QjskAligned { mu }
    }

    /// Umeyama spectral matching between two symmetric matrices of equal
    /// size: maximise `tr(Qᵀ |U_a| |U_b|ᵀ)` over permutations `Q`, where
    /// `U_a`, `U_b` are the eigenvector matrices. Returns the permutation
    /// `perm` such that vertex `i` of `a` is matched to vertex `perm[i]` of
    /// `b`.
    pub fn umeyama_match(a: &Matrix, b: &Matrix) -> Vec<usize> {
        let n = a.rows();
        debug_assert_eq!(n, b.rows());
        let ea = symmetric_eigen(a).expect("density matrices are symmetric");
        let eb = symmetric_eigen(b).expect("density matrices are symmetric");
        // Profit matrix of absolute eigenvector overlaps.
        let mut profit = vec![0.0_f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += ea.eigenvectors[(i, k)].abs() * eb.eigenvectors[(j, k)].abs();
                }
                profit[i * n + j] = acc;
            }
        }
        let (assignment, _) = hungarian_max(&profit, n);
        assignment
    }

    fn kernel_from_densities(&self, a: &DensityMatrix, b: &DensityMatrix) -> f64 {
        let n = a.dim().max(b.dim());
        let pa = a.zero_pad(n).expect("padding up never fails");
        let pb = b.zero_pad(n).expect("padding up never fails");
        // perm[i] = vertex of b matched to vertex i of a. Re-order b so that
        // its matched vertex sits at index i: new_b[i][j] = b[perm[i]][perm[j]].
        let perm = Self::umeyama_match(pa.matrix(), pb.matrix());
        let aligned_b = pb.permute(&perm).expect("valid permutation");
        let d = qjsd(&pa, &aligned_b).expect("equal dimensions after padding");
        (-self.mu * d).exp()
    }
}

impl GraphKernel for QjskAligned {
    fn name(&self) -> &'static str {
        "QJSK (Umeyama aligned)"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        let rho_a = cached_ctqw_density(a);
        let rho_b = cached_ctqw_density(b);
        self.kernel_from_densities(&rho_a, &rho_b)
    }

    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let pinned = PinnedDensities::new(graphs);
        gram_from_indexed_prefetched(
            graphs.len(),
            backend,
            |i| {
                let _ = pinned.density(i);
            },
            |i, j| self.kernel_from_densities(pinned.density(i), pinned.density(j)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn self_similarity_is_one() {
        let g = cycle_graph(6);
        let u = QjskUnaligned::default();
        let a = QjskAligned::default();
        assert!((u.compute(&g, &g) - 1.0).abs() < 1e-9);
        assert!((a.compute(&g, &g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn values_lie_in_unit_interval_and_are_symmetric() {
        let g1 = path_graph(5);
        let g2 = star_graph(7);
        for kernel in [
            &QjskUnaligned::default() as &dyn GraphKernel,
            &QjskAligned::default(),
        ] {
            let v12 = kernel.compute(&g1, &g2);
            let v21 = kernel.compute(&g2, &g1);
            assert!((v12 - v21).abs() < 1e-9, "{}", kernel.name());
            assert!(v12 > 0.0 && v12 <= 1.0 + 1e-12);
            assert!(v12 < 1.0, "distinct graphs should not be maximally similar");
        }
    }

    #[test]
    fn unaligned_kernel_is_sensitive_to_vertex_order() {
        // Comparing a star graph against a *relabelled copy of itself*
        // exposes the permutation-invariance failure the paper describes:
        // the unaligned kernel no longer reports maximal similarity, while
        // the Umeyama alignment recovers (most of) it.
        let g = star_graph(6);
        // Move the hub from vertex 0 to vertex 5.
        let perm = vec![5, 1, 2, 3, 4, 0];
        let relabelled = g.permute(&perm).unwrap();

        let unaligned = QjskUnaligned::default();
        let v_same = unaligned.compute(&g, &g);
        let v_perm = unaligned.compute(&g, &relabelled);
        assert!((v_same - 1.0).abs() < 1e-9);
        assert!(
            v_perm < 1.0 - 1e-6,
            "unaligned kernel should drop for an isomorphic but relabelled graph: {v_perm}"
        );

        let aligned = QjskAligned::default();
        let a_perm = aligned.compute(&g, &relabelled);
        assert!(
            a_perm > v_perm - 1e-12,
            "alignment should recover similarity lost to relabelling: {a_perm} vs {v_perm}"
        );
        assert!(
            a_perm > 1.0 - 1e-6,
            "Umeyama matching should realign the star hub exactly: {a_perm}"
        );
    }

    #[test]
    fn umeyama_match_recovers_identity_for_identical_matrices() {
        let g = path_graph(5);
        let rho = haqjsk_quantum::ctqw_density_infinite(&g).unwrap();
        let perm = QjskAligned::umeyama_match(rho.matrix(), rho.matrix());
        // Must be a permutation; for identical inputs the profit is maximised
        // on (a) the identity or (b) an automorphism of the graph.
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn gram_matrix_diagonal_is_one_after_padding() {
        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6)];
        let gram = QjskUnaligned::default().gram_matrix(&graphs);
        assert_eq!(gram.len(), 3);
        for i in 0..3 {
            assert!((gram.get(i, i) - 1.0).abs() < 1e-9);
        }
        let gram_a = QjskAligned::default().gram_matrix(&graphs);
        for i in 0..3 {
            assert!((gram_a.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..3 {
                assert!(gram_a.get(i, j) > 0.0);
            }
        }
    }

    #[test]
    fn decay_factor_scales_similarity() {
        let g1 = path_graph(6);
        let g2 = cycle_graph(6);
        let weak = QjskUnaligned::new(0.1).compute(&g1, &g2);
        let strong = QjskUnaligned::new(10.0).compute(&g1, &g2);
        assert!(weak > strong, "larger mu must decay similarity faster");
    }
}
