//! The original Quantum Jensen–Shannon kernels (Sec. II-D of the paper).
//!
//! Two baselines are implemented:
//!
//! * [`QjskUnaligned`] — `k_QJSU(G_p, G_q) = exp(-μ · D_QJS(ρ_p, ρ_q))`
//!   (Eq. 9–10), where the smaller density matrix is zero-padded so the
//!   composite state can be formed. The kernel value depends on the vertex
//!   order of the two graphs, i.e. it is **not** permutation invariant.
//! * [`QjskAligned`] — `k_QJSA(G_p, G_q) = exp(-μ · min_Q D_QJS(ρ_p, Qρ_qQᵀ))`
//!   (Eq. 11), where `Q` is the vertex correspondence estimated with
//!   Umeyama's spectral matching on the density-matrix eigenvectors. The
//!   alignment restores permutation invariance but is not transitive, so the
//!   kernel is still not guaranteed positive definite — exactly the drawback
//!   the HAQJSK kernels remove.

use crate::features::{
    cached_alignment_basis, cached_ctqw_density, cached_graph_spectrals, pad_to, AlignmentBasis,
};
use crate::kernel::{gram_from_tiles_spec, GraphKernel, PinnedFeatures};
use crate::matrix::KernelMatrix;
use haqjsk_engine::{BackendKind, RemoteGram};
use haqjsk_graph::Graph;
use haqjsk_linalg::assignment::hungarian_max;
use haqjsk_linalg::{symmetric_eigen, Matrix};
use haqjsk_quantum::{
    batch_mixture_entropies, qjsd_from_entropies, qjsd_with_entropies, DensityMatrix,
    MixtureEntropy,
};
use std::sync::Arc;

/// The per-graph artifacts the unaligned QJSK pair loop consumes: the CTQW
/// density and its von Neumann entropy. Everything else a pair needs — the
/// mixture spectrum — is genuinely pair-specific and is the single
/// values-only eigenvalue solve left in the loop.
struct SpectralInputs {
    density: Arc<DensityMatrix>,
    entropy: f64,
}

impl SpectralInputs {
    fn extract(graph: &Graph) -> SpectralInputs {
        SpectralInputs {
            density: cached_ctqw_density(graph),
            entropy: cached_graph_spectrals(graph).von_neumann_entropy,
        }
    }
}

/// [`SpectralInputs`] plus the Umeyama eigenvector-magnitude basis the
/// aligned kernel needs.
struct AlignedInputs {
    spectral: SpectralInputs,
    basis: Arc<AlignmentBasis>,
}

impl AlignedInputs {
    fn extract(graph: &Graph) -> AlignedInputs {
        // Basis first: its full decomposition warms the spectral cache, so
        // the entropy lookup below is a hit and a cold aligned Gram pays
        // one eigensolve per graph, not two.
        let basis = cached_alignment_basis(graph);
        AlignedInputs {
            spectral: SpectralInputs::extract(graph),
            basis,
        }
    }
}

/// The unaligned QJSK kernel of Eq. (9).
#[derive(Debug, Clone)]
pub struct QjskUnaligned {
    /// Decay factor `μ` (the paper sets it to 1).
    pub mu: f64,
}

impl Default for QjskUnaligned {
    fn default() -> Self {
        QjskUnaligned { mu: 1.0 }
    }
}

impl QjskUnaligned {
    /// Stable kernel identifier used by the distributed backend to
    /// reconstruct this kernel on a worker process.
    pub const REMOTE_KERNEL_ID: &'static str = "qjsk_unaligned";

    /// Creates the kernel with decay factor `mu`.
    pub fn new(mu: f64) -> Self {
        QjskUnaligned { mu }
    }

    /// Evaluates one tile of Gram entries over `graphs` — the remote
    /// serialisation boundary: a distributed worker receives the dataset
    /// once and then replays `(kernel id + params + index-pair tile)` work
    /// units through this entry point. Values are byte-identical to the
    /// in-process Gram paths (per-graph artifacts come from the same
    /// deterministic feature caches, and the batched mixture eigensolver is
    /// bit-identical per matrix regardless of batch composition).
    pub fn eval_tile(&self, graphs: &[Graph], pairs: &[(usize, usize)], out: &mut [f64]) {
        let pinned: PinnedFeatures<'_, SpectralInputs> = PinnedFeatures::new(graphs);
        self.kernel_tile(pairs, &pinned, out);
    }

    /// The pairwise fast path: zero-pad, then one values-only mixture solve
    /// against the precomputed endpoint entropies (which zero-padding leaves
    /// unchanged).
    fn kernel_from_inputs(&self, a: &SpectralInputs, b: &SpectralInputs) -> f64 {
        let n = a.density.dim().max(b.density.dim());
        let (mut sa, mut sb) = (None, None);
        let pa = pad_to(&a.density, n, &mut sa);
        let pb = pad_to(&b.density, n, &mut sb);
        let d = qjsd_with_entropies(pa, pb, a.entropy, b.entropy)
            .expect("equal dimensions after padding");
        (-self.mu * d).exp()
    }

    /// The whole-tile fast path: every pair of the tile contributes one
    /// padded mixture, all of which go through **one** batched values-only
    /// eigensolve; the entries then reduce through the same
    /// `qjsd_from_entropies` expression as the per-pair path, so the tile
    /// values are byte-identical to [`QjskUnaligned::kernel_from_inputs`].
    fn kernel_tile(
        &self,
        pairs: &[(usize, usize)],
        pinned: &PinnedFeatures<'_, SpectralInputs>,
        out: &mut [f64],
    ) {
        let inputs: Vec<(&SpectralInputs, &SpectralInputs)> = pairs
            .iter()
            .map(|&(i, j)| {
                (
                    pinned.get(i, SpectralInputs::extract),
                    pinned.get(j, SpectralInputs::extract),
                )
            })
            .collect();
        let mixtures: Vec<(&DensityMatrix, &DensityMatrix)> = inputs
            .iter()
            .map(|(a, b)| (&*a.density, &*b.density))
            .collect();
        let h_mix = batch_mixture_entropies(&mixtures, MixtureEntropy::VonNeumann)
            .expect("padded mixtures share a dimension");
        for (k, (a, b)) in inputs.iter().enumerate() {
            let d = qjsd_from_entropies(h_mix[k], a.entropy, b.entropy);
            out[k] = (-self.mu * d).exp();
        }
    }
}

impl GraphKernel for QjskUnaligned {
    fn name(&self) -> &'static str {
        "QJSK (unaligned)"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        self.kernel_from_inputs(&SpectralInputs::extract(a), &SpectralInputs::extract(b))
    }

    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let _timer = crate::kernel::time_kernel_gram(self.name());
        let pinned: PinnedFeatures<'_, SpectralInputs> = PinnedFeatures::new(graphs);
        let spec = RemoteGram {
            kernel_id: QjskUnaligned::REMOTE_KERNEL_ID,
            params: vec![("mu", self.mu)],
            graphs,
            artifact: None,
        };
        gram_from_tiles_spec(
            graphs.len(),
            backend,
            |i| {
                let _ = pinned.get(i, SpectralInputs::extract);
            },
            |pairs: &[(usize, usize)], out: &mut [f64]| self.kernel_tile(pairs, &pinned, out),
            Some(&spec),
        )
    }
}

/// The Umeyama-aligned QJSK kernel of Eq. (11).
#[derive(Debug, Clone)]
pub struct QjskAligned {
    /// Decay factor `μ`.
    pub mu: f64,
}

impl Default for QjskAligned {
    fn default() -> Self {
        QjskAligned { mu: 1.0 }
    }
}

impl QjskAligned {
    /// Stable kernel identifier used by the distributed backend to
    /// reconstruct this kernel on a worker process.
    pub const REMOTE_KERNEL_ID: &'static str = "qjsk_aligned";

    /// Creates the kernel with decay factor `mu`.
    pub fn new(mu: f64) -> Self {
        QjskAligned { mu }
    }

    /// Evaluates one tile of Gram entries over `graphs` — the remote
    /// serialisation boundary of the distributed backend (see
    /// [`QjskUnaligned::eval_tile`]); byte-identical to the in-process
    /// Gram paths.
    pub fn eval_tile(&self, graphs: &[Graph], pairs: &[(usize, usize)], out: &mut [f64]) {
        let pinned: PinnedFeatures<'_, AlignedInputs> = PinnedFeatures::new(graphs);
        self.kernel_tile(pairs, &pinned, out);
    }

    /// Umeyama spectral matching between two symmetric matrices of equal
    /// size: maximise `tr(Qᵀ |U_a| |U_b|ᵀ)` over permutations `Q`, where
    /// `U_a`, `U_b` are the eigenvector matrices. Returns the permutation
    /// `perm` such that vertex `i` of `a` is matched to vertex `perm[i]` of
    /// `b`.
    ///
    /// This entry point decomposes both matrices from scratch; the Gram
    /// pair loop instead reuses per-graph [`AlignmentBasis`] artifacts and
    /// goes through [`QjskAligned::umeyama_match_bases`], which produces
    /// the identical permutation without any per-pair eigendecomposition.
    pub fn umeyama_match(a: &Matrix, b: &Matrix) -> Vec<usize> {
        let n = a.rows();
        debug_assert_eq!(n, b.rows());
        let ea = symmetric_eigen(a).expect("density matrices are symmetric");
        let eb = symmetric_eigen(b).expect("density matrices are symmetric");
        let ua = ea.eigenvectors.map(f64::abs);
        let ub = eb.eigenvectors.map(f64::abs);
        Self::assignment_from_abs_bases(&ua, &ub)
    }

    /// Umeyama matching from precomputed per-graph bases, zero-padded to a
    /// common dimension `n` on the fly. Bit-identical to running
    /// [`QjskAligned::umeyama_match`] on the zero-padded density matrices.
    pub fn umeyama_match_bases(a: &AlignmentBasis, b: &AlignmentBasis, n: usize) -> Vec<usize> {
        let ua = a.padded_abs_eigenvectors(n);
        let ub = b.padded_abs_eigenvectors(n);
        Self::assignment_from_abs_bases(&ua, &ub)
    }

    /// Profit matrix `|U_a| |U_b|ᵀ` (via the blocked matmul microkernel)
    /// followed by the Hungarian assignment.
    fn assignment_from_abs_bases(ua: &Matrix, ub: &Matrix) -> Vec<usize> {
        let profit = ua
            .matmul(&ub.transpose())
            .expect("bases share the padded dimension");
        let (assignment, _) = hungarian_max(profit.data(), profit.rows());
        assignment
    }

    fn kernel_from_inputs(&self, a: &AlignedInputs, b: &AlignedInputs) -> f64 {
        let rho_a = &a.spectral.density;
        let rho_b = &b.spectral.density;
        let n = rho_a.dim().max(rho_b.dim());
        // perm[i] = vertex of b matched to vertex i of a. Re-order b so that
        // its matched vertex sits at index i: new_b[i][j] = b[perm[i]][perm[j]].
        let perm = Self::umeyama_match_bases(&a.basis, &b.basis, n);
        let (mut sa, mut sb) = (None, None);
        let pa = pad_to(rho_a, n, &mut sa);
        let pb = pad_to(rho_b, n, &mut sb);
        let aligned_b = pb.permute(&perm).expect("valid permutation");
        // Conjugating by a permutation preserves the spectrum, so b's
        // precomputed entropy serves the aligned state too; the mixture is
        // the one values-only eigenvalue solve this pair pays for.
        let d = qjsd_with_entropies(pa, &aligned_b, a.spectral.entropy, b.spectral.entropy)
            .expect("equal dimensions after padding");
        (-self.mu * d).exp()
    }

    /// Whole-tile fast path: the Umeyama matching stays per pair (the
    /// Hungarian assignment is inherently sequential), but all of the
    /// tile's aligned mixtures go through one batched values-only
    /// eigensolve. Byte-identical to [`QjskAligned::kernel_from_inputs`].
    fn kernel_tile(
        &self,
        pairs: &[(usize, usize)],
        pinned: &PinnedFeatures<'_, AlignedInputs>,
        out: &mut [f64],
    ) {
        let inputs: Vec<(&AlignedInputs, &AlignedInputs)> = pairs
            .iter()
            .map(|&(i, j)| {
                (
                    pinned.get(i, AlignedInputs::extract),
                    pinned.get(j, AlignedInputs::extract),
                )
            })
            .collect();
        // Per-pair alignment: padded basis reconstruction, Hungarian
        // matching, then the aligned (permuted) padded partner state.
        let mut padded_a: Vec<Option<DensityMatrix>> = Vec::with_capacity(pairs.len());
        let mut aligned_b: Vec<DensityMatrix> = Vec::with_capacity(pairs.len());
        for (a, b) in &inputs {
            let rho_a = &a.spectral.density;
            let rho_b = &b.spectral.density;
            let n = rho_a.dim().max(rho_b.dim());
            let perm = Self::umeyama_match_bases(&a.basis, &b.basis, n);
            let mut sb = None;
            let pb = pad_to(rho_b, n, &mut sb);
            aligned_b.push(pb.permute(&perm).expect("valid permutation"));
            padded_a.push(if rho_a.dim() == n {
                None
            } else {
                Some(rho_a.zero_pad(n).expect("padding up never fails"))
            });
        }
        let mixtures: Vec<(&DensityMatrix, &DensityMatrix)> = inputs
            .iter()
            .zip(&padded_a)
            .zip(&aligned_b)
            .map(|(((a, _), pa), ab)| (pa.as_ref().unwrap_or(&*a.spectral.density), ab))
            .collect();
        let h_mix = batch_mixture_entropies(&mixtures, MixtureEntropy::VonNeumann)
            .expect("aligned mixtures share a dimension");
        for (k, (a, b)) in inputs.iter().enumerate() {
            let d = qjsd_from_entropies(h_mix[k], a.spectral.entropy, b.spectral.entropy);
            out[k] = (-self.mu * d).exp();
        }
    }
}

impl GraphKernel for QjskAligned {
    fn name(&self) -> &'static str {
        "QJSK (Umeyama aligned)"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        self.kernel_from_inputs(&AlignedInputs::extract(a), &AlignedInputs::extract(b))
    }

    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let _timer = crate::kernel::time_kernel_gram(self.name());
        let pinned: PinnedFeatures<'_, AlignedInputs> = PinnedFeatures::new(graphs);
        let spec = RemoteGram {
            kernel_id: QjskAligned::REMOTE_KERNEL_ID,
            params: vec![("mu", self.mu)],
            graphs,
            artifact: None,
        };
        gram_from_tiles_spec(
            graphs.len(),
            backend,
            |i| {
                let _ = pinned.get(i, AlignedInputs::extract);
            },
            |pairs: &[(usize, usize)], out: &mut [f64]| self.kernel_tile(pairs, &pinned, out),
            Some(&spec),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn self_similarity_is_one() {
        let g = cycle_graph(6);
        let u = QjskUnaligned::default();
        let a = QjskAligned::default();
        assert!((u.compute(&g, &g) - 1.0).abs() < 1e-9);
        assert!((a.compute(&g, &g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn values_lie_in_unit_interval_and_are_symmetric() {
        let g1 = path_graph(5);
        let g2 = star_graph(7);
        for kernel in [
            &QjskUnaligned::default() as &dyn GraphKernel,
            &QjskAligned::default(),
        ] {
            let v12 = kernel.compute(&g1, &g2);
            let v21 = kernel.compute(&g2, &g1);
            assert!((v12 - v21).abs() < 1e-9, "{}", kernel.name());
            assert!(v12 > 0.0 && v12 <= 1.0 + 1e-12);
            assert!(v12 < 1.0, "distinct graphs should not be maximally similar");
        }
    }

    #[test]
    fn unaligned_kernel_is_sensitive_to_vertex_order() {
        // Comparing a star graph against a *relabelled copy of itself*
        // exposes the permutation-invariance failure the paper describes:
        // the unaligned kernel no longer reports maximal similarity, while
        // the Umeyama alignment recovers (most of) it.
        let g = star_graph(6);
        // Move the hub from vertex 0 to vertex 5.
        let perm = vec![5, 1, 2, 3, 4, 0];
        let relabelled = g.permute(&perm).unwrap();

        let unaligned = QjskUnaligned::default();
        let v_same = unaligned.compute(&g, &g);
        let v_perm = unaligned.compute(&g, &relabelled);
        assert!((v_same - 1.0).abs() < 1e-9);
        assert!(
            v_perm < 1.0 - 1e-6,
            "unaligned kernel should drop for an isomorphic but relabelled graph: {v_perm}"
        );

        let aligned = QjskAligned::default();
        let a_perm = aligned.compute(&g, &relabelled);
        assert!(
            a_perm > v_perm - 1e-12,
            "alignment should recover similarity lost to relabelling: {a_perm} vs {v_perm}"
        );
        assert!(
            a_perm > 1.0 - 1e-6,
            "Umeyama matching should realign the star hub exactly: {a_perm}"
        );
    }

    #[test]
    fn umeyama_match_recovers_identity_for_identical_matrices() {
        let g = path_graph(5);
        let rho = haqjsk_quantum::ctqw_density_infinite(&g).unwrap();
        let perm = QjskAligned::umeyama_match(rho.matrix(), rho.matrix());
        // Must be a permutation; for identical inputs the profit is maximised
        // on (a) the identity or (b) an automorphism of the graph.
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn gram_matrix_diagonal_is_one_after_padding() {
        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6)];
        let gram = QjskUnaligned::default().gram_matrix(&graphs);
        assert_eq!(gram.len(), 3);
        for i in 0..3 {
            assert!((gram.get(i, i) - 1.0).abs() < 1e-9);
        }
        let gram_a = QjskAligned::default().gram_matrix(&graphs);
        for i in 0..3 {
            assert!((gram_a.get(i, i) - 1.0).abs() < 1e-9);
            for j in 0..3 {
                assert!(gram_a.get(i, j) > 0.0);
            }
        }
    }

    #[test]
    fn decay_factor_scales_similarity() {
        let g1 = path_graph(6);
        let g2 = cycle_graph(6);
        let weak = QjskUnaligned::new(0.1).compute(&g1, &g2);
        let strong = QjskUnaligned::new(10.0).compute(&g1, &g2);
        assert!(weak > strong, "larger mu must decay similarity faster");
    }
}
