//! Kernel-space embeddings: kernel PCA and kernel-induced distances.
//!
//! The paper evaluates its kernels through a C-SVM, but a kernel is more
//! generally an implicit feature map. This module provides the two standard
//! tools for inspecting that feature space: the kernel-induced distance
//! `d(i,j)² = K(i,i) + K(j,j) - 2K(i,j)` (used, e.g., by the kNN baseline in
//! `haqjsk-ml`) and kernel principal component analysis, which yields an
//! explicit low-dimensional embedding of the graphs — handy for visualising
//! how well a kernel separates dataset classes.

use crate::matrix::KernelMatrix;
use haqjsk_linalg::{symmetric_eigen, LinalgError, Matrix};

/// Squared kernel-induced distance between items `i` and `j`.
pub fn squared_kernel_distance(kernel: &KernelMatrix, i: usize, j: usize) -> f64 {
    (kernel.get(i, i) + kernel.get(j, j) - 2.0 * kernel.get(i, j)).max(0.0)
}

/// Kernel-induced distance between items `i` and `j`.
pub fn kernel_distance(kernel: &KernelMatrix, i: usize, j: usize) -> f64 {
    squared_kernel_distance(kernel, i, j).sqrt()
}

/// Full pairwise kernel-induced distance matrix.
pub fn kernel_distance_matrix(kernel: &KernelMatrix) -> Matrix {
    let n = kernel.len();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = kernel_distance(kernel, i, j);
            out[(i, j)] = d;
            out[(j, i)] = d;
        }
    }
    out
}

/// Result of a kernel PCA: per-item coordinates in the leading principal
/// directions of the (centred) feature space, plus the captured variances.
#[derive(Debug, Clone)]
pub struct KernelPca {
    /// `coordinates[i]` is the embedding of item `i` (length = number of
    /// retained components).
    pub coordinates: Vec<Vec<f64>>,
    /// Eigenvalue (variance) captured by each retained component, in
    /// decreasing order.
    pub component_variances: Vec<f64>,
}

impl KernelPca {
    /// Number of retained components.
    pub fn num_components(&self) -> usize {
        self.component_variances.len()
    }

    /// Fraction of the total (positive) spectrum captured by the retained
    /// components.
    pub fn explained_variance_ratio(&self, total_positive_variance: f64) -> f64 {
        if total_positive_variance <= 0.0 {
            return 0.0;
        }
        self.component_variances.iter().sum::<f64>() / total_positive_variance
    }
}

/// Kernel principal component analysis: centres the kernel matrix, takes the
/// leading `components` eigenpairs with positive eigenvalues, and returns the
/// projected coordinates `sqrt(λ_k) · v_k(i)`.
pub fn kernel_pca(kernel: &KernelMatrix, components: usize) -> Result<KernelPca, LinalgError> {
    let n = kernel.len();
    if n == 0 || components == 0 {
        return Ok(KernelPca {
            coordinates: vec![Vec::new(); n],
            component_variances: Vec::new(),
        });
    }
    let centered = kernel.centered();
    let eig = symmetric_eigen(centered.matrix())?;
    // Eigenvalues ascend; walk from the top and keep positive ones.
    let mut kept: Vec<(f64, usize)> = Vec::new();
    for idx in (0..n).rev() {
        let lambda = eig.eigenvalues[idx];
        if lambda <= 1e-12 {
            break;
        }
        kept.push((lambda, idx));
        if kept.len() == components {
            break;
        }
    }
    let mut coordinates = vec![Vec::with_capacity(kept.len()); n];
    let mut component_variances = Vec::with_capacity(kept.len());
    for &(lambda, col) in &kept {
        component_variances.push(lambda);
        let scale = lambda.sqrt();
        for (i, coords) in coordinates.iter_mut().enumerate() {
            coords.push(scale * eig.eigenvectors[(i, col)]);
        }
    }
    Ok(KernelPca {
        coordinates,
        component_variances,
    })
}

/// Total positive variance of the centred kernel (the normaliser for
/// [`KernelPca::explained_variance_ratio`]).
pub fn total_positive_variance(kernel: &KernelMatrix) -> Result<f64, LinalgError> {
    if kernel.is_empty() {
        return Ok(0.0);
    }
    let eig = symmetric_eigen(kernel.centered().matrix())?;
    Ok(eig.eigenvalues.iter().filter(|&&l| l > 0.0).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_linalg::vector::distance;

    /// A kernel built from explicit 2-D points with a linear kernel, so the
    /// kernel distance must equal the Euclidean distance and kernel PCA must
    /// recover the point configuration up to rotation.
    fn linear_kernel(points: &[[f64; 2]]) -> KernelMatrix {
        let n = points.len();
        let m = Matrix::from_fn(n, n, |i, j| {
            points[i][0] * points[j][0] + points[i][1] * points[j][1]
        });
        KernelMatrix::new(m).unwrap()
    }

    fn sample_points() -> Vec<[f64; 2]> {
        vec![
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 2.0],
            [3.0, 1.0],
            [-1.0, -1.5],
            [2.0, -0.5],
        ]
    }

    #[test]
    fn kernel_distance_matches_euclidean_for_linear_kernel() {
        let points = sample_points();
        let kernel = linear_kernel(&points);
        for i in 0..points.len() {
            for j in 0..points.len() {
                let expected = distance(&points[i], &points[j]);
                assert!((kernel_distance(&kernel, i, j) - expected).abs() < 1e-9);
            }
        }
        let dm = kernel_distance_matrix(&kernel);
        assert!(dm.is_symmetric(1e-12));
        assert_eq!(dm[(0, 0)], 0.0);
    }

    #[test]
    fn kernel_pca_preserves_pairwise_distances_for_full_rank() {
        let points = sample_points();
        let kernel = linear_kernel(&points);
        let pca = kernel_pca(&kernel, 2).unwrap();
        assert_eq!(pca.num_components(), 2);
        // Centred 2-D data embeds exactly in 2 components: pairwise distances
        // of the embedding match the original Euclidean distances.
        for i in 0..points.len() {
            for j in 0..points.len() {
                let original = distance(&points[i], &points[j]);
                let embedded = distance(&pca.coordinates[i], &pca.coordinates[j]);
                assert!(
                    (original - embedded).abs() < 1e-8,
                    "({i},{j}): {original} vs {embedded}"
                );
            }
        }
        let total = total_positive_variance(&kernel).unwrap();
        assert!(pca.explained_variance_ratio(total) > 0.999);
    }

    #[test]
    fn component_variances_are_decreasing() {
        let points = sample_points();
        let kernel = linear_kernel(&points);
        let pca = kernel_pca(&kernel, 4).unwrap();
        // Only two positive directions exist for 2-D data.
        assert!(pca.num_components() <= 2);
        for w in pca.component_variances.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = KernelMatrix::new(Matrix::zeros(0, 0)).unwrap();
        let pca = kernel_pca(&empty, 3).unwrap();
        assert_eq!(pca.num_components(), 0);
        assert_eq!(total_positive_variance(&empty).unwrap(), 0.0);
        assert_eq!(pca.explained_variance_ratio(0.0), 0.0);

        let single = KernelMatrix::new(Matrix::from_diag(&[2.0])).unwrap();
        let pca1 = kernel_pca(&single, 2).unwrap();
        // A single point centres to zero variance.
        assert_eq!(pca1.num_components(), 0);
        // Zero requested components short-circuits.
        let kernel = linear_kernel(&sample_points());
        assert_eq!(kernel_pca(&kernel, 0).unwrap().num_components(), 0);
    }

    #[test]
    fn kernel_pca_separates_structured_classes() {
        // Two tight clusters in kernel space must map to two well-separated
        // groups along the first principal component.
        let n = 10;
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let same = (i < 5) == (j < 5);
                m[(i, j)] = if same { 1.0 } else { 0.1 };
            }
        }
        let kernel = KernelMatrix::new(m).unwrap();
        let pca = kernel_pca(&kernel, 1).unwrap();
        let first: Vec<f64> = pca.coordinates.iter().map(|c| c[0]).collect();
        let mean_a: f64 = first[..5].iter().sum::<f64>() / 5.0;
        let mean_b: f64 = first[5..].iter().sum::<f64>() / 5.0;
        assert!((mean_a - mean_b).abs() > 0.5);
        // Within-cluster spread is tiny compared to the between-cluster gap.
        for i in 0..5 {
            assert!((first[i] - mean_a).abs() < 1e-6);
            assert!((first[5 + i] - mean_b).abs() < 1e-6);
        }
    }
}
