//! Shortest-path graph kernel (SPGK, Borgwardt & Kriegel).
//!
//! Each graph is mapped to a histogram over triples
//! `(label(u), label(v), shortest-path-length(u, v))` with `label(u) ≤
//! label(v)`; the kernel is the inner product of those histograms. This is
//! the classic local R-convolution baseline of the paper's Table III/IV:
//! positive definite, but blind to structural correspondence.

use crate::kernel::{gram_from_indexed_on, sorted_histogram, sparse_dot, GraphKernel};
use crate::matrix::KernelMatrix;
use haqjsk_engine::BackendKind;
use haqjsk_graph::shortest_paths::{all_pairs_shortest_paths, INFINITE_DISTANCE};
use haqjsk_graph::Graph;

/// A sparse shortest-path histogram: `((min_label, max_label, distance),
/// count)` sorted by key — the CSR-style feature vector whose merge-join
/// dot product is the kernel value. No dense union feature space is ever
/// materialised, so the memory footprint tracks each graph's own feature
/// count rather than the whole dataset's label × distance alphabet.
pub type SpFeatureVec = Vec<((usize, usize, usize), f64)>;

/// The shortest-path kernel. `max_distance` truncates the histogram (path
/// lengths above it are ignored); `None` keeps every finite length.
#[derive(Debug, Clone, Default)]
pub struct ShortestPathKernel {
    /// Optional cap on the path lengths that enter the feature map.
    pub max_distance: Option<usize>,
}

impl ShortestPathKernel {
    /// Creates a kernel considering all finite path lengths.
    pub fn new() -> Self {
        ShortestPathKernel { max_distance: None }
    }

    /// Creates a kernel that ignores paths longer than `max_distance`.
    pub fn with_max_distance(max_distance: usize) -> Self {
        ShortestPathKernel {
            max_distance: Some(max_distance),
        }
    }

    /// Histogram over `(min_label, max_label, distance)` triples, as a
    /// sorted sparse vector.
    pub fn feature_map(&self, graph: &Graph) -> SpFeatureVec {
        let labels = graph.effective_labels();
        let distances = all_pairs_shortest_paths(graph);
        let n = graph.num_vertices();
        let mut keys: Vec<(usize, usize, usize)> = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let d = distances[u][v];
                if d == INFINITE_DISTANCE || d == 0 {
                    continue;
                }
                if let Some(cap) = self.max_distance {
                    if d > cap {
                        continue;
                    }
                }
                keys.push((labels[u].min(labels[v]), labels[u].max(labels[v]), d));
            }
        }
        sorted_histogram(keys)
    }
}

impl GraphKernel for ShortestPathKernel {
    fn name(&self) -> &'static str {
        "SPGK"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        sparse_dot(&self.feature_map(a), &self.feature_map(b))
    }

    // Factors through explicit feature maps: one shortest-path pass per
    // graph, then a merge-join dot per pair on the requested backend.
    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let _timer = crate::kernel::time_kernel_gram(self.name());
        let sparse: Vec<SpFeatureVec> = graphs.iter().map(|g| self.feature_map(g)).collect();
        gram_from_indexed_on(graphs.len(), backend, |i, j| {
            sparse_dot(&sparse[i], &sparse[j])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    fn count_of(f: &SpFeatureVec, key: (usize, usize, usize)) -> f64 {
        f.iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, c)| c)
            .unwrap_or(0.0)
    }

    #[test]
    fn feature_map_of_path_graph() {
        let kernel = ShortestPathKernel::new();
        let g = path_graph(3); // labels = degrees = [1, 2, 1]
        let f = kernel.feature_map(&g);
        // Pairs: (0,1) d=1 labels (1,2); (1,2) d=1 labels (1,2); (0,2) d=2 labels (1,1).
        assert_eq!(count_of(&f, (1, 2, 1)), 2.0);
        assert_eq!(count_of(&f, (1, 1, 2)), 1.0);
        assert_eq!(f.len(), 2);
        assert!(f.windows(2).all(|w| w[0].0 < w[1].0), "sorted, unique keys");
    }

    #[test]
    fn max_distance_truncates_features() {
        let g = path_graph(6);
        let full = ShortestPathKernel::new().feature_map(&g);
        let capped = ShortestPathKernel::with_max_distance(2).feature_map(&g);
        let full_count: f64 = full.iter().map(|&(_, c)| c).sum();
        let capped_count: f64 = capped.iter().map(|&(_, c)| c).sum();
        assert!(capped_count < full_count);
        assert!(capped.iter().all(|&((_, _, d), _)| d <= 2));
    }

    #[test]
    fn kernel_symmetry_and_self_dominance() {
        let kernel = ShortestPathKernel::new();
        let a = cycle_graph(6);
        let b = star_graph(6);
        assert_eq!(kernel.compute(&a, &b), kernel.compute(&b, &a));
        assert!(kernel.compute(&a, &a) >= kernel.compute(&a, &b));
    }

    #[test]
    fn permutation_invariance() {
        let kernel = ShortestPathKernel::new();
        let g = star_graph(7);
        let perm = vec![6, 5, 4, 3, 2, 1, 0];
        let h = g.permute(&perm).unwrap();
        assert!((kernel.compute(&g, &g) - kernel.compute(&g, &h)).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pairs_are_ignored() {
        let kernel = ShortestPathKernel::new();
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let f = kernel.feature_map(&g);
        let total: f64 = f.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 2.0, "only the two connected pairs count");
    }

    #[test]
    fn gram_matches_pairwise_and_is_psd() {
        let kernel = ShortestPathKernel::new();
        let graphs = vec![
            path_graph(5),
            cycle_graph(6),
            star_graph(5),
            complete_graph(4),
        ];
        let gram = kernel.gram_matrix(&graphs);
        assert!(gram.is_positive_semidefinite(1e-9).unwrap());
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                assert!((gram.get(i, j) - kernel.compute(&graphs[i], &graphs[j])).abs() < 1e-9);
            }
        }
    }
}
