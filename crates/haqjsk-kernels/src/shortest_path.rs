//! Shortest-path graph kernel (SPGK, Borgwardt & Kriegel).
//!
//! Each graph is mapped to a histogram over triples
//! `(label(u), label(v), shortest-path-length(u, v))` with `label(u) ≤
//! label(v)`; the kernel is the inner product of those histograms. This is
//! the classic local R-convolution baseline of the paper's Table III/IV:
//! positive definite, but blind to structural correspondence.

use crate::kernel::{gram_from_features, GraphKernel};
use crate::matrix::KernelMatrix;
use haqjsk_engine::BackendKind;
use haqjsk_graph::shortest_paths::{all_pairs_shortest_paths, INFINITE_DISTANCE};
use haqjsk_graph::Graph;
use std::collections::HashMap;

/// The shortest-path kernel. `max_distance` truncates the histogram (path
/// lengths above it are ignored); `None` keeps every finite length.
#[derive(Debug, Clone, Default)]
pub struct ShortestPathKernel {
    /// Optional cap on the path lengths that enter the feature map.
    pub max_distance: Option<usize>,
}

impl ShortestPathKernel {
    /// Creates a kernel considering all finite path lengths.
    pub fn new() -> Self {
        ShortestPathKernel { max_distance: None }
    }

    /// Creates a kernel that ignores paths longer than `max_distance`.
    pub fn with_max_distance(max_distance: usize) -> Self {
        ShortestPathKernel {
            max_distance: Some(max_distance),
        }
    }

    /// Histogram over `(min_label, max_label, distance)` triples.
    pub fn feature_map(&self, graph: &Graph) -> HashMap<(usize, usize, usize), f64> {
        let labels = graph.effective_labels();
        let distances = all_pairs_shortest_paths(graph);
        let n = graph.num_vertices();
        let mut histogram = HashMap::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let d = distances[u][v];
                if d == INFINITE_DISTANCE || d == 0 {
                    continue;
                }
                if let Some(cap) = self.max_distance {
                    if d > cap {
                        continue;
                    }
                }
                let key = (labels[u].min(labels[v]), labels[u].max(labels[v]), d);
                *histogram.entry(key).or_insert(0.0) += 1.0;
            }
        }
        histogram
    }

    fn sparse_dot(
        a: &HashMap<(usize, usize, usize), f64>,
        b: &HashMap<(usize, usize, usize), f64>,
    ) -> f64 {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small
            .iter()
            .filter_map(|(k, va)| large.get(k).map(|vb| va * vb))
            .sum()
    }
}

impl GraphKernel for ShortestPathKernel {
    fn name(&self) -> &'static str {
        "SPGK"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        Self::sparse_dot(&self.feature_map(a), &self.feature_map(b))
    }

    // Factors through explicit feature maps: backend-independent, so the
    // backend-aware hook is overridden to keep the fast path everywhere.
    fn gram_matrix_on(&self, graphs: &[Graph], _backend: Option<BackendKind>) -> KernelMatrix {
        let sparse: Vec<HashMap<(usize, usize, usize), f64>> =
            graphs.iter().map(|g| self.feature_map(g)).collect();
        let mut index: HashMap<(usize, usize, usize), usize> = HashMap::new();
        for map in &sparse {
            for &k in map.keys() {
                let next = index.len();
                index.entry(k).or_insert(next);
            }
        }
        let dim = index.len();
        let dense: Vec<Vec<f64>> = sparse
            .iter()
            .map(|map| {
                let mut v = vec![0.0; dim];
                for (k, &count) in map {
                    v[index[k]] = count;
                }
                v
            })
            .collect();
        gram_from_features(&dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn feature_map_of_path_graph() {
        let kernel = ShortestPathKernel::new();
        let g = path_graph(3); // labels = degrees = [1, 2, 1]
        let f = kernel.feature_map(&g);
        // Pairs: (0,1) d=1 labels (1,2); (1,2) d=1 labels (1,2); (0,2) d=2 labels (1,1).
        assert_eq!(f[&(1, 2, 1)], 2.0);
        assert_eq!(f[&(1, 1, 2)], 1.0);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn max_distance_truncates_features() {
        let g = path_graph(6);
        let full = ShortestPathKernel::new().feature_map(&g);
        let capped = ShortestPathKernel::with_max_distance(2).feature_map(&g);
        let full_count: f64 = full.values().sum();
        let capped_count: f64 = capped.values().sum();
        assert!(capped_count < full_count);
        assert!(capped.keys().all(|&(_, _, d)| d <= 2));
    }

    #[test]
    fn kernel_symmetry_and_self_dominance() {
        let kernel = ShortestPathKernel::new();
        let a = cycle_graph(6);
        let b = star_graph(6);
        assert_eq!(kernel.compute(&a, &b), kernel.compute(&b, &a));
        assert!(kernel.compute(&a, &a) >= kernel.compute(&a, &b));
    }

    #[test]
    fn permutation_invariance() {
        let kernel = ShortestPathKernel::new();
        let g = star_graph(7);
        let perm = vec![6, 5, 4, 3, 2, 1, 0];
        let h = g.permute(&perm).unwrap();
        assert!((kernel.compute(&g, &g) - kernel.compute(&g, &h)).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pairs_are_ignored() {
        let kernel = ShortestPathKernel::new();
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let f = kernel.feature_map(&g);
        let total: f64 = f.values().sum();
        assert_eq!(total, 2.0, "only the two connected pairs count");
    }

    #[test]
    fn gram_matches_pairwise_and_is_psd() {
        let kernel = ShortestPathKernel::new();
        let graphs = vec![
            path_graph(5),
            cycle_graph(6),
            star_graph(5),
            complete_graph(4),
        ];
        let gram = kernel.gram_matrix(&graphs);
        assert!(gram.is_positive_semidefinite(1e-9).unwrap());
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                assert!((gram.get(i, j) - kernel.compute(&graphs[i], &graphs[j])).abs() < 1e-9);
            }
        }
    }
}
