//! Process-global caching of per-graph quantum features.
//!
//! The quantum baselines (QJSK, JTQK) pay an `O(n³)` eigendecomposition per
//! CTQW density matrix. The density matrix depends only on the graph, so the
//! engine's [`FeatureCache`] memoises it under the structural graph hash:
//! within one Gram computation each graph's density is computed exactly
//! once, and across calls (cross-validation repetitions, serving requests
//! touching the same graphs) previously seen graphs are free.
//!
//! ## Memory policy
//!
//! The cache is sharded by key range and supports an LRU byte budget (see
//! [`CacheConfig`]): long-running processes serving unbounded graph streams
//! should bound residency with a budget — set `HAQJSK_CACHE_BUDGET` (bytes,
//! or `64k`/`256m`/`2g`) and optionally `HAQJSK_CACHE_SHARDS` before the
//! first use, or call [`set_density_cache_budget`] at runtime — and let LRU
//! eviction keep the hot graphs resident. [`clear_density_cache`] still
//! exists for *hard* boundaries (switching datasets in a benchmark, model
//! replacement) where stale features must not survive at all; it is no
//! longer the memory-pressure answer — it drains every shard through the
//! same eviction path the budget uses and resets the counters.

use haqjsk_engine::{graph_key, CacheConfig, CacheStats, Engine, FeatureCache, ShardStats};
use haqjsk_graph::Graph;
use haqjsk_quantum::{ctqw_density_infinite, DensityMatrix};
use std::sync::{Arc, OnceLock};

static DENSITY_CACHE: OnceLock<FeatureCache<DensityMatrix>> = OnceLock::new();

/// The process-global CTQW density-matrix cache, configured on first use
/// from the environment (`HAQJSK_CACHE_SHARDS`, `HAQJSK_CACHE_BUDGET`).
pub fn density_cache() -> &'static FeatureCache<DensityMatrix> {
    DENSITY_CACHE.get_or_init(|| FeatureCache::with_config(CacheConfig::from_env()))
}

/// The cached time-averaged CTQW density matrix of `graph`, computed on
/// first request. Panics on empty graphs (as the uncached path does).
pub fn cached_ctqw_density(graph: &Graph) -> Arc<DensityMatrix> {
    density_cache().get_or_compute(graph_key(graph), || {
        ctqw_density_infinite(graph).expect("non-empty graph")
    })
}

/// Cached density matrices for a whole dataset, computed in parallel on the
/// engine's worker pool (each distinct graph exactly once while resident).
pub fn cached_ctqw_densities(graphs: &[Graph]) -> Vec<Arc<DensityMatrix>> {
    Engine::global().map(graphs.len(), |i| cached_ctqw_density(&graphs[i]))
}

/// Aggregate hit/miss/entry/eviction counters of the density cache.
pub fn density_cache_stats() -> CacheStats {
    density_cache().stats()
}

/// Per-shard counters of the density cache, in shard order.
pub fn density_cache_shard_stats() -> Vec<ShardStats> {
    density_cache().shard_stats()
}

/// Re-budgets the density cache at runtime: `Some(bytes)` bounds resident
/// features (evicting LRU entries immediately if needed), `None` lifts the
/// bound. This is the recommended memory-pressure control for long-running
/// processes.
pub fn set_density_cache_budget(budget_bytes: Option<usize>) {
    density_cache().set_budget(budget_bytes);
}

/// Drops all cached density matrices and resets the counters — a hard
/// boundary for benchmarks and tests. For bounded memory in production use
/// [`set_density_cache_budget`] (or the `HAQJSK_CACHE_BUDGET` environment
/// variable) instead: eviction keeps hot graphs resident, a clear forgets
/// everything.
pub fn clear_density_cache() {
    density_cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph};

    #[test]
    fn cached_density_matches_direct_computation() {
        let g = cycle_graph(7);
        let cached = cached_ctqw_density(&g);
        let direct = ctqw_density_infinite(&g).unwrap();
        assert_eq!(cached.matrix(), direct.matrix());
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let g = path_graph(9);
        let first = cached_ctqw_density(&g);
        let before = density_cache_stats();
        let second = cached_ctqw_density(&g);
        let after = density_cache_stats();
        assert_eq!(first.matrix(), second.matrix());
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn batch_extraction_caches_every_graph() {
        let graphs: Vec<Graph> = (4..10).map(cycle_graph).collect();
        let densities = cached_ctqw_densities(&graphs);
        assert_eq!(densities.len(), graphs.len());
        for (g, rho) in graphs.iter().zip(&densities) {
            assert_eq!(rho.dim(), g.num_vertices());
        }
        // A second pass is answered from the cache entirely.
        let before = density_cache_stats();
        let again = cached_ctqw_densities(&graphs);
        let after = density_cache_stats();
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.hits, before.hits + graphs.len());
        for (a, b) in densities.iter().zip(&again) {
            assert_eq!(a.matrix(), b.matrix());
        }
    }

    #[test]
    fn shard_stats_cover_the_aggregate() {
        let graphs: Vec<Graph> = (4..9).map(path_graph).collect();
        let _ = cached_ctqw_densities(&graphs);
        let total = density_cache_stats();
        let shards = density_cache_shard_stats();
        assert_eq!(shards.len(), density_cache().shards());
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<usize>(),
            total.entries
        );
        assert_eq!(shards.iter().map(|s| s.hits).sum::<usize>(), total.hits);
        assert_eq!(
            shards.iter().map(|s| s.resident_bytes).sum::<usize>(),
            total.resident_bytes
        );
    }
}
