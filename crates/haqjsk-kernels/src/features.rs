//! Process-global caching of per-graph quantum features.
//!
//! The quantum baselines (QJSK, JTQK) pay an `O(n³)` eigendecomposition per
//! CTQW density matrix. The density matrix depends only on the graph, so the
//! engine's [`FeatureCache`] memoises it under the structural graph hash:
//! within one Gram computation each graph's density is computed exactly
//! once, and across calls (cross-validation repetitions, serving requests
//! touching the same graphs) previously seen graphs are free.
//!
//! ## Memory policy
//!
//! The cache is sharded by key range and supports an LRU byte budget (see
//! [`CacheConfig`]): long-running processes serving unbounded graph streams
//! should bound residency with a budget — set `HAQJSK_CACHE_BUDGET` (bytes,
//! or `64k`/`256m`/`2g`) and optionally `HAQJSK_CACHE_SHARDS` before the
//! first use, or call [`set_density_cache_budget`] at runtime — and let LRU
//! eviction keep the hot graphs resident. [`clear_density_cache`] still
//! exists for *hard* boundaries (switching datasets in a benchmark, model
//! replacement) where stale features must not survive at all; it is no
//! longer the memory-pressure answer — it drains every shard through the
//! same eviction path the budget uses and resets the counters.

use crate::kernel::sparse_dot;
use crate::wl::{WeisfeilerLehmanKernel, WlFeatureVec};
use haqjsk_engine::{
    graph_key, CacheConfig, CacheStats, CacheWeight, Engine, FeatureCache, GraphKey, ShardStats,
};
use haqjsk_graph::Graph;
use haqjsk_linalg::{symmetric_eigen, Matrix};
use haqjsk_quantum::{ctqw_density_infinite, entropy_of_spectrum, DensityMatrix};
use std::sync::{Arc, OnceLock};

static DENSITY_CACHE: OnceLock<FeatureCache<DensityMatrix>> = OnceLock::new();
static SPECTRAL_CACHE: OnceLock<FeatureCache<GraphSpectrals>> = OnceLock::new();
static ALIGNMENT_CACHE: OnceLock<FeatureCache<AlignmentBasis>> = OnceLock::new();
static WL_CACHE: OnceLock<FeatureCache<WlHistogram>> = OnceLock::new();

/// Per-graph spectral summary of the CTQW density matrix: the clamped
/// eigenvalue spectrum and its von Neumann entropy.
///
/// Both quantities depend only on the graph, and both are invariant under
/// the zero-padding the pairwise kernels apply (padding adds exact-zero
/// eigenvalues, which contribute nothing to any entropy), so the pair loops
/// can consume these cached values instead of re-decomposing the endpoint
/// states for every pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpectrals {
    /// Eigenvalues of the CTQW density in ascending order, clamped to
    /// `[0, 1]` (exactly [`DensityMatrix::spectrum`]).
    pub spectrum: Vec<f64>,
    /// Von Neumann entropy `H_N(ρ) = -Σ λ ln λ` of that spectrum.
    pub von_neumann_entropy: f64,
}

impl CacheWeight for GraphSpectrals {
    fn weight(&self) -> usize {
        std::mem::size_of::<GraphSpectrals>() + self.spectrum.len() * std::mem::size_of::<f64>()
    }
}

/// Per-graph eigenvector-magnitude basis used by the Umeyama spectral
/// matching of the aligned QJSK kernel.
///
/// Umeyama's profit matrix consumes `|U|` of the *zero-padded* density's
/// eigendecomposition, whose column order depends on the pair's padded
/// dimension. Because the eigen solver treats the zero padding as an exact
/// no-op (the padded rows Householder to nothing and the stable ascending
/// sort slots the padding's unit eigenvectors right after the non-positive
/// eigenvalues), the padded basis is reconstructible from this per-graph
/// artifact for **any** target dimension — see
/// [`AlignmentBasis::padded_abs_eigenvectors`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentBasis {
    /// `|U|` of the sorted eigendecomposition of the (unpadded) density.
    pub abs_eigenvectors: Matrix,
    /// Number of eigenvalues `λ <= 0.0` — the column index where padding's
    /// unit eigenvectors are slotted by the stable ascending sort.
    pub nonpositive_eigenvalues: usize,
}

impl AlignmentBasis {
    /// Builds the basis from a density matrix.
    pub fn from_density(rho: &DensityMatrix) -> AlignmentBasis {
        AlignmentBasis::from_eigen(
            &symmetric_eigen(rho.matrix()).expect("density matrices are symmetric"),
        )
    }

    /// Builds the basis from an already-computed decomposition of the
    /// density.
    pub fn from_eigen(eig: &haqjsk_linalg::SymmetricEigen) -> AlignmentBasis {
        let nonpositive = eig.eigenvalues.iter().filter(|&&l| l <= 0.0).count();
        AlignmentBasis {
            abs_eigenvectors: eig.eigenvectors.map(f64::abs),
            nonpositive_eigenvalues: nonpositive,
        }
    }

    /// The dimension of the underlying state.
    pub fn dim(&self) -> usize {
        self.abs_eigenvectors.rows()
    }

    /// Reconstructs `|U|` of the eigendecomposition of the density
    /// zero-padded to dimension `n`, bit-identical to running
    /// `symmetric_eigen` on the padded matrix: the original columns keep
    /// their stable ascending order, and the padding contributes unit
    /// eigenvectors (eigenvalue exactly `0.0`) slotted after the original
    /// non-positive eigenvalues.
    pub fn padded_abs_eigenvectors(&self, n: usize) -> Matrix {
        let dim = self.dim();
        assert!(n >= dim, "cannot pad a {dim}-state down to {n}");
        let pad = n - dim;
        let split = self.nonpositive_eigenvalues;
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            if k < split {
                for i in 0..dim {
                    out[(i, k)] = self.abs_eigenvectors[(i, k)];
                }
            } else if k < split + pad {
                out[(dim + (k - split), k)] = 1.0;
            } else {
                let src = k - pad;
                for i in 0..dim {
                    out[(i, k)] = self.abs_eigenvectors[(i, src)];
                }
            }
        }
        out
    }
}

impl CacheWeight for AlignmentBasis {
    fn weight(&self) -> usize {
        std::mem::size_of::<AlignmentBasis>() + self.dim() * self.dim() * std::mem::size_of::<f64>()
    }
}

/// Per-graph Weisfeiler–Lehman label histogram (sorted sparse vector) plus
/// its self-similarity — the local-factor artifact of the JTQK pair loop.
///
/// WL labels are content-addressed (see [`crate::wl`]), so histograms
/// computed independently per graph are directly comparable: the JTQK
/// cross term reduces to one merge-join sparse dot per pair instead of a
/// full WL refinement of both graphs per pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WlHistogram {
    /// Concatenated per-round label histogram, sorted by feature key.
    pub features: WlFeatureVec,
    /// `⟨features, features⟩` — the normalisation term of the cosine WL
    /// similarity, precomputed with the same merge-join dot the cross
    /// terms use.
    pub self_similarity: f64,
}

impl CacheWeight for WlHistogram {
    fn weight(&self) -> usize {
        std::mem::size_of::<WlHistogram>() + self.features.len() * std::mem::size_of::<(u64, f64)>()
    }
}

/// Zero-pads `rho` up to dimension `n`, borrowing it unchanged when it is
/// already that size — the common same-sized-graphs case in the kernel
/// pair loops skips the O(n²) copy.
pub(crate) fn pad_to<'a>(
    rho: &'a DensityMatrix,
    n: usize,
    storage: &'a mut Option<DensityMatrix>,
) -> &'a DensityMatrix {
    if rho.dim() == n {
        rho
    } else {
        storage.insert(rho.zero_pad(n).expect("padding up never fails"))
    }
}

/// Splits a total feature-cache byte budget across the four caches by
/// weight class: densities and alignment bases are both `n²` residents and
/// share the bulk evenly; spectra and WL histograms are `O(n)` and split
/// the small remainder. Keeps `HAQJSK_CACHE_BUDGET` (and
/// [`set_density_cache_budget`]) meaning "total resident feature bytes",
/// as it did when the density cache was the only cache.
/// The caches' budget slices: `(density, alignment, spectral, wl)`.
type BudgetSplit = (Option<usize>, Option<usize>, Option<usize>, Option<usize>);

fn split_budget(total: Option<usize>) -> BudgetSplit {
    match total {
        None => (None, None, None, None),
        Some(total) => {
            let small = total / 8;
            let spectral = small / 2;
            let wl = small - spectral;
            let density = (total - small) / 2;
            let alignment = total - small - density;
            (Some(density), Some(alignment), Some(spectral), Some(wl))
        }
    }
}

/// Environment configuration of one of the three feature caches: shared
/// shard count, this cache's slice of the total budget.
fn cache_from_env<V>(slice: fn(&BudgetSplit) -> Option<usize>) -> FeatureCache<V> {
    let mut config = CacheConfig::from_env();
    config.budget_bytes = slice(&split_budget(config.budget_bytes));
    FeatureCache::with_config(config)
}

/// The process-global CTQW density-matrix cache, configured on first use
/// from the environment (`HAQJSK_CACHE_SHARDS`, `HAQJSK_CACHE_BUDGET` —
/// the budget is a *total* across the density/spectral/alignment caches,
/// split by [`split_budget`]).
pub fn density_cache() -> &'static FeatureCache<DensityMatrix> {
    DENSITY_CACHE.get_or_init(|| cache_from_env(|b| b.0))
}

/// The cached time-averaged CTQW density matrix of `graph`, computed on
/// first request. Panics on empty graphs (as the uncached path does).
pub fn cached_ctqw_density(graph: &Graph) -> Arc<DensityMatrix> {
    density_cache().get_or_compute(graph_key(graph), || {
        ctqw_density_infinite(graph).expect("non-empty graph")
    })
}

/// Cached density matrices for a whole dataset, computed in parallel on the
/// engine's worker pool (each distinct graph exactly once while resident).
pub fn cached_ctqw_densities(graphs: &[Graph]) -> Vec<Arc<DensityMatrix>> {
    Engine::global().map(graphs.len(), |i| cached_ctqw_density(&graphs[i]))
}

/// The process-global spectral-summary cache (spectrum + von Neumann
/// entropy of each graph's CTQW density), sharing the density cache's
/// environment configuration (and its slice of the total budget).
pub fn spectral_cache() -> &'static FeatureCache<GraphSpectrals> {
    SPECTRAL_CACHE.get_or_init(|| cache_from_env(|b| b.2))
}

/// Builds the spectral summary from an already-computed spectrum.
fn spectrals_from_spectrum(spectrum: Vec<f64>) -> GraphSpectrals {
    let von_neumann_entropy = entropy_of_spectrum(&spectrum);
    GraphSpectrals {
        spectrum,
        von_neumann_entropy,
    }
}

/// The cached spectral summary of `graph`'s CTQW density: eigenvalue
/// spectrum (values-only solve) and von Neumann entropy, computed once per
/// resident graph. This is the per-graph half of the QJSD the pair loops
/// no longer recompute per pair.
pub fn cached_graph_spectrals(graph: &Graph) -> Arc<GraphSpectrals> {
    spectral_cache().get_or_compute(graph_key(graph), || {
        spectrals_from_spectrum(cached_ctqw_density(graph).spectrum())
    })
}

/// The process-global Umeyama alignment-basis cache (eigenvector
/// magnitudes of each graph's CTQW density), with its slice of the total
/// byte budget.
pub fn alignment_cache() -> &'static FeatureCache<AlignmentBasis> {
    ALIGNMENT_CACHE.get_or_init(|| cache_from_env(|b| b.1))
}

/// The cached Umeyama alignment basis of `graph`'s CTQW density — the one
/// place the aligned QJSK kernel still needs eigen*vectors*, hoisted out of
/// the pair loop because `|U|` of any zero-padded version is
/// reconstructible from it ([`AlignmentBasis::padded_abs_eigenvectors`]).
///
/// The full decomposition computed here also yields the eigenvalue
/// spectrum bit-identically to the values-only driver, so the spectral
/// cache is warmed from the same solve — a cold aligned Gram pays one
/// eigensolve per graph for both artifacts, not two.
pub fn cached_alignment_basis(graph: &Graph) -> Arc<AlignmentBasis> {
    let key = graph_key(graph);
    alignment_cache().get_or_compute(key, || {
        let rho = cached_ctqw_density(graph);
        let eig = symmetric_eigen(rho.matrix()).expect("density matrices are symmetric");
        let _ = spectral_cache().get_or_compute(key, || {
            spectrals_from_spectrum(eig.eigenvalues.iter().map(|l| l.clamp(0.0, 1.0)).collect())
        });
        AlignmentBasis::from_eigen(&eig)
    })
}

/// The process-global WL label-histogram cache (the JTQK local-factor
/// artifact), with its slice of the total byte budget.
pub fn wl_cache() -> &'static FeatureCache<WlHistogram> {
    WL_CACHE.get_or_init(|| cache_from_env(|b| b.3))
}

/// The cached WL label histogram of `graph` at `iterations` refinement
/// rounds, computed once per resident `(graph, iterations)` pair. The key
/// mixes the refinement depth into the structural graph hash so kernels
/// with different WL heights coexist in the cache.
pub fn cached_wl_histogram(graph: &Graph, iterations: usize) -> Arc<WlHistogram> {
    let base = graph_key(graph);
    let key = GraphKey(
        base.0 ^ (iterations as u128 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15_F39C_C060_5CED_C835),
    );
    wl_cache().get_or_compute(key, || {
        let features = WeisfeilerLehmanKernel::new(iterations).feature_map(graph);
        let self_similarity = sparse_dot(&features, &features);
        WlHistogram {
            features,
            self_similarity,
        }
    })
}

/// Registers the feature caches with the process-global metrics registry:
/// a collector re-exports each cache's own atomic counters as
/// `haqjsk_cache_*` metrics labelled by cache name at every snapshot.
/// Idempotent; call before scraping.
pub fn register_cache_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        type StatsFn = fn() -> CacheStats;
        let registry = haqjsk_obs::registry();
        let caches: Vec<(&'static str, StatsFn)> = vec![
            ("density", || density_cache().stats()),
            ("spectral", || spectral_cache().stats()),
            ("alignment", || alignment_cache().stats()),
            ("wl", || wl_cache().stats()),
        ];
        let exports: Vec<_> = caches
            .into_iter()
            .map(|(name, stats)| {
                let labels = [("cache", name)];
                (
                    stats,
                    registry.counter(
                        "haqjsk_cache_hits_total",
                        "Feature-cache hits, by cache.",
                        &labels,
                    ),
                    registry.counter(
                        "haqjsk_cache_misses_total",
                        "Feature-cache misses, by cache.",
                        &labels,
                    ),
                    registry.counter(
                        "haqjsk_cache_evictions_total",
                        "Feature-cache LRU evictions, by cache.",
                        &labels,
                    ),
                    registry.counter(
                        "haqjsk_cache_admission_rejects_total",
                        "Feature-cache admission rejections, by cache.",
                        &labels,
                    ),
                    registry.gauge(
                        "haqjsk_cache_entries",
                        "Resident feature-cache entries, by cache.",
                        &labels,
                    ),
                    registry.gauge(
                        "haqjsk_cache_resident_bytes",
                        "Resident feature-cache bytes, by cache.",
                        &labels,
                    ),
                )
            })
            .collect();
        registry.register_collector(move || {
            for (stats, hits, misses, evictions, rejects, entries, bytes) in &exports {
                let s = stats();
                hits.store(s.hits as u64);
                misses.store(s.misses as u64);
                evictions.store(s.evictions as u64);
                rejects.store(s.admission_rejects as u64);
                entries.set(s.entries as f64);
                bytes.set(s.resident_bytes as f64);
            }
        });
    });
}

/// Aggregate hit/miss/entry/eviction counters of the density cache.
pub fn density_cache_stats() -> CacheStats {
    density_cache().stats()
}

/// Per-shard counters of the density cache, in shard order.
pub fn density_cache_shard_stats() -> Vec<ShardStats> {
    density_cache().shard_stats()
}

/// Re-budgets the per-graph feature caches at runtime: `Some(bytes)` bounds
/// the **total** resident feature bytes (evicting LRU entries immediately
/// if needed), `None` lifts the bound. The total is split across the
/// density, spectral and alignment caches by [`split_budget`] — the
/// alignment bases are the same `n²` weight class as the densities, so
/// bounding only the density cache would leave roughly half the resident
/// footprint uncontrolled. This mirrors `HAQJSK_CACHE_BUDGET` (also a
/// total) and is the recommended memory-pressure control for long-running
/// processes.
pub fn set_density_cache_budget(budget_bytes: Option<usize>) {
    let (density, alignment, spectral, wl) = split_budget(budget_bytes);
    density_cache().set_budget(density);
    alignment_cache().set_budget(alignment);
    spectral_cache().set_budget(spectral);
    wl_cache().set_budget(wl);
}

/// Drops all cached density matrices **and the spectral/alignment
/// artifacts derived from them**, resetting every counter — a hard boundary
/// for benchmarks and tests. For bounded memory in production use
/// [`set_density_cache_budget`] (or the `HAQJSK_CACHE_BUDGET` environment
/// variable) instead: eviction keeps hot graphs resident, a clear forgets
/// everything.
pub fn clear_density_cache() {
    density_cache().clear();
    spectral_cache().clear();
    alignment_cache().clear();
    wl_cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph};

    #[test]
    fn cached_density_matches_direct_computation() {
        let g = cycle_graph(7);
        let cached = cached_ctqw_density(&g);
        let direct = ctqw_density_infinite(&g).unwrap();
        assert_eq!(cached.matrix(), direct.matrix());
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let g = path_graph(9);
        let first = cached_ctqw_density(&g);
        let before = density_cache_stats();
        let second = cached_ctqw_density(&g);
        let after = density_cache_stats();
        assert_eq!(first.matrix(), second.matrix());
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn batch_extraction_caches_every_graph() {
        let graphs: Vec<Graph> = (4..10).map(cycle_graph).collect();
        let densities = cached_ctqw_densities(&graphs);
        assert_eq!(densities.len(), graphs.len());
        for (g, rho) in graphs.iter().zip(&densities) {
            assert_eq!(rho.dim(), g.num_vertices());
        }
        // A second pass is answered from the cache entirely.
        let before = density_cache_stats();
        let again = cached_ctqw_densities(&graphs);
        let after = density_cache_stats();
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.hits, before.hits + graphs.len());
        for (a, b) in densities.iter().zip(&again) {
            assert_eq!(a.matrix(), b.matrix());
        }
    }

    #[test]
    fn spectral_artifacts_match_direct_computation() {
        let g = cycle_graph(6);
        let rho = cached_ctqw_density(&g);
        let spectrals = cached_graph_spectrals(&g);
        assert_eq!(spectrals.spectrum, rho.spectrum());
        assert_eq!(
            spectrals.von_neumann_entropy,
            entropy_of_spectrum(&rho.spectrum())
        );
        // Padding invariance: the entropy of the padded state is the same.
        let padded = rho.zero_pad(9).unwrap();
        assert_eq!(
            spectrals.von_neumann_entropy,
            entropy_of_spectrum(&padded.spectrum()),
            "zero-padding must not change the entropy at all"
        );
    }

    #[test]
    fn padded_alignment_basis_is_bit_identical_to_padded_decomposition() {
        use haqjsk_graph::generators::{erdos_renyi, star_graph};
        // The reconstruction claim behind the aligned fast path: |U| of the
        // zero-padded density's eigendecomposition equals the per-graph
        // basis with padding's unit eigenvectors slotted after the
        // non-positive eigenvalues — bit for bit, so the Umeyama profit
        // matrix (and hence the Hungarian permutation) cannot drift.
        let graphs = vec![
            path_graph(5),
            cycle_graph(6),
            star_graph(7),
            erdos_renyi(9, 0.4, 7),
        ];
        for g in &graphs {
            let rho = cached_ctqw_density(g);
            let basis = AlignmentBasis::from_density(&rho);
            for n in [rho.dim(), rho.dim() + 1, rho.dim() + 4] {
                let padded = rho.zero_pad(n).unwrap();
                let direct = symmetric_eigen(padded.matrix())
                    .unwrap()
                    .eigenvectors
                    .map(f64::abs);
                let reconstructed = basis.padded_abs_eigenvectors(n);
                assert_eq!(
                    direct,
                    reconstructed,
                    "padded |U| reconstruction must be exact (dim {} -> {n})",
                    rho.dim()
                );
            }
        }
    }

    #[test]
    fn shard_stats_cover_the_aggregate() {
        let graphs: Vec<Graph> = (4..9).map(path_graph).collect();
        let _ = cached_ctqw_densities(&graphs);
        let total = density_cache_stats();
        let shards = density_cache_shard_stats();
        assert_eq!(shards.len(), density_cache().shards());
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<usize>(),
            total.entries
        );
        assert_eq!(shards.iter().map(|s| s.hits).sum::<usize>(), total.hits);
        assert_eq!(
            shards.iter().map(|s| s.resident_bytes).sum::<usize>(),
            total.resident_bytes
        );
    }
}
