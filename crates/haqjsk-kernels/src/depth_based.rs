//! Depth-based aligned kernel (the DBAK / ASK family the paper compares
//! against).
//!
//! Following Bai & Xu et al., every vertex is described by its depth-based
//! complexity trace (the entropies of its `k`-layer expansion subgraphs), and
//! the kernel between two graphs counts the pairs of vertices that are
//! mutually aligned in that representation space. The alignment is a
//! one-to-one matching computed per pair of graphs — precisely the step that
//! makes this family **non-transitive** and therefore not positive definite,
//! which is the deficiency the HAQJSK kernels repair with dataset-level
//! prototypes.

use crate::kernel::GraphKernel;
use haqjsk_graph::subgraph::depth_based_traces;
use haqjsk_graph::Graph;
use haqjsk_linalg::assignment::hungarian;
use haqjsk_linalg::vector::distance;

/// The depth-based aligned kernel.
#[derive(Debug, Clone)]
pub struct DepthBasedAlignedKernel {
    /// Number of expansion layers `K` in the depth-based traces.
    pub layers: usize,
    /// Bandwidth of the per-pair Gaussian similarity applied to matched
    /// vertex representations.
    pub bandwidth: f64,
}

impl Default for DepthBasedAlignedKernel {
    fn default() -> Self {
        DepthBasedAlignedKernel {
            layers: 4,
            bandwidth: 1.0,
        }
    }
}

impl DepthBasedAlignedKernel {
    /// Creates the kernel with `layers` expansion layers and a Gaussian
    /// `bandwidth` on the matched-representation distance.
    pub fn new(layers: usize, bandwidth: f64) -> Self {
        DepthBasedAlignedKernel { layers, bandwidth }
    }

    /// Optimal one-to-one vertex matching between the two graphs in
    /// depth-based representation space. Returns `(pairs, total_distance)`
    /// where `pairs[i] = (u, v)` matches vertex `u` of `a` with vertex `v`
    /// of `b`; when the graphs have different sizes the extra vertices stay
    /// unmatched.
    pub fn align(&self, a: &Graph, b: &Graph) -> (Vec<(usize, usize)>, f64) {
        let ta = depth_based_traces(a, self.layers);
        let tb = depth_based_traces(b, self.layers);
        let na = ta.len();
        let nb = tb.len();
        let n = na.max(nb);
        if n == 0 {
            return (Vec::new(), 0.0);
        }
        // Pad the cost matrix with a large constant so dummy matches are only
        // used when a graph runs out of vertices.
        let padding = 1e6;
        let mut cost = vec![padding; n * n];
        for (i, ra) in ta.iter().enumerate() {
            for (j, rb) in tb.iter().enumerate() {
                cost[i * n + j] = distance(ra, rb);
            }
        }
        let (assignment, _) = hungarian(&cost, n);
        let mut pairs = Vec::new();
        let mut total = 0.0;
        for (i, &j) in assignment.iter().enumerate() {
            if i < na && j < nb {
                pairs.push((i, j));
                total += cost[i * n + j];
            }
        }
        (pairs, total)
    }
}

impl GraphKernel for DepthBasedAlignedKernel {
    fn name(&self) -> &'static str {
        "Depth-based aligned"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        let ta = depth_based_traces(a, self.layers);
        let tb = depth_based_traces(b, self.layers);
        let (pairs, _) = self.align(a, b);
        // Sum of Gaussian similarities over the aligned vertex pairs — one
        // unit of kernel mass per well-aligned pair, following the
        // "count the aligned vertex pairs" definition of the DBAK family.
        pairs
            .iter()
            .map(|&(u, v)| {
                let d = distance(&ta[u], &tb[v]);
                (-d * d / (2.0 * self.bandwidth * self.bandwidth)).exp()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};
    use haqjsk_kernels_test_util::assert_symmetric_kernel;

    /// Tiny local helper module so the symmetry check reads clearly.
    mod haqjsk_kernels_test_util {
        use super::super::GraphKernel;
        use haqjsk_graph::Graph;

        pub fn assert_symmetric_kernel<K: GraphKernel>(kernel: &K, a: &Graph, b: &Graph) {
            let ab = kernel.compute(a, b);
            let ba = kernel.compute(b, a);
            assert!((ab - ba).abs() < 1e-9, "{}: {ab} vs {ba}", kernel.name());
        }
    }

    #[test]
    fn alignment_matches_all_vertices_of_smaller_graph() {
        let kernel = DepthBasedAlignedKernel::default();
        let a = path_graph(4);
        let b = cycle_graph(6);
        let (pairs, total) = kernel.align(&a, &b);
        assert_eq!(pairs.len(), 4);
        assert!(total >= 0.0);
        // All matched indices are in range and distinct.
        let mut seen_a = std::collections::BTreeSet::new();
        let mut seen_b = std::collections::BTreeSet::new();
        for &(u, v) in &pairs {
            assert!(u < 4 && v < 6);
            assert!(seen_a.insert(u));
            assert!(seen_b.insert(v));
        }
    }

    #[test]
    fn self_alignment_is_perfect() {
        let kernel = DepthBasedAlignedKernel::default();
        let g = star_graph(6);
        let (pairs, total) = kernel.align(&g, &g);
        assert_eq!(pairs.len(), 6);
        assert!(total < 1e-9, "self alignment distance should vanish");
        // Kernel value equals the number of vertices for a perfect alignment.
        assert!((kernel.compute(&g, &g) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_is_symmetric() {
        let kernel = DepthBasedAlignedKernel::new(3, 0.5);
        assert_symmetric_kernel(&kernel, &path_graph(5), &cycle_graph(7));
        assert_symmetric_kernel(&kernel, &star_graph(6), &path_graph(4));
    }

    #[test]
    fn similar_graphs_score_higher_than_dissimilar_ones() {
        let kernel = DepthBasedAlignedKernel::default();
        let c6 = cycle_graph(6);
        let c6_again = cycle_graph(6);
        let s6 = star_graph(6);
        assert!(kernel.compute(&c6, &c6_again) > kernel.compute(&c6, &s6));
    }

    #[test]
    fn empty_graphs_produce_zero() {
        let kernel = DepthBasedAlignedKernel::default();
        let empty = Graph::new(0);
        let g = path_graph(3);
        assert_eq!(kernel.compute(&empty, &g), 0.0);
        let (pairs, total) = kernel.align(&empty, &empty);
        assert!(pairs.is_empty());
        assert_eq!(total, 0.0);
    }
}
