//! # haqjsk-kernels
//!
//! Baseline graph kernels and kernel-matrix utilities for the HAQJSK
//! reproduction.
//!
//! The paper compares the proposed HAQJSK kernels against a spectrum of
//! classical and quantum graph kernels (Table III / Table IV). This crate
//! implements those comparison methods from scratch:
//!
//! * the unaligned and Umeyama-aligned **Quantum Jensen–Shannon kernels**
//!   (QJSK, Eq. 9–11) ([`qjsk`]),
//! * the **Weisfeiler–Lehman subtree kernel** (WLSK) ([`wl`]),
//! * the **shortest-path kernel** (SPGK) ([`shortest_path`]),
//! * the **graphlet-count kernel** (GCGK) ([`graphlet`]),
//! * a fixed-length **random-walk kernel** ([`random_walk`]),
//! * a simplified **Jensen–Tsallis q-difference kernel** (JTQK) ([`jtqk`]),
//! * the **depth-based aligned kernel** in the spirit of the ASK/DBAK family
//!   ([`depth_based`]),
//!
//! together with the [`GraphKernel`] trait, the engine-backed Gram-matrix
//! builders ([`kernel`], routed through `haqjsk-engine`'s tiled parallel
//! scheduler), the process-global CTQW density cache ([`features`]), and the
//! [`KernelMatrix`] type with normalisation / centring / positive
//! semidefiniteness checks ([`matrix`]). The static property tables of the
//! paper (Table I and Table III) live in [`properties`].

pub mod depth_based;
pub mod embedding;
pub mod features;
pub mod graphlet;
pub mod jtqk;
pub mod kernel;
pub mod matrix;
pub mod nystrom;
pub mod properties;
pub mod qjsk;
pub mod random_walk;
pub mod shortest_path;
pub mod wl;

pub use depth_based::DepthBasedAlignedKernel;
pub use embedding::{kernel_distance_matrix, kernel_pca, KernelPca};
pub use features::{
    cached_alignment_basis, cached_ctqw_densities, cached_ctqw_density, cached_graph_spectrals,
    cached_wl_histogram, clear_density_cache, density_cache_shard_stats, density_cache_stats,
    register_cache_metrics, set_density_cache_budget, AlignmentBasis, GraphSpectrals, WlHistogram,
};
pub use graphlet::GraphletKernel;
pub use jtqk::JensenTsallisKernel;
pub use kernel::GraphKernel;
pub use matrix::KernelMatrix;
pub use nystrom::{LandmarkSelection, NystromApproximation};
pub use qjsk::{QjskAligned, QjskUnaligned};
pub use random_walk::RandomWalkKernel;
pub use shortest_path::ShortestPathKernel;
pub use wl::{WeisfeilerLehmanKernel, WlFeatureVec};
