//! Kernel (Gram) matrices and the transformations the evaluation protocol
//! applies to them.
//!
//! The paper feeds precomputed kernel matrices to a C-SVM; before that the
//! matrices are typically cosine-normalised so every graph has unit
//! self-similarity. Because one of the paper's central claims is that the
//! HAQJSK kernels are positive definite while the plain QJSK kernels are not,
//! this type also exposes the minimum eigenvalue of the Gram matrix and a
//! clip-to-PSD projection used when an indefinite baseline kernel must still
//! be fed to the SVM.

use haqjsk_linalg::{symmetric_eigen, symmetric_eigenvalues, LinalgError, Matrix};

/// A symmetric kernel (Gram) matrix over a set of graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMatrix {
    values: Matrix,
}

impl KernelMatrix {
    /// Wraps a square symmetric matrix of kernel values.
    pub fn new(values: Matrix) -> Result<Self, LinalgError> {
        if !values.is_square() {
            return Err(LinalgError::NotSquare {
                rows: values.rows(),
                cols: values.cols(),
            });
        }
        if !values.is_symmetric(1e-8 * values.max_abs().max(1.0)) {
            return Err(LinalgError::NotSymmetric {
                max_asymmetry: values.asymmetry(),
            });
        }
        Ok(KernelMatrix {
            values: values.symmetrize()?,
        })
    }

    /// Number of graphs the matrix covers.
    pub fn len(&self) -> usize {
        self.values.rows()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Kernel value between items `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[(i, j)]
    }

    /// Borrows the underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.values
    }

    /// Consumes the wrapper and returns the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.values
    }

    /// Cosine normalisation: `K'(i,j) = K(i,j) / sqrt(K(i,i) K(j,j))`.
    /// Entries whose diagonal is non-positive are mapped to zero.
    pub fn normalized(&self) -> KernelMatrix {
        let n = self.len();
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let d = self.values[(i, i)] * self.values[(j, j)];
                out[(i, j)] = if d > 0.0 {
                    self.values[(i, j)] / d.sqrt()
                } else {
                    0.0
                };
            }
        }
        KernelMatrix {
            values: out.symmetrize().expect("square by construction"),
        }
    }

    /// Centres the kernel matrix in feature space:
    /// `K' = K - 1K/n - K1/n + 1K1/n²`.
    pub fn centered(&self) -> KernelMatrix {
        let n = self.len();
        if n == 0 {
            return self.clone();
        }
        let nf = n as f64;
        let row_means: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| self.values[(i, j)]).sum::<f64>() / nf)
            .collect();
        let total_mean: f64 = row_means.iter().sum::<f64>() / nf;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                out[(i, j)] = self.values[(i, j)] - row_means[i] - row_means[j] + total_mean;
            }
        }
        KernelMatrix {
            values: out.symmetrize().expect("square by construction"),
        }
    }

    /// Minimum eigenvalue of the Gram matrix — negative values witness that
    /// the kernel is not positive semidefinite on this dataset. Uses the
    /// values-only eigen driver: no eigenvector matrix is formed.
    pub fn min_eigenvalue(&self) -> Result<f64, LinalgError> {
        if self.is_empty() {
            return Ok(0.0);
        }
        Ok(symmetric_eigenvalues(&self.values)?
            .first()
            .copied()
            .unwrap_or(0.0))
    }

    /// Whether the matrix is positive semidefinite within `tol` (relative to
    /// the largest absolute entry).
    pub fn is_positive_semidefinite(&self, tol: f64) -> Result<bool, LinalgError> {
        let scale = self.values.max_abs().max(1.0);
        Ok(self.min_eigenvalue()? >= -tol * scale)
    }

    /// Projects onto the PSD cone by clipping negative eigenvalues to zero
    /// (the standard fix applied before handing an indefinite kernel to an
    /// SVM solver).
    pub fn project_psd(&self) -> Result<KernelMatrix, LinalgError> {
        if self.is_empty() {
            return Ok(self.clone());
        }
        let eig = symmetric_eigen(&self.values)?;
        let clipped = eig.map_spectrum(|l| l.max(0.0));
        Ok(KernelMatrix {
            values: clipped.symmetrize()?,
        })
    }

    /// Extracts the sub-kernel-matrix for the given item indices (used by the
    /// cross-validation folds).
    pub fn select(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), cols.len());
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                out[(i, j)] = self.values[(r, c)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_kernel() -> KernelMatrix {
        KernelMatrix::new(
            Matrix::from_rows(&[
                vec![4.0, 2.0, 0.0],
                vec![2.0, 9.0, 3.0],
                vec![0.0, 3.0, 16.0],
            ])
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape_and_symmetry() {
        assert!(KernelMatrix::new(Matrix::zeros(2, 3)).is_err());
        let asym = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]).unwrap();
        assert!(KernelMatrix::new(asym).is_err());
        let k = toy_kernel();
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());
        assert_eq!(k.get(1, 2), 3.0);
    }

    #[test]
    fn normalization_puts_ones_on_diagonal() {
        let k = toy_kernel().normalized();
        for i in 0..3 {
            assert!((k.get(i, i) - 1.0).abs() < 1e-12);
        }
        assert!((k.get(0, 1) - 2.0 / 6.0).abs() < 1e-12);
        // All normalised values are within [-1, 1].
        for i in 0..3 {
            for j in 0..3 {
                assert!(k.get(i, j).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn normalization_handles_zero_diagonal() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 4.0]]).unwrap();
        let k = KernelMatrix::new(m).unwrap().normalized();
        assert_eq!(k.get(0, 1), 0.0);
    }

    #[test]
    fn centering_makes_row_sums_zero() {
        let k = toy_kernel().centered();
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| k.get(i, j)).sum();
            assert!(s.abs() < 1e-10);
        }
    }

    #[test]
    fn psd_detection_and_projection() {
        let k = toy_kernel();
        assert!(k.is_positive_semidefinite(1e-9).unwrap());
        // An indefinite symmetric matrix.
        let indef =
            KernelMatrix::new(Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap())
                .unwrap();
        assert!(indef.min_eigenvalue().unwrap() < 0.0);
        assert!(!indef.is_positive_semidefinite(1e-9).unwrap());
        let fixed = indef.project_psd().unwrap();
        assert!(fixed.is_positive_semidefinite(1e-9).unwrap());
        // Projection does not change an already-PSD matrix (up to noise).
        let same = k.project_psd().unwrap();
        assert!((same.matrix() - k.matrix()).max_abs() < 1e-9);
    }

    #[test]
    fn selection_extracts_fold_blocks() {
        let k = toy_kernel();
        let block = k.select(&[0, 2], &[1]);
        assert_eq!(block.shape(), (2, 1));
        assert_eq!(block[(0, 0)], 2.0);
        assert_eq!(block[(1, 0)], 3.0);
    }

    #[test]
    fn empty_kernel_matrix() {
        let k = KernelMatrix::new(Matrix::zeros(0, 0)).unwrap();
        assert!(k.is_empty());
        assert_eq!(k.min_eigenvalue().unwrap(), 0.0);
        assert!(k.is_positive_semidefinite(1e-9).unwrap());
        assert!(k.project_psd().unwrap().is_empty());
        assert_eq!(k.centered().len(), 0);
    }
}
