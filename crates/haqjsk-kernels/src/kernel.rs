//! The [`GraphKernel`] trait and the Gram-matrix builders.
//!
//! Every kernel in the workspace (the baselines in this crate and the HAQJSK
//! kernels in `haqjsk-core`) exposes the same two operations: a pairwise
//! kernel value and a Gram matrix over a dataset. All Gram computation is
//! routed through the shared [`Engine`](haqjsk_engine::Engine) — a
//! process-global worker pool with a tiled scheduler — because the quantum
//! kernels pay an `O(n³)` eigendecomposition per pair and datasets contain
//! hundreds to thousands of graphs. The worker count is controlled by the
//! `HAQJSK_THREADS` environment variable.

use crate::matrix::KernelMatrix;
use haqjsk_engine::{BackendKind, Engine};
use haqjsk_graph::Graph;
use haqjsk_linalg::Matrix;

/// A positive (or, for some baselines, indefinite) similarity measure between
/// pairs of graphs.
pub trait GraphKernel: Sync {
    /// Human-readable name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Kernel value between two graphs.
    fn compute(&self, a: &Graph, b: &Graph) -> f64;

    /// Gram matrix over a dataset, on the engine's default execution
    /// backend.
    fn gram_matrix(&self, graphs: &[Graph]) -> KernelMatrix {
        self.gram_matrix_on(graphs, None)
    }

    /// Gram matrix over a dataset on an explicit execution backend (`None`
    /// = the engine default, which honours `HAQJSK_BACKEND`). The default
    /// implementation evaluates all pairs through the chosen backend;
    /// kernels with per-graph features override this to add a prefetch
    /// hook (so batched backends extract features as one batch) or to
    /// factor through explicit feature maps entirely.
    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let _timer = time_kernel_gram(self.name());
        gram_from_pairwise_on(graphs, backend, |a, b| self.compute(a, b))
    }
}

/// RAII guard recording one Gram build into the
/// `haqjsk_kernel_gram_seconds{kernel=...}` histogram on drop. Every
/// `gram_matrix_on` implementation (the trait default and the kernels that
/// override it) opens one at entry, so per-kernel build latency is
/// observable regardless of which scheduling path a kernel takes. One
/// registry lookup and one clock pair per Gram matrix — nothing per pair.
pub struct KernelGramTimer {
    histogram: haqjsk_obs::Histogram,
    start: std::time::Instant,
}

/// Starts timing a Gram build of `kernel` (see [`KernelGramTimer`]).
pub fn time_kernel_gram(kernel: &str) -> KernelGramTimer {
    KernelGramTimer {
        histogram: haqjsk_obs::registry().histogram(
            "haqjsk_kernel_gram_seconds",
            "Wall-clock time of one Gram matrix build, by kernel.",
            &[("kernel", kernel)],
        ),
        start: std::time::Instant::now(),
    }
}

impl Drop for KernelGramTimer {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}

/// Builds a Gram matrix by evaluating `f` on every unordered pair of graphs
/// on the engine's default backend.
pub fn gram_from_pairwise<F>(graphs: &[Graph], f: F) -> KernelMatrix
where
    F: Fn(&Graph, &Graph) -> f64 + Sync,
{
    gram_from_pairwise_on(graphs, None, f)
}

/// [`gram_from_pairwise`] with an explicit backend choice.
pub fn gram_from_pairwise_on<F>(
    graphs: &[Graph],
    backend: Option<BackendKind>,
    f: F,
) -> KernelMatrix
where
    F: Fn(&Graph, &Graph) -> f64 + Sync,
{
    gram_from_indexed_on(graphs.len(), backend, |i, j| f(&graphs[i], &graphs[j]))
}

/// Builds a Gram matrix from an index-pair kernel function — the preferred
/// entry point when per-item features are precomputed, since it avoids any
/// graph-to-index lookup in the hot pair loop.
pub fn gram_from_indexed<F>(n: usize, f: F) -> KernelMatrix
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    gram_from_indexed_on(n, None, f)
}

/// [`gram_from_indexed`] with an explicit backend choice.
pub fn gram_from_indexed_on<F>(n: usize, backend: Option<BackendKind>, f: F) -> KernelMatrix
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let values = Engine::global().gram_on(backend, n, f);
    KernelMatrix::new(values).expect("pairwise construction is symmetric")
}

/// Builds a Gram matrix with a per-item `prefetch` hook: backends that
/// batch feature extraction run `prefetch(i)` for every item before the
/// pair loop, the others let `f` compute features lazily. `f` must remain
/// correct without the hook (compute-through-cache is the usual shape).
pub fn gram_from_indexed_prefetched<P, F>(
    n: usize,
    backend: Option<BackendKind>,
    prefetch: P,
    f: F,
) -> KernelMatrix
where
    P: Fn(usize) + Sync,
    F: Fn(usize, usize) -> f64 + Sync,
{
    let values = Engine::global().gram_prefetched(backend, n, prefetch, f);
    KernelMatrix::new(values).expect("pairwise construction is symmetric")
}

/// Builds a Gram matrix through a whole-tile evaluator with a per-item
/// `prefetch` hook: the execution backend hands each scheduling tile's
/// upper-triangle index pairs to `tiles` in one call, so kernels that
/// batch per-pair work (the tile-batched mixture eigensolves of QJSK/JTQK)
/// see whole tiles instead of single pairs. The evaluator must produce
/// values byte-identical to the kernel's per-pair entry function; batched
/// backends additionally run `prefetch(i)` for every item first.
pub fn gram_from_tiles_prefetched<P, T>(
    n: usize,
    backend: Option<BackendKind>,
    prefetch: P,
    tiles: T,
) -> KernelMatrix
where
    P: Fn(usize) + Sync,
    T: haqjsk_engine::TileEvaluator,
{
    gram_from_tiles_spec(n, backend, prefetch, tiles, None)
}

/// [`gram_from_tiles_prefetched`] with an optional declarative
/// [`RemoteGram`](haqjsk_engine::RemoteGram) description of the same
/// computation. Local backends ignore the spec; the distributed backend
/// uses it to ship tiles to worker processes, keeping `tiles` as the
/// byte-identical local fallback — so attaching a spec never changes the
/// result, only where it is computed.
pub fn gram_from_tiles_spec<P, T>(
    n: usize,
    backend: Option<BackendKind>,
    prefetch: P,
    tiles: T,
    spec: Option<&haqjsk_engine::RemoteGram<'_>>,
) -> KernelMatrix
where
    P: Fn(usize) + Sync,
    T: haqjsk_engine::TileEvaluator,
{
    let values = Engine::global().gram_tiles_spec(backend, n, prefetch, tiles, spec);
    KernelMatrix::new(values).expect("pairwise construction is symmetric")
}

/// Per-Gram pin of per-graph artifacts: each slot is filled at most once
/// per Gram computation (through the global feature caches or directly) and
/// the held values stay alive even if a byte budget evicts them from the
/// cache mid-computation — the pair loop then reads a lock-free slot.
/// Batched backends fill every slot as one parallel batch through the
/// prefetch hook; lazy backends fill on first touch.
pub(crate) struct PinnedFeatures<'a, T> {
    graphs: &'a [Graph],
    slots: Vec<std::sync::OnceLock<T>>,
}

impl<'a, T> PinnedFeatures<'a, T> {
    pub(crate) fn new(graphs: &'a [Graph]) -> Self {
        PinnedFeatures {
            graphs,
            slots: graphs.iter().map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    /// The pinned artifact of graph `i`, extracting it with `init` on first
    /// touch.
    pub(crate) fn get(&self, i: usize, init: impl FnOnce(&Graph) -> T) -> &T {
        self.slots[i].get_or_init(|| init(&self.graphs[i]))
    }
}

/// Builds a Gram matrix from explicit feature vectors using the linear kernel
/// `K(i, j) = ⟨x_i, x_j⟩` — the shape that the WL, shortest-path and graphlet
/// kernels all reduce to once their feature histograms are extracted.
pub fn gram_from_features(features: &[Vec<f64>]) -> KernelMatrix {
    let n = features.len();
    let mut values = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = dot_sparse(&features[i], &features[j]);
            values[(i, j)] = v;
            values[(j, i)] = v;
        }
    }
    KernelMatrix::new(values).expect("feature construction is symmetric")
}

fn dot_sparse(a: &[f64], b: &[f64]) -> f64 {
    let len = a.len().min(b.len());
    let mut acc = 0.0;
    for k in 0..len {
        acc += a[k] * b[k];
    }
    acc
}

/// Merge-join dot product of two sorted sparse feature vectors — the
/// shared inner product of the CSR-style feature-map kernels (WL,
/// shortest-path, and JTQK's cached local factor).
pub fn sparse_dot<K: Ord>(a: &[(K, f64)], b: &[(K, f64)]) -> f64 {
    let mut acc = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Sorted run-length histogram of a key multiset — the construction step
/// of every CSR-style sparse feature vector (sorted unique keys + counts).
pub(crate) fn sorted_histogram<K: Ord>(mut keys: Vec<K>) -> Vec<(K, f64)> {
    keys.sort_unstable();
    let mut out: Vec<(K, f64)> = Vec::new();
    for key in keys {
        match out.last_mut() {
            Some((k, count)) if *k == key => *count += 1.0,
            _ => out.push((key, 1.0)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    /// A trivially simple kernel counting shared edge counts, used to test
    /// the default plumbing.
    struct EdgeCountKernel;

    impl GraphKernel for EdgeCountKernel {
        fn name(&self) -> &'static str {
            "edge-count"
        }
        fn compute(&self, a: &Graph, b: &Graph) -> f64 {
            (a.num_edges() * b.num_edges()) as f64
        }
    }

    #[test]
    fn default_gram_matches_pairwise_values() {
        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6)];
        let kernel = EdgeCountKernel;
        let gram = kernel.gram_matrix(&graphs);
        assert_eq!(gram.len(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(gram.get(i, j), kernel.compute(&graphs[i], &graphs[j]));
            }
        }
        assert_eq!(kernel.name(), "edge-count");
    }

    #[test]
    fn gram_of_empty_dataset() {
        let gram = EdgeCountKernel.gram_matrix(&[]);
        assert!(gram.is_empty());
    }

    #[test]
    fn gram_handles_large_pair_counts() {
        let graphs: Vec<Graph> = (3..23).map(path_graph).collect();
        let gram = EdgeCountKernel.gram_matrix(&graphs);
        assert_eq!(gram.len(), 20);
        // Spot check symmetry.
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(gram.get(i, j), gram.get(j, i));
            }
        }
    }

    #[test]
    fn gram_agrees_across_backends() {
        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6), path_graph(7)];
        let kernel = EdgeCountKernel;
        let reference = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
        for backend in BackendKind::ALL {
            let gram = kernel.gram_matrix_on(&graphs, Some(backend));
            assert_eq!(
                gram.matrix(),
                reference.matrix(),
                "backend {backend} must match the serial reference"
            );
        }
        let prefetched = gram_from_indexed_prefetched(
            graphs.len(),
            Some(BackendKind::BatchedTile),
            |_i| {},
            |i, j| kernel.compute(&graphs[i], &graphs[j]),
        );
        assert_eq!(prefetched.matrix(), reference.matrix());
    }

    #[test]
    fn indexed_gram_matches_engine_serial_path() {
        let f = |i: usize, j: usize| (i * 7 + j * 3) as f64;
        let gram = gram_from_indexed(9, f);
        let serial = Engine::gram_serial(9, f);
        assert_eq!(gram.matrix(), &serial);
    }

    #[test]
    fn feature_gram_is_linear_kernel() {
        let features = vec![vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 1.0], vec![1.0, 1.0]];
        let gram = gram_from_features(&features);
        assert_eq!(gram.get(0, 0), 5.0);
        assert_eq!(gram.get(0, 1), 2.0);
        // Mismatched lengths are handled by truncation to the shared prefix.
        assert_eq!(gram.get(0, 2), 1.0);
        assert!(gram.is_positive_semidefinite(1e-9).unwrap());
    }
}
