//! Weisfeiler–Lehman subtree kernel (WLSK).
//!
//! The R-convolution baseline of Shervashidze et al.: `h` rounds of WL label
//! refinement, where each round replaces every vertex label with a compressed
//! label of `(own label, sorted multiset of neighbour labels)`. The kernel is
//! the inner product of the concatenated label-count histograms over all
//! rounds. Unlabelled graphs use vertex degrees as initial labels, matching
//! the convention used for the paper's unlabelled datasets.

use crate::kernel::{gram_from_features, GraphKernel};
use crate::matrix::KernelMatrix;
use haqjsk_engine::BackendKind;
use haqjsk_graph::Graph;
use std::collections::HashMap;

/// The Weisfeiler–Lehman subtree kernel with `iterations` refinement rounds.
#[derive(Debug, Clone)]
pub struct WeisfeilerLehmanKernel {
    /// Number of WL refinement iterations (the paper's tables use height 10).
    pub iterations: usize,
}

impl Default for WeisfeilerLehmanKernel {
    fn default() -> Self {
        WeisfeilerLehmanKernel { iterations: 4 }
    }
}

impl WeisfeilerLehmanKernel {
    /// Creates the kernel with the given number of refinement rounds.
    pub fn new(iterations: usize) -> Self {
        WeisfeilerLehmanKernel { iterations }
    }

    /// Runs WL refinement on a whole dataset at once (so compressed labels
    /// are shared across graphs) and returns, per graph, the concatenated
    /// label histogram over all iterations as a sparse `label -> count` map.
    pub fn feature_maps(&self, graphs: &[Graph]) -> Vec<HashMap<u64, f64>> {
        let mut features: Vec<HashMap<u64, f64>> = vec![HashMap::new(); graphs.len()];
        // Current labels per graph per vertex.
        let mut labels: Vec<Vec<u64>> = graphs
            .iter()
            .map(|g| g.effective_labels().iter().map(|&l| l as u64).collect())
            .collect();
        // Global dictionary compressing (label, neighbourhood) signatures.
        let mut dictionary: HashMap<String, u64> = HashMap::new();
        let mut next_label: u64 = 1_000_000; // distinct from raw degree labels

        // Iteration 0 histogram: raw labels, offset so rounds do not collide.
        for (gi, graph_labels) in labels.iter().enumerate() {
            for &label in graph_labels {
                *features[gi].entry(label).or_insert(0.0) += 1.0;
            }
        }

        for round in 0..self.iterations {
            let round_offset = (round as u64 + 1) << 32;
            let mut new_labels: Vec<Vec<u64>> = Vec::with_capacity(graphs.len());
            for (gi, graph) in graphs.iter().enumerate() {
                let mut updated = Vec::with_capacity(graph.num_vertices());
                for v in 0..graph.num_vertices() {
                    let mut neigh: Vec<u64> = graph.neighbors(v).map(|u| labels[gi][u]).collect();
                    neigh.sort_unstable();
                    let signature = format!("{}|{:?}", labels[gi][v], neigh);
                    let compressed = *dictionary.entry(signature).or_insert_with(|| {
                        next_label += 1;
                        next_label
                    });
                    updated.push(compressed);
                }
                new_labels.push(updated);
            }
            labels = new_labels;
            for (gi, graph_labels) in labels.iter().enumerate() {
                for &label in graph_labels {
                    *features[gi].entry(round_offset ^ label).or_insert(0.0) += 1.0;
                }
            }
        }
        features
    }

    fn sparse_dot(a: &HashMap<u64, f64>, b: &HashMap<u64, f64>) -> f64 {
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        small
            .iter()
            .filter_map(|(k, va)| large.get(k).map(|vb| va * vb))
            .sum()
    }
}

impl GraphKernel for WeisfeilerLehmanKernel {
    fn name(&self) -> &'static str {
        "WLSK"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        let features = self.feature_maps(&[a.clone(), b.clone()]);
        Self::sparse_dot(&features[0], &features[1])
    }

    // The WL Gram factors through explicit feature maps, so the execution
    // backend is irrelevant; overriding the backend-aware hook keeps this
    // fast path on every entry point.
    fn gram_matrix_on(&self, graphs: &[Graph], _backend: Option<BackendKind>) -> KernelMatrix {
        let sparse = self.feature_maps(graphs);
        // Re-index the union of labels densely so the generic feature Gram
        // builder can be reused.
        let mut index: HashMap<u64, usize> = HashMap::new();
        for map in &sparse {
            for &k in map.keys() {
                let next = index.len();
                index.entry(k).or_insert(next);
            }
        }
        let dim = index.len();
        let dense: Vec<Vec<f64>> = sparse
            .iter()
            .map(|map| {
                let mut v = vec![0.0; dim];
                for (k, &count) in map {
                    v[index[k]] = count;
                }
                v
            })
            .collect();
        gram_from_features(&dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn identical_graphs_have_maximal_similarity() {
        let kernel = WeisfeilerLehmanKernel::new(3);
        let g = cycle_graph(6);
        let self_sim = kernel.compute(&g, &g);
        let cross = kernel.compute(&g, &path_graph(6));
        assert!(self_sim > cross);
    }

    #[test]
    fn kernel_is_symmetric_and_nonnegative() {
        let kernel = WeisfeilerLehmanKernel::default();
        let a = star_graph(7);
        let b = cycle_graph(7);
        assert_eq!(kernel.compute(&a, &b), kernel.compute(&b, &a));
        assert!(kernel.compute(&a, &b) >= 0.0);
    }

    #[test]
    fn isomorphic_graphs_get_equal_self_similarity() {
        let kernel = WeisfeilerLehmanKernel::new(3);
        let g = path_graph(6);
        let perm = vec![5, 4, 3, 2, 1, 0];
        let h = g.permute(&perm).unwrap();
        // WL features are permutation invariant, so all pairwise values agree.
        assert!((kernel.compute(&g, &g) - kernel.compute(&h, &h)).abs() < 1e-9);
        assert!((kernel.compute(&g, &h) - kernel.compute(&g, &g)).abs() < 1e-9);
    }

    #[test]
    fn labels_sharpen_discrimination() {
        let kernel = WeisfeilerLehmanKernel::new(2);
        let mut a = path_graph(4);
        let mut b = path_graph(4);
        // Same topology, different labels -> lower similarity than identical labels.
        a.set_labels(vec![1, 1, 1, 1]).unwrap();
        b.set_labels(vec![2, 2, 2, 2]).unwrap();
        let cross = kernel.compute(&a, &b);
        let same = kernel.compute(&a, &a);
        assert!(cross < same);
        assert_eq!(cross, 0.0, "disjoint label alphabets share no features");
    }

    #[test]
    fn gram_matrix_is_psd() {
        let kernel = WeisfeilerLehmanKernel::new(3);
        let graphs = vec![
            path_graph(5),
            cycle_graph(5),
            star_graph(5),
            cycle_graph(7),
            path_graph(8),
        ];
        let gram = kernel.gram_matrix(&graphs);
        assert_eq!(gram.len(), 5);
        assert!(gram.is_positive_semidefinite(1e-9).unwrap());
        // Gram entries must match pairwise computation (shared dictionary
        // makes values identical because signatures are content-addressed).
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                let direct = kernel.compute(&graphs[i], &graphs[j]);
                assert!((gram.get(i, j) - direct).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_iterations_reduces_to_label_histogram_kernel() {
        let kernel = WeisfeilerLehmanKernel::new(0);
        let a = path_graph(4); // degrees 1,2,2,1
        let b = path_graph(4);
        // Histogram dot product: two labels "1" (count 2) and "2" (count 2)
        // => 2*2 + 2*2 = 8.
        assert_eq!(kernel.compute(&a, &b), 8.0);
    }
}
