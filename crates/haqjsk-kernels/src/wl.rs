//! Weisfeiler–Lehman subtree kernel (WLSK).
//!
//! The R-convolution baseline of Shervashidze et al.: `h` rounds of WL label
//! refinement, where each round replaces every vertex label with a compressed
//! label of `(own label, sorted multiset of neighbour labels)`. The kernel is
//! the inner product of the concatenated label-count histograms over all
//! rounds. Unlabelled graphs use vertex degrees as initial labels, matching
//! the convention used for the paper's unlabelled datasets.
//!
//! ## Content-addressed labels, CSR-style feature maps
//!
//! Compressed labels are **content hashes** of the `(label, sorted
//! neighbour labels)` signature (a splitmix64 sponge) rather than entries
//! in a shared dictionary. That makes each graph's feature map a
//! self-contained per-graph artifact — two graphs agree on a feature key
//! exactly when their refinement signatures agree, no matter when or where
//! the maps were computed — which is what lets JTQK cache WL histograms per
//! graph and lets this kernel skip any joint pass over the dataset. The
//! maps themselves are sorted `(key, count)` vectors ([`WlFeatureVec`]):
//! the kernel value is a cache-friendly merge-join dot product, and the
//! Gram computation never materialises the dense union label space (whose
//! size grows with the whole dataset's label alphabet).

use crate::kernel::{gram_from_indexed_on, sorted_histogram, GraphKernel};
use crate::matrix::KernelMatrix;
use haqjsk_engine::BackendKind;
use haqjsk_graph::Graph;

/// The shared merge-join dot of sorted sparse vectors (re-exported from
/// [`crate::kernel`], where the CSR-style feature-map kernels all get it).
pub use crate::kernel::sparse_dot;

/// A sparse WL feature histogram: `(feature key, count)` sorted by key.
pub type WlFeatureVec = Vec<(u64, f64)>;

/// splitmix64 finaliser — the mixing core of the content-addressed labels.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Weisfeiler–Lehman subtree kernel with `iterations` refinement rounds.
#[derive(Debug, Clone)]
pub struct WeisfeilerLehmanKernel {
    /// Number of WL refinement iterations (the paper's tables use height 10).
    pub iterations: usize,
}

impl Default for WeisfeilerLehmanKernel {
    fn default() -> Self {
        WeisfeilerLehmanKernel { iterations: 4 }
    }
}

impl WeisfeilerLehmanKernel {
    /// Creates the kernel with the given number of refinement rounds.
    pub fn new(iterations: usize) -> Self {
        WeisfeilerLehmanKernel { iterations }
    }

    /// Runs WL refinement on one graph and returns its concatenated label
    /// histogram over all iterations as a sorted sparse vector. Labels are
    /// content-addressed, so maps computed independently are directly
    /// comparable across graphs and across calls.
    pub fn feature_map(&self, graph: &Graph) -> WlFeatureVec {
        let n = graph.num_vertices();
        let mut labels: Vec<u64> = graph.effective_labels().iter().map(|&l| l as u64).collect();
        let mut keys: Vec<u64> = Vec::with_capacity(n * (self.iterations + 1));
        // Round 0: raw labels.
        keys.extend(labels.iter().map(|&l| mix64(l)));

        let mut neigh: Vec<u64> = Vec::new();
        for round in 0..self.iterations {
            // Per-round salt keeps equal signatures from different rounds
            // in distinct histogram slots (the rounds are concatenated).
            let tag = (round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut updated = Vec::with_capacity(n);
            for v in 0..n {
                neigh.clear();
                neigh.extend(graph.neighbors(v).map(|u| labels[u]));
                neigh.sort_unstable();
                // splitmix64 sponge over (own label, sorted neighbours).
                let mut h = mix64(labels[v] ^ 0x517c_c1b7_2722_0a95);
                for &nl in &neigh {
                    h = mix64(h ^ mix64(nl));
                }
                updated.push(h);
            }
            labels = updated;
            keys.extend(labels.iter().map(|&l| mix64(l ^ tag)));
        }
        sorted_histogram(keys)
    }

    /// Feature maps of a whole dataset; each map is independent (see
    /// [`WeisfeilerLehmanKernel::feature_map`]).
    pub fn feature_maps(&self, graphs: &[Graph]) -> Vec<WlFeatureVec> {
        graphs.iter().map(|g| self.feature_map(g)).collect()
    }
}

impl GraphKernel for WeisfeilerLehmanKernel {
    fn name(&self) -> &'static str {
        "WLSK"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        sparse_dot(&self.feature_map(a), &self.feature_map(b))
    }

    // The WL Gram factors through explicit feature maps: one refinement
    // pass per graph, then a merge-join dot per pair on the requested
    // backend — no dense union label space is ever materialised.
    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let _timer = crate::kernel::time_kernel_gram(self.name());
        let features = self.feature_maps(graphs);
        gram_from_indexed_on(graphs.len(), backend, |i, j| {
            sparse_dot(&features[i], &features[j])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn identical_graphs_have_maximal_similarity() {
        let kernel = WeisfeilerLehmanKernel::new(3);
        let g = cycle_graph(6);
        let self_sim = kernel.compute(&g, &g);
        let cross = kernel.compute(&g, &path_graph(6));
        assert!(self_sim > cross);
    }

    #[test]
    fn kernel_is_symmetric_and_nonnegative() {
        let kernel = WeisfeilerLehmanKernel::default();
        let a = star_graph(7);
        let b = cycle_graph(7);
        assert_eq!(kernel.compute(&a, &b), kernel.compute(&b, &a));
        assert!(kernel.compute(&a, &b) >= 0.0);
    }

    #[test]
    fn isomorphic_graphs_get_equal_self_similarity() {
        let kernel = WeisfeilerLehmanKernel::new(3);
        let g = path_graph(6);
        let perm = vec![5, 4, 3, 2, 1, 0];
        let h = g.permute(&perm).unwrap();
        // WL features are permutation invariant, so all pairwise values agree.
        assert!((kernel.compute(&g, &g) - kernel.compute(&h, &h)).abs() < 1e-9);
        assert!((kernel.compute(&g, &h) - kernel.compute(&g, &g)).abs() < 1e-9);
    }

    #[test]
    fn labels_sharpen_discrimination() {
        let kernel = WeisfeilerLehmanKernel::new(2);
        let mut a = path_graph(4);
        let mut b = path_graph(4);
        // Same topology, different labels -> lower similarity than identical labels.
        a.set_labels(vec![1, 1, 1, 1]).unwrap();
        b.set_labels(vec![2, 2, 2, 2]).unwrap();
        let cross = kernel.compute(&a, &b);
        let same = kernel.compute(&a, &a);
        assert!(cross < same);
        assert_eq!(cross, 0.0, "disjoint label alphabets share no features");
    }

    #[test]
    fn feature_maps_are_sorted_and_self_contained() {
        let kernel = WeisfeilerLehmanKernel::new(3);
        let g = cycle_graph(7);
        let map = kernel.feature_map(&g);
        assert!(
            map.windows(2).all(|w| w[0].0 < w[1].0),
            "keys sorted, unique"
        );
        // Total count = vertices x (iterations + 1) rounds.
        let total: f64 = map.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, (7 * 4) as f64);
        // A map computed alone equals the map computed alongside others.
        let joint = kernel.feature_maps(&[path_graph(5), g.clone(), star_graph(6)]);
        assert_eq!(joint[1], map, "feature maps are dataset-independent");
    }

    #[test]
    fn gram_matrix_is_psd() {
        let kernel = WeisfeilerLehmanKernel::new(3);
        let graphs = vec![
            path_graph(5),
            cycle_graph(5),
            star_graph(5),
            cycle_graph(7),
            path_graph(8),
        ];
        let gram = kernel.gram_matrix(&graphs);
        assert_eq!(gram.len(), 5);
        assert!(gram.is_positive_semidefinite(1e-9).unwrap());
        // Gram entries must match pairwise computation (content-addressed
        // signatures make values identical across call patterns).
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                let direct = kernel.compute(&graphs[i], &graphs[j]);
                assert!((gram.get(i, j) - direct).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gram_is_identical_across_backends() {
        let kernel = WeisfeilerLehmanKernel::new(2);
        let graphs = vec![path_graph(5), cycle_graph(6), star_graph(7), path_graph(4)];
        let reference = kernel.gram_matrix_on(&graphs, Some(BackendKind::Serial));
        for backend in BackendKind::ALL {
            let gram = kernel.gram_matrix_on(&graphs, Some(backend));
            assert_eq!(gram.matrix(), reference.matrix(), "backend {backend}");
        }
    }

    #[test]
    fn zero_iterations_reduces_to_label_histogram_kernel() {
        let kernel = WeisfeilerLehmanKernel::new(0);
        let a = path_graph(4); // degrees 1,2,2,1
        let b = path_graph(4);
        // Histogram dot product: two labels "1" (count 2) and "2" (count 2)
        // => 2*2 + 2*2 = 8.
        assert_eq!(kernel.compute(&a, &b), 8.0);
    }

    #[test]
    fn sparse_dot_merges_sorted_vectors() {
        let a = vec![(1u64, 2.0), (5, 1.0), (9, 3.0)];
        let b = vec![(1u64, 4.0), (6, 2.0), (9, 0.5)];
        assert_eq!(sparse_dot(&a, &b), 2.0 * 4.0 + 3.0 * 0.5);
        assert_eq!(sparse_dot(&a, &[]), 0.0);
    }
}
