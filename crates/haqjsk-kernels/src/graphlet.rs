//! Graphlet-count kernel (GCGK, Shervashidze et al.).
//!
//! Each graph is mapped to the histogram of its (connected and disconnected)
//! 3-vertex graphlets and connected 4-vertex graphlets; the kernel is the
//! inner product of the normalised histograms. Exact 3-graphlet counting is
//! `O(n³)`; for the 4-vertex graphlets the kernel samples vertex quadruples
//! when the graph is larger than a threshold, which mirrors the sampling
//! strategy used in practice for the GCGK baseline.

use crate::kernel::{gram_from_features, GraphKernel};
use crate::matrix::KernelMatrix;
use haqjsk_engine::BackendKind;
use haqjsk_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct 3-vertex graphlet types (by edge count: 0, 1, 2, 3).
pub const NUM_3_GRAPHLETS: usize = 4;
/// Number of connected 4-vertex graphlet types
/// (path, star, cycle, tadpole/paw, diamond, clique).
pub const NUM_4_GRAPHLETS: usize = 6;

/// The graphlet-count kernel.
#[derive(Debug, Clone)]
pub struct GraphletKernel {
    /// Include (sampled) connected 4-vertex graphlets in the feature map.
    pub include_four: bool,
    /// Number of sampled quadruples per graph when counting 4-graphlets on
    /// graphs with more than `exact_threshold` vertices.
    pub samples: usize,
    /// Below this vertex count, 4-graphlets are counted exactly.
    pub exact_threshold: usize,
    /// Seed for the quadruple sampler (kept fixed so Gram matrices are
    /// reproducible and symmetric).
    pub seed: u64,
}

impl Default for GraphletKernel {
    fn default() -> Self {
        GraphletKernel {
            include_four: true,
            samples: 2000,
            exact_threshold: 25,
            seed: 7,
        }
    }
}

impl GraphletKernel {
    /// Creates a kernel counting only the 3-vertex graphlets.
    pub fn three_only() -> Self {
        GraphletKernel {
            include_four: false,
            ..Default::default()
        }
    }

    /// Counts the 3-vertex graphlets exactly, returning the histogram
    /// `[empty, one-edge, path, triangle]`.
    pub fn count_3_graphlets(graph: &Graph) -> [f64; NUM_3_GRAPHLETS] {
        let n = graph.num_vertices();
        let mut counts = [0.0_f64; NUM_3_GRAPHLETS];
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let edges = graph.has_edge(a, b) as usize
                        + graph.has_edge(a, c) as usize
                        + graph.has_edge(b, c) as usize;
                    counts[edges] += 1.0;
                }
            }
        }
        counts
    }

    /// Classifies the induced subgraph on 4 vertices into one of the six
    /// connected 4-graphlet types; returns `None` when it is disconnected.
    fn classify_4(graph: &Graph, quad: [usize; 4]) -> Option<usize> {
        let mut edges = 0usize;
        let mut degree = [0usize; 4];
        for i in 0..4 {
            for j in (i + 1)..4 {
                if graph.has_edge(quad[i], quad[j]) {
                    edges += 1;
                    degree[i] += 1;
                    degree[j] += 1;
                }
            }
        }
        // Connectivity check for at most 4 vertices: every vertex must have
        // degree >= 1 and the structure must not split into two disjoint
        // edges (the only disconnected case with min degree 1).
        if degree.contains(&0) {
            return None;
        }
        let mut sorted = degree;
        sorted.sort_unstable();
        match (edges, sorted) {
            (3, [1, 1, 1, 3]) => Some(1), // star
            (3, [1, 1, 2, 2]) => Some(0), // path
            (3, _) => None,               // triangle + isolated handled above
            (4, [1, 2, 2, 3]) => Some(3), // tadpole / paw
            (4, [2, 2, 2, 2]) => Some(2), // 4-cycle
            (5, _) => Some(4),            // diamond
            (6, _) => Some(5),            // clique K4
            _ => None,                    // 2 disjoint edges etc.
        }
    }

    /// Counts (exactly or by sampling) the connected 4-vertex graphlets.
    pub fn count_4_graphlets(&self, graph: &Graph) -> [f64; NUM_4_GRAPHLETS] {
        let n = graph.num_vertices();
        let mut counts = [0.0_f64; NUM_4_GRAPHLETS];
        if n < 4 {
            return counts;
        }
        if n <= self.exact_threshold {
            for a in 0..n {
                for b in (a + 1)..n {
                    for c in (b + 1)..n {
                        for d in (c + 1)..n {
                            if let Some(t) = Self::classify_4(graph, [a, b, c, d]) {
                                counts[t] += 1.0;
                            }
                        }
                    }
                }
            }
        } else {
            let mut rng = StdRng::seed_from_u64(self.seed ^ (n as u64));
            for _ in 0..self.samples {
                let mut quad = [0usize; 4];
                // Rejection-sample four distinct vertices.
                loop {
                    for slot in quad.iter_mut() {
                        *slot = rng.gen_range(0..n);
                    }
                    let mut sorted = quad;
                    sorted.sort_unstable();
                    if sorted.windows(2).all(|w| w[0] != w[1]) {
                        break;
                    }
                }
                if let Some(t) = Self::classify_4(graph, quad) {
                    counts[t] += 1.0;
                }
            }
            // Scale sampled counts to the total number of quadruples so the
            // magnitude is comparable with exact counting.
            let total_quads = (n * (n - 1) * (n - 2) * (n - 3)) as f64 / 24.0;
            for c in counts.iter_mut() {
                *c *= total_quads / self.samples as f64;
            }
        }
        counts
    }

    /// Normalised feature vector (3-graphlet histogram, optionally followed by
    /// the connected 4-graphlet histogram), each block normalised to unit L1
    /// mass so graphs of different sizes stay comparable.
    pub fn feature_vector(&self, graph: &Graph) -> Vec<f64> {
        let mut features = Vec::with_capacity(NUM_3_GRAPHLETS + NUM_4_GRAPHLETS);
        let mut three = Self::count_3_graphlets(graph).to_vec();
        haqjsk_linalg::vector::normalize_l1(&mut three);
        features.extend_from_slice(&three);
        if self.include_four {
            let mut four = self.count_4_graphlets(graph).to_vec();
            haqjsk_linalg::vector::normalize_l1(&mut four);
            features.extend_from_slice(&four);
        }
        features
    }
}

impl GraphKernel for GraphletKernel {
    fn name(&self) -> &'static str {
        "GCGK"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        let fa = self.feature_vector(a);
        let fb = self.feature_vector(b);
        haqjsk_linalg::vector::dot(&fa, &fb)
    }

    // Factors through explicit feature vectors: backend-independent, so the
    // backend-aware hook is overridden to keep the fast path everywhere.
    fn gram_matrix_on(&self, graphs: &[Graph], _backend: Option<BackendKind>) -> KernelMatrix {
        let _timer = crate::kernel::time_kernel_gram(self.name());
        let features: Vec<Vec<f64>> = graphs.iter().map(|g| self.feature_vector(g)).collect();
        gram_from_features(&features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{
        complete_graph, cycle_graph, erdos_renyi, path_graph, star_graph,
    };

    #[test]
    fn three_graphlets_of_triangle_and_path() {
        let triangle = complete_graph(3);
        assert_eq!(
            GraphletKernel::count_3_graphlets(&triangle),
            [0.0, 0.0, 0.0, 1.0]
        );
        let path = path_graph(3);
        assert_eq!(
            GraphletKernel::count_3_graphlets(&path),
            [0.0, 0.0, 1.0, 0.0]
        );
        let empty = Graph::new(3);
        assert_eq!(
            GraphletKernel::count_3_graphlets(&empty),
            [1.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn three_graphlet_total_is_binomial() {
        let g = cycle_graph(7);
        let counts = GraphletKernel::count_3_graphlets(&g);
        let total: f64 = counts.iter().sum();
        assert_eq!(total, 35.0); // C(7,3)
    }

    #[test]
    fn four_graphlets_of_known_graphs() {
        let kernel = GraphletKernel::default();
        // K4 contains exactly one 4-clique graphlet.
        let k4 = complete_graph(4);
        let counts = kernel.count_4_graphlets(&k4);
        assert_eq!(counts[5], 1.0);
        assert_eq!(counts.iter().sum::<f64>(), 1.0);
        // C4 is one 4-cycle.
        let c4 = cycle_graph(4);
        let counts = kernel.count_4_graphlets(&c4);
        assert_eq!(counts[2], 1.0);
        // P4 is one path graphlet.
        let p4 = path_graph(4);
        let counts = kernel.count_4_graphlets(&p4);
        assert_eq!(counts[0], 1.0);
        // Star S4 is one star graphlet.
        let s4 = star_graph(4);
        let counts = kernel.count_4_graphlets(&s4);
        assert_eq!(counts[1], 1.0);
        // Graphs with fewer than four vertices have no 4-graphlets.
        assert_eq!(
            kernel.count_4_graphlets(&path_graph(3)).iter().sum::<f64>(),
            0.0
        );
    }

    #[test]
    fn sampling_approximates_exact_counts() {
        let g = erdos_renyi(40, 0.2, 3);
        let exact_kernel = GraphletKernel {
            exact_threshold: 100,
            ..Default::default()
        };
        let sampled_kernel = GraphletKernel {
            exact_threshold: 10,
            samples: 4000,
            ..Default::default()
        };
        let exact = exact_kernel.count_4_graphlets(&g);
        let sampled = sampled_kernel.count_4_graphlets(&g);
        let exact_total: f64 = exact.iter().sum();
        let sampled_total: f64 = sampled.iter().sum();
        // Proportions should be in the same ballpark (they are scaled counts).
        assert!(exact_total > 0.0);
        assert!(sampled_total > 0.0);
        for t in 0..NUM_4_GRAPHLETS {
            let pe = exact[t] / exact_total;
            let ps = sampled[t] / sampled_total;
            assert!(
                (pe - ps).abs() < 0.15,
                "type {t}: exact {pe} vs sampled {ps}"
            );
        }
    }

    #[test]
    fn kernel_symmetry_and_self_dominance() {
        let kernel = GraphletKernel::default();
        let a = cycle_graph(8);
        let b = star_graph(8);
        assert!((kernel.compute(&a, &b) - kernel.compute(&b, &a)).abs() < 1e-12);
        assert!(kernel.compute(&a, &a) >= kernel.compute(&a, &b));
    }

    #[test]
    fn gram_is_psd_and_matches_pairwise() {
        let kernel = GraphletKernel::three_only();
        let graphs = vec![
            path_graph(6),
            cycle_graph(6),
            star_graph(6),
            complete_graph(5),
        ];
        let gram = kernel.gram_matrix(&graphs);
        assert!(gram.is_positive_semidefinite(1e-9).unwrap());
        for i in 0..graphs.len() {
            for j in 0..graphs.len() {
                assert!((gram.get(i, j) - kernel.compute(&graphs[i], &graphs[j])).abs() < 1e-12);
            }
        }
    }
}
