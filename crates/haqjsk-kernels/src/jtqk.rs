//! Jensen–Tsallis q-difference kernel (JTQK), simplified global variant.
//!
//! The original JTQK of Bai et al. (ECML-PKDD 2014) measures the
//! Jensen–Tsallis q-difference between CTQW-derived state distributions,
//! aggregated over Weisfeiler–Lehman style subtrees. This reproduction keeps
//! the quantum-information core — the Tsallis q-entropy of the CTQW density
//! matrix and the Jensen–Tsallis q-difference between a pair of graphs — and
//! combines it multiplicatively with a WL subtree similarity, giving a
//! baseline with the same two ingredients (CTQW global information +
//! R-convolution local information) that the paper's JTQK column represents.
//! The simplification is recorded in DESIGN.md.
//!
//! Both factors are fully factored through per-graph artifacts: the
//! quantum factor through the cached CTQW spectra (leaving one values-only
//! mixture solve per pair, batched per tile in the Gram path), and the
//! local factor through cached WL label histograms (leaving one merge-join
//! sparse dot per pair instead of a full WL refinement of both graphs).

use crate::features::{
    cached_ctqw_density, cached_graph_spectrals, cached_wl_histogram, WlHistogram,
};
use crate::kernel::sparse_dot;
use crate::kernel::{gram_from_tiles_spec, GraphKernel, PinnedFeatures};
use crate::matrix::KernelMatrix;
use haqjsk_engine::{BackendKind, RemoteGram};
use haqjsk_graph::Graph;
use haqjsk_quantum::{batch_mixture_entropies, DensityMatrix, MixtureEntropy};
use std::sync::Arc;

/// Tsallis q-entropy of a probability spectrum:
/// `S_q(p) = (1 - Σ_i p_i^q) / (q - 1)`, recovering the von Neumann /
/// Shannon entropy as `q → 1`. (Re-exported quantum primitive; see
/// [`haqjsk_quantum::tsallis_entropy_of_spectrum`].)
pub fn tsallis_entropy(spectrum: &[f64], q: f64) -> f64 {
    haqjsk_quantum::tsallis_entropy_of_spectrum(spectrum, q)
}

/// Jensen–Tsallis q-difference between two density matrices of equal
/// dimension: `S_q((ρ+σ)/2) - (S_q(ρ) + S_q(σ)) / 2`, clamped at zero.
pub fn jensen_tsallis_difference(rho: &DensityMatrix, sigma: &DensityMatrix, q: f64) -> f64 {
    jensen_tsallis_difference_with_entropies(
        rho,
        sigma,
        tsallis_entropy(&rho.spectrum(), q),
        tsallis_entropy(&sigma.spectrum(), q),
        q,
    )
}

/// [`jensen_tsallis_difference`] with precomputed endpoint entropies: only
/// the mixture's spectrum (one values-only eigenvalue solve) remains
/// pair-specific. Like the von Neumann entropy, `S_q` is invariant under
/// zero-padding — the added exact-zero eigenvalues contribute nothing — so
/// entropies of the unpadded states serve their padded versions.
pub fn jensen_tsallis_difference_with_entropies(
    rho: &DensityMatrix,
    sigma: &DensityMatrix,
    s_rho: f64,
    s_sigma: f64,
    q: f64,
) -> f64 {
    let mixture = rho.mix(sigma).expect("equal dimensions");
    jensen_tsallis_from_entropies(tsallis_entropy(&mixture.spectrum(), q), s_rho, s_sigma)
}

/// The Jensen–Tsallis q-difference once all three entropies are known:
/// `S_q(mix) - (S_q(ρ) + S_q(σ))/2`, clamped at zero. The per-pair and
/// tile-batched paths both reduce through this one expression so their
/// values stay bit-identical.
pub fn jensen_tsallis_from_entropies(s_mixture: f64, s_rho: f64, s_sigma: f64) -> f64 {
    let d = s_mixture - 0.5 * (s_rho + s_sigma);
    d.max(0.0)
}

/// The simplified Jensen–Tsallis q-difference kernel.
#[derive(Debug, Clone)]
pub struct JensenTsallisKernel {
    /// Tsallis order `q` (the paper's experiments use `q = 2`).
    pub q: f64,
    /// Number of WL refinement rounds for the local-structure factor.
    pub wl_iterations: usize,
}

impl Default for JensenTsallisKernel {
    fn default() -> Self {
        JensenTsallisKernel {
            q: 2.0,
            wl_iterations: 3,
        }
    }
}

impl JensenTsallisKernel {
    /// Stable kernel identifier used by the distributed backend to
    /// reconstruct this kernel on a worker process.
    pub const REMOTE_KERNEL_ID: &'static str = "jtqk";

    /// Creates the kernel with Tsallis order `q` and `wl_iterations` rounds
    /// of WL refinement.
    pub fn new(q: f64, wl_iterations: usize) -> Self {
        JensenTsallisKernel { q, wl_iterations }
    }

    /// Evaluates one tile of Gram entries over `graphs` — the remote
    /// serialisation boundary of the distributed backend (see
    /// [`crate::QjskUnaligned::eval_tile`]); byte-identical to the
    /// in-process Gram paths.
    pub fn eval_tile(&self, graphs: &[Graph], pairs: &[(usize, usize)], out: &mut [f64]) {
        let pinned: PinnedFeatures<'_, JtqkInputs> = PinnedFeatures::new(graphs);
        let extract = |g: &Graph| self.extract(g);
        self.kernel_tile(pairs, &pinned, extract, out);
    }

    /// The global (quantum) factor: `exp(-JT_q(ρ_p, ρ_q))` with zero-padded
    /// density matrices.
    pub fn quantum_factor(&self, a: &Graph, b: &Graph) -> f64 {
        self.quantum_factor_from_parts(&self.extract_quantum(a), &self.extract_quantum(b))
    }

    /// The local factor: the cosine-normalised WL subtree similarity,
    /// evaluated from the per-graph cached label histograms — one sparse
    /// dot instead of a WL refinement of both graphs.
    pub fn local_factor(&self, a: &Graph, b: &Graph) -> f64 {
        Self::local_factor_from(
            &cached_wl_histogram(a, self.wl_iterations),
            &cached_wl_histogram(b, self.wl_iterations),
        )
    }

    /// The normalised WL similarity from two cached histograms.
    fn local_factor_from(a: &WlHistogram, b: &WlHistogram) -> f64 {
        if a.self_similarity <= 0.0 || b.self_similarity <= 0.0 {
            0.0
        } else {
            sparse_dot(&a.features, &b.features) / (a.self_similarity * b.self_similarity).sqrt()
        }
    }

    /// Extracts the quantum half of the per-graph artifacts: the CTQW
    /// density and its Tsallis q-entropy (derived in O(n) from the cached
    /// spectrum).
    fn extract_quantum(&self, graph: &Graph) -> QuantumInputs {
        QuantumInputs {
            density: cached_ctqw_density(graph),
            tsallis: tsallis_entropy(&cached_graph_spectrals(graph).spectrum, self.q),
        }
    }

    /// Extracts everything a Gram pair evaluation consumes: the quantum
    /// artifacts plus the cached WL label histogram of the local factor.
    fn extract(&self, graph: &Graph) -> JtqkInputs {
        JtqkInputs {
            quantum: self.extract_quantum(graph),
            wl: cached_wl_histogram(graph, self.wl_iterations),
        }
    }

    fn quantum_factor_from_parts(&self, a: &QuantumInputs, b: &QuantumInputs) -> f64 {
        let n = a.density.dim().max(b.density.dim());
        let (mut sa, mut sb) = (None, None);
        let pa = crate::features::pad_to(&a.density, n, &mut sa);
        let pb = crate::features::pad_to(&b.density, n, &mut sb);
        (-jensen_tsallis_difference_with_entropies(pa, pb, a.tsallis, b.tsallis, self.q)).exp()
    }

    fn kernel_from_inputs(&self, a: &JtqkInputs, b: &JtqkInputs) -> f64 {
        self.quantum_factor_from_parts(&a.quantum, &b.quantum)
            * Self::local_factor_from(&a.wl, &b.wl)
    }

    /// Whole-tile fast path: all of the tile's quantum mixtures go through
    /// one batched Tsallis-entropy solve; the local factor stays a sparse
    /// dot per pair. Byte-identical to
    /// [`JensenTsallisKernel::kernel_from_inputs`].
    fn kernel_tile(
        &self,
        pairs: &[(usize, usize)],
        pinned: &PinnedFeatures<'_, JtqkInputs>,
        extract: impl Fn(&Graph) -> JtqkInputs + Copy,
        out: &mut [f64],
    ) {
        let inputs: Vec<(&JtqkInputs, &JtqkInputs)> = pairs
            .iter()
            .map(|&(i, j)| (pinned.get(i, extract), pinned.get(j, extract)))
            .collect();
        let mixtures: Vec<(&DensityMatrix, &DensityMatrix)> = inputs
            .iter()
            .map(|(a, b)| (&*a.quantum.density, &*b.quantum.density))
            .collect();
        let s_mix = batch_mixture_entropies(&mixtures, MixtureEntropy::Tsallis(self.q))
            .expect("padded mixtures share a dimension");
        for (k, (a, b)) in inputs.iter().enumerate() {
            let quantum =
                (-jensen_tsallis_from_entropies(s_mix[k], a.quantum.tsallis, b.quantum.tsallis))
                    .exp();
            out[k] = quantum * Self::local_factor_from(&a.wl, &b.wl);
        }
    }
}

/// The quantum-factor half of the per-graph JTQK artifacts.
struct QuantumInputs {
    density: Arc<DensityMatrix>,
    tsallis: f64,
}

/// Per-graph artifacts of the JTQK Gram pair loop.
struct JtqkInputs {
    quantum: QuantumInputs,
    wl: Arc<WlHistogram>,
}

impl GraphKernel for JensenTsallisKernel {
    fn name(&self) -> &'static str {
        "JTQK (simplified)"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        self.kernel_from_inputs(&self.extract(a), &self.extract(b))
    }

    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        let _timer = crate::kernel::time_kernel_gram(self.name());
        // Every per-graph artifact — CTQW density, Tsallis entropy, WL
        // label histogram — is pinned once per Gram computation; batched
        // backends extract all of them as one parallel batch before the
        // pair loop, which then pays one batched values-only mixture solve
        // per tile plus one sparse WL dot per pair.
        let pinned: PinnedFeatures<'_, JtqkInputs> = PinnedFeatures::new(graphs);
        let extract = |g: &Graph| self.extract(g);
        let spec = RemoteGram {
            kernel_id: JensenTsallisKernel::REMOTE_KERNEL_ID,
            params: vec![("q", self.q), ("wl_iterations", self.wl_iterations as f64)],
            graphs,
            artifact: None,
        };
        gram_from_tiles_spec(
            graphs.len(),
            backend,
            |i| {
                let _ = pinned.get(i, extract);
            },
            |pairs: &[(usize, usize)], out: &mut [f64]| {
                self.kernel_tile(pairs, &pinned, extract, out)
            },
            Some(&spec),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn tsallis_entropy_limits() {
        // q -> 1 recovers Shannon entropy of the uniform distribution.
        let uniform = [0.25; 4];
        assert!((tsallis_entropy(&uniform, 1.0) - 4.0_f64.ln()).abs() < 1e-9);
        // q = 2: S_2 = 1 - sum p^2 = 1 - 0.25 = 0.75.
        assert!((tsallis_entropy(&uniform, 2.0) - 0.75).abs() < 1e-12);
        // Deterministic distribution has zero entropy for every q.
        assert_eq!(tsallis_entropy(&[1.0, 0.0], 2.0), 0.0);
        assert_eq!(tsallis_entropy(&[1.0, 0.0], 1.0), 0.0);
    }

    #[test]
    fn jensen_tsallis_difference_properties() {
        let a = DensityMatrix::pure_state(&[1.0, 0.0]).unwrap();
        let b = DensityMatrix::pure_state(&[0.0, 1.0]).unwrap();
        let d_self = jensen_tsallis_difference(&a, &a, 2.0);
        let d_cross = jensen_tsallis_difference(&a, &b, 2.0);
        assert!(d_self.abs() < 1e-12);
        assert!(d_cross > 0.0);
        // Symmetry.
        assert!((d_cross - jensen_tsallis_difference(&b, &a, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn kernel_self_similarity_dominates() {
        let kernel = JensenTsallisKernel::default();
        let g = cycle_graph(6);
        let h = star_graph(6);
        let self_sim = kernel.compute(&g, &g);
        let cross = kernel.compute(&g, &h);
        assert!(self_sim > cross);
        assert!(
            (self_sim - 1.0).abs() < 1e-9,
            "normalised local factor + zero JT difference"
        );
    }

    #[test]
    fn kernel_is_symmetric_and_in_unit_interval() {
        let kernel = JensenTsallisKernel::new(2.0, 2);
        let a = path_graph(6);
        let b = cycle_graph(7);
        let v = kernel.compute(&a, &b);
        assert!((v - kernel.compute(&b, &a)).abs() < 1e-9);
        assert!(v >= 0.0 && v <= 1.0 + 1e-9);
    }

    #[test]
    fn factors_are_individually_bounded() {
        let kernel = JensenTsallisKernel::default();
        let a = path_graph(5);
        let b = star_graph(8);
        let qf = kernel.quantum_factor(&a, &b);
        let lf = kernel.local_factor(&a, &b);
        assert!(qf > 0.0 && qf <= 1.0 + 1e-12);
        assert!(lf >= 0.0 && lf <= 1.0 + 1e-12);
    }
}
