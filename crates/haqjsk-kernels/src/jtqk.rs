//! Jensen–Tsallis q-difference kernel (JTQK), simplified global variant.
//!
//! The original JTQK of Bai et al. (ECML-PKDD 2014) measures the
//! Jensen–Tsallis q-difference between CTQW-derived state distributions,
//! aggregated over Weisfeiler–Lehman style subtrees. This reproduction keeps
//! the quantum-information core — the Tsallis q-entropy of the CTQW density
//! matrix and the Jensen–Tsallis q-difference between a pair of graphs — and
//! combines it multiplicatively with a WL subtree similarity, giving a
//! baseline with the same two ingredients (CTQW global information +
//! R-convolution local information) that the paper's JTQK column represents.
//! The simplification is recorded in DESIGN.md.

use crate::features::{cached_ctqw_density, cached_graph_spectrals};
use crate::kernel::{gram_from_indexed_prefetched, GraphKernel, PinnedFeatures};
use crate::matrix::KernelMatrix;
use crate::wl::WeisfeilerLehmanKernel;
use haqjsk_engine::BackendKind;
use haqjsk_graph::Graph;
use haqjsk_quantum::DensityMatrix;
use std::sync::Arc;

/// Tsallis q-entropy of a probability spectrum:
/// `S_q(p) = (1 - Σ_i p_i^q) / (q - 1)`, recovering the von Neumann /
/// Shannon entropy as `q → 1`.
pub fn tsallis_entropy(spectrum: &[f64], q: f64) -> f64 {
    if (q - 1.0).abs() < 1e-9 {
        return spectrum
            .iter()
            .filter(|&&p| p > 1e-15)
            .map(|&p| -p * p.ln())
            .sum();
    }
    let sum_q: f64 = spectrum
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p.powf(q))
        .sum();
    (1.0 - sum_q) / (q - 1.0)
}

/// Jensen–Tsallis q-difference between two density matrices of equal
/// dimension: `S_q((ρ+σ)/2) - (S_q(ρ) + S_q(σ)) / 2`, clamped at zero.
pub fn jensen_tsallis_difference(rho: &DensityMatrix, sigma: &DensityMatrix, q: f64) -> f64 {
    jensen_tsallis_difference_with_entropies(
        rho,
        sigma,
        tsallis_entropy(&rho.spectrum(), q),
        tsallis_entropy(&sigma.spectrum(), q),
        q,
    )
}

/// [`jensen_tsallis_difference`] with precomputed endpoint entropies: only
/// the mixture's spectrum (one values-only eigenvalue solve) remains
/// pair-specific. Like the von Neumann entropy, `S_q` is invariant under
/// zero-padding — the added exact-zero eigenvalues contribute nothing — so
/// entropies of the unpadded states serve their padded versions.
pub fn jensen_tsallis_difference_with_entropies(
    rho: &DensityMatrix,
    sigma: &DensityMatrix,
    s_rho: f64,
    s_sigma: f64,
    q: f64,
) -> f64 {
    let mixture = rho.mix(sigma).expect("equal dimensions");
    let d = tsallis_entropy(&mixture.spectrum(), q) - 0.5 * (s_rho + s_sigma);
    d.max(0.0)
}

/// The simplified Jensen–Tsallis q-difference kernel.
#[derive(Debug, Clone)]
pub struct JensenTsallisKernel {
    /// Tsallis order `q` (the paper's experiments use `q = 2`).
    pub q: f64,
    /// Number of WL refinement rounds for the local-structure factor.
    pub wl_iterations: usize,
}

impl Default for JensenTsallisKernel {
    fn default() -> Self {
        JensenTsallisKernel {
            q: 2.0,
            wl_iterations: 3,
        }
    }
}

impl JensenTsallisKernel {
    /// Creates the kernel with Tsallis order `q` and `wl_iterations` rounds
    /// of WL refinement.
    pub fn new(q: f64, wl_iterations: usize) -> Self {
        JensenTsallisKernel { q, wl_iterations }
    }

    /// The global (quantum) factor: `exp(-JT_q(ρ_p, ρ_q))` with zero-padded
    /// density matrices.
    pub fn quantum_factor(&self, a: &Graph, b: &Graph) -> f64 {
        self.quantum_factor_from_parts(&self.extract_quantum(a), &self.extract_quantum(b))
    }

    /// The local factor: the cosine-normalised WL subtree similarity.
    pub fn local_factor(&self, a: &Graph, b: &Graph) -> f64 {
        let wl = WeisfeilerLehmanKernel::new(self.wl_iterations);
        let ab = wl.compute(a, b);
        let aa = wl.compute(a, a);
        let bb = wl.compute(b, b);
        if aa <= 0.0 || bb <= 0.0 {
            0.0
        } else {
            ab / (aa * bb).sqrt()
        }
    }

    /// Extracts the quantum half of the per-graph artifacts: the CTQW
    /// density and its Tsallis q-entropy (derived in O(n) from the cached
    /// spectrum).
    fn extract_quantum(&self, graph: &Graph) -> QuantumInputs {
        QuantumInputs {
            density: cached_ctqw_density(graph),
            tsallis: tsallis_entropy(&cached_graph_spectrals(graph).spectrum, self.q),
        }
    }

    /// Extracts everything a Gram pair evaluation consumes: the quantum
    /// artifacts plus the WL self-similarity of the normalised local
    /// factor.
    fn extract(&self, graph: &Graph) -> JtqkInputs {
        JtqkInputs {
            quantum: self.extract_quantum(graph),
            wl_self: WeisfeilerLehmanKernel::new(self.wl_iterations).compute(graph, graph),
        }
    }

    fn quantum_factor_from_parts(&self, a: &QuantumInputs, b: &QuantumInputs) -> f64 {
        let n = a.density.dim().max(b.density.dim());
        let (mut sa, mut sb) = (None, None);
        let pa = crate::features::pad_to(&a.density, n, &mut sa);
        let pb = crate::features::pad_to(&b.density, n, &mut sb);
        (-jensen_tsallis_difference_with_entropies(pa, pb, a.tsallis, b.tsallis, self.q)).exp()
    }

    fn kernel_from_inputs(
        &self,
        (ga, a): (&Graph, &JtqkInputs),
        (gb, b): (&Graph, &JtqkInputs),
    ) -> f64 {
        let local = if a.wl_self <= 0.0 || b.wl_self <= 0.0 {
            0.0
        } else {
            let wl = WeisfeilerLehmanKernel::new(self.wl_iterations);
            wl.compute(ga, gb) / (a.wl_self * b.wl_self).sqrt()
        };
        self.quantum_factor_from_parts(&a.quantum, &b.quantum) * local
    }
}

/// The quantum-factor half of the per-graph JTQK artifacts.
struct QuantumInputs {
    density: Arc<DensityMatrix>,
    tsallis: f64,
}

/// Per-graph artifacts of the JTQK Gram pair loop.
struct JtqkInputs {
    quantum: QuantumInputs,
    wl_self: f64,
}

impl GraphKernel for JensenTsallisKernel {
    fn name(&self) -> &'static str {
        "JTQK (simplified)"
    }

    fn compute(&self, a: &Graph, b: &Graph) -> f64 {
        self.quantum_factor(a, b) * self.local_factor(a, b)
    }

    fn gram_matrix_on(&self, graphs: &[Graph], backend: Option<BackendKind>) -> KernelMatrix {
        // Every per-graph artifact — CTQW density, Tsallis entropy, WL
        // self-similarity — is pinned once per Gram computation; batched
        // backends extract all of them as one parallel batch before the
        // pair loop, which then pays one values-only mixture solve plus one
        // cross WL evaluation per pair.
        let pinned: PinnedFeatures<'_, JtqkInputs> = PinnedFeatures::new(graphs);
        let extract = |g: &Graph| self.extract(g);
        gram_from_indexed_prefetched(
            graphs.len(),
            backend,
            |i| {
                let _ = pinned.get(i, extract);
            },
            |i, j| {
                self.kernel_from_inputs(
                    (&graphs[i], pinned.get(i, extract)),
                    (&graphs[j], pinned.get(j, extract)),
                )
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn tsallis_entropy_limits() {
        // q -> 1 recovers Shannon entropy of the uniform distribution.
        let uniform = [0.25; 4];
        assert!((tsallis_entropy(&uniform, 1.0) - 4.0_f64.ln()).abs() < 1e-9);
        // q = 2: S_2 = 1 - sum p^2 = 1 - 0.25 = 0.75.
        assert!((tsallis_entropy(&uniform, 2.0) - 0.75).abs() < 1e-12);
        // Deterministic distribution has zero entropy for every q.
        assert_eq!(tsallis_entropy(&[1.0, 0.0], 2.0), 0.0);
        assert_eq!(tsallis_entropy(&[1.0, 0.0], 1.0), 0.0);
    }

    #[test]
    fn jensen_tsallis_difference_properties() {
        let a = DensityMatrix::pure_state(&[1.0, 0.0]).unwrap();
        let b = DensityMatrix::pure_state(&[0.0, 1.0]).unwrap();
        let d_self = jensen_tsallis_difference(&a, &a, 2.0);
        let d_cross = jensen_tsallis_difference(&a, &b, 2.0);
        assert!(d_self.abs() < 1e-12);
        assert!(d_cross > 0.0);
        // Symmetry.
        assert!((d_cross - jensen_tsallis_difference(&b, &a, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn kernel_self_similarity_dominates() {
        let kernel = JensenTsallisKernel::default();
        let g = cycle_graph(6);
        let h = star_graph(6);
        let self_sim = kernel.compute(&g, &g);
        let cross = kernel.compute(&g, &h);
        assert!(self_sim > cross);
        assert!(
            (self_sim - 1.0).abs() < 1e-9,
            "normalised local factor + zero JT difference"
        );
    }

    #[test]
    fn kernel_is_symmetric_and_in_unit_interval() {
        let kernel = JensenTsallisKernel::new(2.0, 2);
        let a = path_graph(6);
        let b = cycle_graph(7);
        let v = kernel.compute(&a, &b);
        assert!((v - kernel.compute(&b, &a)).abs() < 1e-9);
        assert!(v >= 0.0 && v <= 1.0 + 1e-9);
    }

    #[test]
    fn factors_are_individually_bounded() {
        let kernel = JensenTsallisKernel::default();
        let a = path_graph(5);
        let b = star_graph(8);
        let qf = kernel.quantum_factor(&a, &b);
        let lf = kernel.local_factor(&a, &b);
        assert!(qf > 0.0 && qf <= 1.0 + 1e-12);
        assert!(lf >= 0.0 && lf <= 1.0 + 1e-12);
    }
}
