//! Property tests of the wire protocol: every message that crosses the
//! coordinator/worker boundary must survive a serialise → print → parse →
//! deserialise round trip exactly — tile requests, tile results
//! (bit-exact `f64`s), dataset chunks and kernel specs. Anything less
//! would silently break the byte-identity guarantee of the distributed
//! backend.

use haqjsk_dist::dataset::{dataset_id, dataset_keys};
use haqjsk_dist::wire::{self, KernelSpec};
use haqjsk_engine::{graph_from_json, graph_key, GraphKey, Json};
use haqjsk_graph::Graph;
use proptest::prelude::*;

/// Re-parse a value through its textual wire form.
fn reparse(value: &Json) -> Json {
    Json::parse(&value.to_string()).expect("wire text parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Index-pair tiles round-trip exactly through the wire.
    #[test]
    fn tile_pairs_roundtrip(
        raw in proptest::collection::vec((0usize..512, 0usize..512), 0..200),
    ) {
        let pairs: Vec<(usize, usize)> = raw
            .into_iter()
            .map(|(i, j)| (i.min(j), i.max(j)))
            .collect();
        let wire_form = reparse(&wire::pairs_to_json(&pairs));
        prop_assert_eq!(wire::pairs_from_json(&wire_form).unwrap(), pairs);
    }

    /// Kernel values — arbitrary finite doubles, not just [0, 1] kernel
    /// outputs — round-trip bit-exactly through the JSON text.
    #[test]
    fn tile_values_roundtrip_bit_exactly(
        raw in proptest::collection::vec((0.0f64..1.0, -300i32..300), 0..100),
    ) {
        let values: Vec<f64> = raw
            .into_iter()
            .map(|(mantissa, exp)| mantissa * (exp as f64 / 10.0).exp())
            .collect();
        let wire_form = reparse(&wire::values_to_json(&values));
        let back = wire::values_from_json(&wire_form).unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Whole tile request/response exchanges round-trip: job ids, kernel
    /// specs, pair lists and value vectors.
    #[test]
    fn tile_exchange_roundtrips(
        job in 0usize..10_000,
        mu in 0.01f64..8.0,
        q in 1.0f64..4.0,
        wl in 0usize..6,
        which in 0usize..3,
        raw_pairs in proptest::collection::vec((0usize..64, 0usize..64), 1..80),
    ) {
        let kernel = match which {
            0 => KernelSpec::QjskUnaligned { mu },
            1 => KernelSpec::QjskAligned { mu },
            _ => KernelSpec::Jtqk { q, wl_iterations: wl },
        };
        let pairs: Vec<(usize, usize)> = raw_pairs
            .into_iter()
            .map(|(i, j)| (i.min(j), i.max(j)))
            .collect();
        let request = reparse(&wire::tile_request("d00d", job, &kernel.to_json(), &pairs, 1, None));
        prop_assert_eq!(request.get("cmd").and_then(Json::as_str), Some("tile"));
        prop_assert_eq!(request.get("job").and_then(Json::as_usize), Some(job));
        prop_assert_eq!(
            KernelSpec::from_json(request.get("kernel").unwrap()).unwrap(),
            kernel
        );
        prop_assert_eq!(
            wire::pairs_from_json(request.get("pairs").unwrap()).unwrap(),
            pairs.clone()
        );

        let values: Vec<f64> = pairs.iter().map(|&(i, j)| ((i * 31 + j) as f64).cos()).collect();
        let response = reparse(&Json::obj([
            ("ok", Json::Bool(true)),
            ("job", Json::Num(job as f64)),
            ("values", wire::values_to_json(&values)),
        ]));
        let tile = wire::parse_tile_response(&response).unwrap();
        prop_assert_eq!(tile.job, job);
        for (a, b) in values.iter().zip(&tile.values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Graph keys round-trip through their hex digests.
    #[test]
    fn graph_keys_roundtrip_hex(hi in 0u64..=u64::MAX, lo in 0u64..=u64::MAX) {
        let key = GraphKey(((hi as u128) << 64) | lo as u128);
        prop_assert_eq!(wire::key_from_hex(&wire::key_hex(key)), Some(key));
    }

    /// Dataset chunk messages carry graphs exactly: structure, labels, and
    /// hence the structural key the worker re-derives for verification.
    #[test]
    fn dataset_chunks_roundtrip(
        sizes in proptest::collection::vec(2usize..12, 1..8),
        labelled in proptest::collection::vec(0usize..2, 1..8),
        seed in 0u64..1000,
    ) {
        let graphs: Vec<Graph> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut g = haqjsk_graph::generators::erdos_renyi(n, 0.4, seed + i as u64);
                if labelled.get(i).copied().unwrap_or(0) == 1 {
                    let labels = (0..n).map(|v| v % 3).collect();
                    g.set_labels(labels).unwrap();
                }
                g
            })
            .collect();
        let keys = dataset_keys(&graphs);
        let id = dataset_id(&keys);

        let begin = reparse(&wire::dataset_begin_request(&id, &keys));
        let wire_keys: Vec<GraphKey> = begin
            .get("keys").and_then(Json::as_array).unwrap()
            .iter()
            .map(|k| wire::key_from_hex(k.as_str().unwrap()).unwrap())
            .collect();
        prop_assert_eq!(&wire_keys, &keys);
        prop_assert_eq!(
            begin.get("dataset").and_then(Json::as_str),
            Some(id.as_str())
        );

        let indices: Vec<usize> = (0..graphs.len()).collect();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let chunk = reparse(&wire::dataset_graphs_request(&id, &indices, &refs));
        let shipped: Vec<Graph> = chunk
            .get("graphs").and_then(Json::as_array).unwrap()
            .iter()
            .map(|g| graph_from_json(g).unwrap())
            .collect();
        prop_assert_eq!(&shipped, &graphs);
        for (g, &k) in shipped.iter().zip(&keys) {
            prop_assert_eq!(graph_key(g), k, "wire transport must preserve the structural key");
        }
    }
}
