//! The coordinator: a [`GramBackend`]-shaped fan-out over worker processes.
//!
//! A [`Coordinator`] owns one [`WorkerLink`] per member worker and executes
//! Gram computations that carry a serialisable [`RemoteGram`] spec by (1)
//! shipping the dataset — and, for fitted-model kernels, the persisted
//! model artifact — to every reachable worker (content-hash-deduplicated —
//! re-fits with overlapping datasets only ship new graphs), (2) running the
//! tile list through the [`scheduler`](crate::scheduler) with an
//! outstanding-tile window per worker and deadline-based straggler
//! re-dispatch, and (3) evaluating any tiles no worker returned with the
//! kernel's local tile evaluator. The resulting matrix is
//! **byte-identical** to the serial backend regardless of which worker
//! computed which tile, because tile values are deterministic functions of
//! (kernel, dataset, pair) and `f64`s round-trip bit-exactly through the
//! JSON wire format.
//!
//! Gram computations *without* a spec (arbitrary closures, per-pair entry
//! functions, kernels the wire format cannot express) execute locally on
//! the tiled pool — selecting the distributed backend never makes a
//! computation fail or change value, only (where possible) relocates it.
//!
//! ## Elastic membership
//!
//! Membership is dynamic: [`Coordinator::add_worker`] joins a worker to a
//! *running* coordinator (it receives the dataset and any model artifact
//! at the next Gram before taking tiles) and
//! [`Coordinator::remove_worker`] drains one out (its in-flight tiles
//! requeue through the ordinary death-recovery path). Every join, death,
//! revival and drain bumps the **membership epoch**, which is stamped on
//! every tile dispatch and exported as a metric. Dead workers sit in
//! probation, redialed by a background thread on a jittered exponential
//! backoff (see [`crate::fault`]), so a restarted worker rejoins without
//! intervention.

use crate::chaos::ChaosPlan;
use crate::dataset::{dataset_id, dataset_keys, SHIP_CHUNK};
use crate::fault::{Conn, LinkState, WorkerLink, WorkerStatsSnapshot};
use crate::scheduler::{self, TileRun};
use crate::wire::{self, KernelSpec};
use haqjsk_engine::backend::{Prefetch, TileEvaluator};
use haqjsk_engine::{gram, Json, RemoteGram, WorkerPool};
use haqjsk_graph::Graph;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Environment variable bounding in-flight tiles per worker connection.
pub const DIST_WINDOW_ENV_VAR: &str = "HAQJSK_DIST_WINDOW";

/// Environment variable setting the straggler re-dispatch deadline, in
/// milliseconds.
pub const DIST_DEADLINE_ENV_VAR: &str = "HAQJSK_DIST_DEADLINE_MS";

/// Environment variable setting the worker connect timeout, in
/// milliseconds.
pub const DIST_CONNECT_TIMEOUT_ENV_VAR: &str = "HAQJSK_DIST_CONNECT_TIMEOUT_MS";

/// Environment variable setting the first probation-retry backoff, in
/// milliseconds (doubles per failed attempt).
pub const DIST_RECONNECT_BASE_ENV_VAR: &str = "HAQJSK_DIST_RECONNECT_BASE_MS";

/// Environment variable capping the probation-retry backoff, in
/// milliseconds.
pub const DIST_RECONNECT_MAX_ENV_VAR: &str = "HAQJSK_DIST_RECONNECT_MAX_MS";

/// How often the probation thread wakes to check for due retries.
const PROBATION_POLL: Duration = Duration::from_millis(50);

/// Tuning knobs of the distributed scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistConfig {
    /// Outstanding-tile window per worker connection: how many tile
    /// requests are pipelined before waiting for a response. Larger
    /// windows hide latency; smaller windows lose less work on death.
    pub window: usize,
    /// How long a dispatched tile may stay unanswered before it becomes
    /// claimable by other workers (and its worker is considered hung).
    pub deadline: Duration,
    /// Back-off while a worker has nothing claimable.
    pub idle_backoff: Duration,
    /// Connect (and handshake) timeout per worker.
    pub connect_timeout: Duration,
    /// First probation-retry backoff (doubles per failed attempt, with
    /// ±50% jitter).
    pub reconnect_base: Duration,
    /// Probation-retry backoff cap.
    pub reconnect_max: Duration,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            window: 2,
            deadline: Duration::from_secs(10),
            idle_backoff: Duration::from_millis(2),
            connect_timeout: Duration::from_secs(5),
            reconnect_base: Duration::from_millis(200),
            reconnect_max: Duration::from_secs(5),
        }
    }
}

impl DistConfig {
    /// The defaults with the `HAQJSK_DIST_*` environment overrides applied
    /// on top.
    pub fn from_env() -> DistConfig {
        let mut config = DistConfig::default();
        let read = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|raw| raw.trim().parse::<u64>().ok())
        };
        if let Some(window) = read(DIST_WINDOW_ENV_VAR) {
            config.window = (window as usize).max(1);
        }
        if let Some(ms) = read(DIST_DEADLINE_ENV_VAR) {
            config.deadline = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = read(DIST_CONNECT_TIMEOUT_ENV_VAR) {
            config.connect_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = read(DIST_RECONNECT_BASE_ENV_VAR) {
            config.reconnect_base = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = read(DIST_RECONNECT_MAX_ENV_VAR) {
            config.reconnect_max = Duration::from_millis(ms.max(1));
        }
        config
    }
}

/// Aggregate distributed-pool state, for `stats` responses and benchmark
/// reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistStats {
    /// Per-worker counters, in membership order.
    pub workers: Vec<WorkerStatsSnapshot>,
    /// The membership epoch (bumped on every join/death/revival/drain).
    pub epoch: usize,
    /// Gram computations routed through the coordinator.
    pub grams: usize,
    /// Gram computations executed entirely locally (no spec, or no
    /// reachable worker).
    pub local_fallback_grams: usize,
    /// Tiles handed to the scheduler across all distributed Grams.
    pub tiles_scheduled: usize,
    /// Tiles committed from worker results.
    pub tiles_committed: usize,
    /// Tiles evaluated by the coordinator's local fallback after worker
    /// failures (`tiles_scheduled == tiles_committed +
    /// local_fallback_tiles` — the zero-lost-tiles invariant).
    pub local_fallback_tiles: usize,
    /// Graph keys announced across all dataset shipping rounds.
    pub dataset_keys_total: usize,
    /// Graph keys whose graphs actually had to be shipped (the rest were
    /// dedup hits already resident on the worker).
    pub dataset_keys_shipped: usize,
    /// Model artifacts that actually travelled to a worker (dedup misses).
    pub artifacts_shipped: usize,
}

impl DistStats {
    /// Fraction of announced keys answered from worker-resident graphs
    /// (1.0 = nothing needed shipping).
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.dataset_keys_total == 0 {
            0.0
        } else {
            1.0 - self.dataset_keys_shipped as f64 / self.dataset_keys_total as f64
        }
    }

    /// Total `store_miss` replies across the pool.
    pub fn store_misses(&self) -> usize {
        self.workers.iter().map(|w| w.store_misses).sum()
    }

    /// Total probation revivals across the pool.
    pub fn reconnects(&self) -> usize {
        self.workers.iter().map(|w| w.reconnects).sum()
    }
}

/// The coordinator of a distributed worker pool.
pub struct Coordinator {
    workers: Arc<RwLock<Vec<Arc<WorkerLink>>>>,
    config: DistConfig,
    epoch: Arc<AtomicUsize>,
    grams: AtomicUsize,
    local_fallback_grams: AtomicUsize,
    tiles_scheduled: AtomicUsize,
    tiles_committed: AtomicUsize,
    local_fallback_tiles: AtomicUsize,
    dataset_keys_total: AtomicUsize,
    dataset_keys_shipped: AtomicUsize,
    artifacts_shipped: AtomicUsize,
    probation_shutdown: Arc<AtomicBool>,
    probation_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Coordinator {
    /// Creates a coordinator over `addrs`, requiring at least one worker to
    /// answer the ping handshake (catching dead configuration at startup).
    /// Unreachable addresses are retried once after a short backoff; any
    /// that stay down are warned about loudly and parked in probation —
    /// the background reconnect thread keeps redialing them, so a late
    /// starter still joins. Errors only when *zero* workers connect.
    pub fn connect(addrs: &[String], config: DistConfig) -> Result<Coordinator, String> {
        if addrs.is_empty() {
            return Err("distributed backend needs at least one worker address".to_string());
        }
        let epoch = Arc::new(AtomicUsize::new(0));
        let workers: Vec<Arc<WorkerLink>> = addrs
            .iter()
            .map(|addr| Arc::new(WorkerLink::new(addr.clone(), Arc::clone(&epoch))))
            .collect();
        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut reachable = 0;
        for (index, link) in workers.iter().enumerate() {
            match Conn::connect(&link.addr, config.connect_timeout) {
                Ok(conn) => {
                    link.note_revival();
                    link.checkin(conn);
                    reachable += 1;
                }
                Err(e) => failures.push((index, e)),
            }
        }
        // One retry round with a short backoff: a worker pool booting in
        // parallel with its coordinator is the common transient.
        if !failures.is_empty() {
            std::thread::sleep(config.connect_timeout.min(Duration::from_millis(100)));
            let mut still_down = Vec::new();
            for (index, _) in failures.drain(..) {
                let link = &workers[index];
                match Conn::connect(&link.addr, config.connect_timeout) {
                    Ok(conn) => {
                        link.note_revival();
                        link.checkin(conn);
                        reachable += 1;
                    }
                    Err(e) => still_down.push((index, e)),
                }
            }
            failures = still_down;
        }
        if reachable == 0 {
            return Err(format!(
                "no distributed worker reachable: {}",
                failures
                    .iter()
                    .map(|(_, e)| e.as_str())
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
        }
        for (index, error) in &failures {
            let link = &workers[*index];
            link.schedule_retry(&config);
            eprintln!(
                "haqjsk-dist: WARNING: worker {} unreachable ({error}); \
                 proceeding degraded with {reachable}/{} workers — the \
                 address stays in probation and will be retried with backoff",
                link.addr,
                workers.len(),
            );
        }
        let coordinator = Coordinator {
            workers: Arc::new(RwLock::new(workers)),
            config,
            epoch,
            grams: AtomicUsize::new(0),
            local_fallback_grams: AtomicUsize::new(0),
            tiles_scheduled: AtomicUsize::new(0),
            tiles_committed: AtomicUsize::new(0),
            local_fallback_tiles: AtomicUsize::new(0),
            dataset_keys_total: AtomicUsize::new(0),
            dataset_keys_shipped: AtomicUsize::new(0),
            artifacts_shipped: AtomicUsize::new(0),
            probation_shutdown: Arc::new(AtomicBool::new(false)),
            probation_thread: Mutex::new(None),
        };
        coordinator.spawn_probation_thread();
        Ok(coordinator)
    }

    /// Starts the background reconnect thread: probationed links whose
    /// backoff has expired are redialed; success revives them (bumping the
    /// epoch), failure reschedules with a longer backoff.
    fn spawn_probation_thread(&self) {
        let workers = Arc::clone(&self.workers);
        let shutdown = Arc::clone(&self.probation_shutdown);
        let config = self.config;
        let handle = std::thread::Builder::new()
            .name("haqjsk-dist-probation".to_string())
            .spawn(move || {
                while !shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(PROBATION_POLL);
                    let snapshot: Vec<Arc<WorkerLink>> =
                        workers.read().expect("worker list poisoned").clone();
                    for link in snapshot {
                        if link.state() != LinkState::Probation || !link.retry_due() {
                            continue;
                        }
                        match Conn::connect(&link.addr, config.connect_timeout) {
                            Ok(conn) => {
                                link.note_revival();
                                link.checkin(conn);
                            }
                            Err(_) => link.schedule_retry(&config),
                        }
                    }
                }
            })
            .expect("cannot spawn the probation thread");
        *self
            .probation_thread
            .lock()
            .expect("probation handle poisoned") = Some(handle);
    }

    /// Adds a worker to the running pool, requiring it to answer the ping
    /// handshake right now. The new member receives the dataset (and any
    /// model artifact) through the ordinary shipping phase of the next
    /// Gram before it takes tiles. Bumps the membership epoch.
    pub fn add_worker(&self, addr: &str) -> Result<(), String> {
        {
            let workers = self.workers.read().expect("worker list poisoned");
            if workers
                .iter()
                .any(|w| w.addr == addr && w.state() != LinkState::Draining)
            {
                return Err(format!("worker {addr} is already a member"));
            }
        }
        let conn = Conn::connect(addr, self.config.connect_timeout)?;
        let link = Arc::new(WorkerLink::new(addr.to_string(), Arc::clone(&self.epoch)));
        link.note_revival();
        link.checkin(conn);
        self.workers
            .write()
            .expect("worker list poisoned")
            .push(link);
        Ok(())
    }

    /// Removes a worker from membership: the link starts draining (no new
    /// tiles; in-flight tiles requeue through death recovery) and leaves
    /// the pool. Bumps the membership epoch.
    pub fn remove_worker(&self, addr: &str) -> Result<(), String> {
        let link = {
            let mut workers = self.workers.write().expect("worker list poisoned");
            let position = workers
                .iter()
                .position(|w| w.addr == addr)
                .ok_or_else(|| format!("worker {addr} is not a member"))?;
            workers.remove(position)
        };
        link.begin_drain();
        Ok(())
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of member workers.
    pub fn num_workers(&self) -> usize {
        self.workers.read().expect("worker list poisoned").len()
    }

    /// The scheduler configuration.
    pub fn config(&self) -> DistConfig {
        self.config
    }

    fn members(&self) -> Vec<Arc<WorkerLink>> {
        self.workers.read().expect("worker list poisoned").clone()
    }

    /// Snapshot of the pool state.
    pub fn stats(&self) -> DistStats {
        DistStats {
            workers: self.members().iter().map(|w| w.stats()).collect(),
            epoch: self.epoch(),
            grams: self.grams.load(Ordering::Relaxed),
            local_fallback_grams: self.local_fallback_grams.load(Ordering::Relaxed),
            tiles_scheduled: self.tiles_scheduled.load(Ordering::Relaxed),
            tiles_committed: self.tiles_committed.load(Ordering::Relaxed),
            local_fallback_tiles: self.local_fallback_tiles.load(Ordering::Relaxed),
            dataset_keys_total: self.dataset_keys_total.load(Ordering::Relaxed),
            dataset_keys_shipped: self.dataset_keys_shipped.load(Ordering::Relaxed),
            artifacts_shipped: self.artifacts_shipped.load(Ordering::Relaxed),
        }
    }

    /// Chaos hook: arms `fail_after` on worker `index` — it will serve
    /// `tiles` more tile requests, then fail and hang up. Used by the
    /// fault-injection tests to kill a worker deterministically mid-Gram.
    pub fn inject_worker_fault(&self, index: usize, tiles: usize) -> Result<(), String> {
        let link = self
            .members()
            .get(index)
            .cloned()
            .ok_or_else(|| format!("no worker at index {index}"))?;
        let mut conn = link
            .checkout(&self.config)
            .ok_or_else(|| format!("worker {} unreachable", link.addr))?;
        let request = Json::obj([
            ("cmd", Json::Str("fail_after".to_string())),
            ("tiles", Json::Num(tiles as f64)),
        ]);
        let result = conn.call(&request, Some(self.config.deadline));
        link.checkin(conn);
        result.map(|_| ())
    }

    /// Arms (or, with `None`, disarms) a seeded chaos plan on every
    /// reachable worker; returns how many workers acknowledged.
    pub fn arm_chaos(&self, plan: Option<&ChaosPlan>) -> Result<usize, String> {
        let request = wire::chaos_request(plan);
        let mut armed = 0;
        for link in self.members() {
            let Some(mut conn) = link.checkout(&self.config) else {
                continue;
            };
            match conn.call(&request, Some(self.config.deadline)) {
                Ok(_) => {
                    link.checkin(conn);
                    armed += 1;
                }
                Err(_) => link.mark_dead(),
            }
        }
        if armed == 0 {
            return Err("no worker acknowledged the chaos plan".to_string());
        }
        Ok(armed)
    }

    /// The distributed Gram entry point (called by the installed
    /// [`GramBackend`](haqjsk_engine::GramBackend) implementation).
    pub(crate) fn gram_tiles_spec(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
        spec: Option<&RemoteGram<'_>>,
    ) -> Matrix {
        self.grams.fetch_add(1, Ordering::Relaxed);
        // Anything the wire format cannot express executes locally.
        let kernel = spec.and_then(KernelSpec::from_remote);
        let (Some(spec), Some(kernel)) = (spec, kernel) else {
            return self.local_gram(pool, n, tile, prefetch, eval);
        };
        if spec.graphs.len() != n || n == 0 {
            return self.local_gram(pool, n, tile, prefetch, eval);
        }
        let artifact = spec
            .artifact
            .as_ref()
            .map(|artifact| (artifact.id.as_str(), artifact.payload));

        // Dataset (and artifact) shipping to every currently reachable
        // member — one scoped thread per link, so connect timeouts and
        // shipping round trips overlap instead of stacking up serially
        // before the first tile can go out. A worker that joined since the
        // last Gram receives everything here, before taking tiles.
        let members = self.members();
        let keys = dataset_keys(spec.graphs);
        let id = dataset_id(&keys);
        let ready: Mutex<Vec<(Arc<WorkerLink>, Conn)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for link in &members {
                let (keys, id, ready) = (&keys, &id, &ready);
                scope.spawn(move || {
                    let Some(mut conn) = link.checkout(&self.config) else {
                        return;
                    };
                    match ship_dataset(link, &mut conn, id, keys, spec.graphs, &self.config) {
                        Ok(shipped) => {
                            self.dataset_keys_total
                                .fetch_add(keys.len(), Ordering::Relaxed);
                            self.dataset_keys_shipped
                                .fetch_add(shipped, Ordering::Relaxed);
                            link.datasets_shipped.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            link.mark_dead();
                            return;
                        }
                    }
                    if let Some((artifact_id, payload)) = artifact {
                        match ship_artifact(link, &mut conn, artifact_id, payload, &self.config) {
                            Ok(true) => {
                                self.artifacts_shipped.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(false) => {}
                            Err(_) => {
                                link.mark_dead();
                                return;
                            }
                        }
                    }
                    ready
                        .lock()
                        .expect("ship list poisoned")
                        .push((Arc::clone(link), conn));
                });
            }
        });
        let mut ready = ready.into_inner().expect("ship list poisoned");
        // Deterministic thread order (stats, scheduling fairness) despite
        // the parallel shipping.
        ready.sort_by_key(|(link, _)| {
            members
                .iter()
                .position(|w| Arc::ptr_eq(w, link))
                .unwrap_or(usize::MAX)
        });
        if ready.is_empty() {
            return self.local_gram(pool, n, tile, prefetch, eval);
        }

        // The exact tile grid the local backends use.
        let tile = tile.max(1);
        let grid = gram::upper_triangle_tiles(n, tile);
        let mut tiles: Vec<Vec<(usize, usize)>> = Vec::with_capacity(grid.len());
        let mut pairs = Vec::new();
        for &(bi, bj) in &grid {
            gram::tile_pairs(n, tile, bi, bj, &mut pairs);
            tiles.push(pairs.clone());
        }
        self.tiles_scheduled
            .fetch_add(tiles.len(), Ordering::Relaxed);

        let kernel_json = kernel.to_json();
        let run = TileRun {
            dataset: &id,
            kernel: &kernel_json,
            tiles: &tiles,
            keys: &keys,
            graphs: spec.graphs,
            artifact,
            epoch: self.epoch(),
            config: &self.config,
        };
        let results = scheduler::run_tiles(ready, &run);
        self.tiles_committed.fetch_add(
            results.iter().filter(|r| r.is_some()).count(),
            Ordering::Relaxed,
        );

        // Assemble, evaluating leftover tiles locally (worker deaths must
        // never fail a Gram). The leftovers run in parallel on the engine
        // pool — after a total pool loss this is the whole Gram.
        let missing: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(t, _)| t)
            .collect();
        self.local_fallback_tiles
            .fetch_add(missing.len(), Ordering::Relaxed);
        let fallback: Vec<Vec<f64>> = pool.map(missing.len(), |k| {
            let t = missing[k];
            let mut out = vec![0.0; tiles[t].len()];
            eval.eval_tile(&tiles[t], &mut out);
            out
        });

        let mut values = Matrix::zeros(n, n);
        let mut fallback_iter = fallback.into_iter();
        for (t, result) in results.into_iter().enumerate() {
            let block = match result {
                Some(block) => block,
                None => fallback_iter.next().expect("one fallback per missing tile"),
            };
            for (&(i, j), &v) in tiles[t].iter().zip(&block) {
                values[(i, j)] = v;
                values[(j, i)] = v;
            }
        }
        values
    }

    /// Local execution on the tiled pool — the no-spec / no-worker path.
    fn local_gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        self.local_fallback_grams.fetch_add(1, Ordering::Relaxed);
        use haqjsk_engine::backend::{GramBackend, TiledPoolBackend};
        TiledPoolBackend.gram_tiles(pool, n, tile, prefetch, eval)
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.probation_shutdown.store(true, Ordering::Release);
        if let Some(handle) = self
            .probation_thread
            .lock()
            .expect("probation handle poisoned")
            .take()
        {
            handle.join().ok();
        }
    }
}

use haqjsk_linalg::Matrix;

/// Ships the dataset to one worker (begin → missing graphs in chunks →
/// commit); returns how many graphs actually travelled. Also the
/// store-miss repair path: a re-ship over the same id sends exactly the
/// graphs the worker's bounded store evicted.
pub(crate) fn ship_dataset(
    link: &WorkerLink,
    conn: &mut Conn,
    id: &str,
    keys: &[haqjsk_engine::GraphKey],
    graphs: &[Graph],
    config: &DistConfig,
) -> Result<usize, String> {
    let timeout = Some(config.deadline);
    let begin = conn.call_counted(link, &wire::dataset_begin_request(id, keys), timeout)?;
    let missing: Vec<usize> = begin
        .get("missing")
        .and_then(Json::as_array)
        .ok_or("dataset_begin response needs 'missing'")?
        .iter()
        .map(|i| {
            i.as_usize()
                .filter(|&i| i < graphs.len())
                .ok_or("bad missing index")
        })
        .collect::<Result<_, _>>()?;
    for chunk in missing.chunks(SHIP_CHUNK) {
        let refs: Vec<&Graph> = chunk.iter().map(|&i| &graphs[i]).collect();
        conn.call_counted(
            link,
            &wire::dataset_graphs_request(id, chunk, &refs),
            timeout,
        )?;
    }
    conn.call_counted(link, &wire::dataset_commit_request(id), timeout)?;
    Ok(missing.len())
}

/// Ships a model artifact to one worker (begin → text chunks → commit);
/// returns whether the payload actually travelled (`false` = the worker
/// already held it).
pub(crate) fn ship_artifact(
    link: &WorkerLink,
    conn: &mut Conn,
    id: &str,
    payload: &str,
    config: &DistConfig,
) -> Result<bool, String> {
    let timeout = Some(config.deadline);
    let begin = conn.call_counted(link, &wire::artifact_begin_request(id), timeout)?;
    if begin.get("have").and_then(Json::as_bool) == Some(true) {
        return Ok(false);
    }
    let mut rest = payload;
    while !rest.is_empty() {
        let mut end = rest.len().min(wire::ARTIFACT_CHUNK);
        while !rest.is_char_boundary(end) {
            end -= 1;
        }
        let (chunk, tail) = rest.split_at(end);
        conn.call_counted(link, &wire::artifact_chunk_request(id, chunk), timeout)?;
        rest = tail;
    }
    conn.call_counted(link, &wire::artifact_commit_request(id), timeout)?;
    Ok(true)
}
