//! The coordinator: a [`GramBackend`]-shaped fan-out over worker processes.
//!
//! A [`Coordinator`] owns one [`WorkerLink`] per configured worker address
//! and executes Gram computations that carry a serialisable
//! [`RemoteGram`] spec by (1) shipping the dataset to every reachable
//! worker (content-hash-deduplicated — re-fits with overlapping datasets
//! only ship new graphs), (2) running the tile list through the
//! [`scheduler`](crate::scheduler) with an outstanding-tile window per
//! worker and deadline-based straggler re-dispatch, and (3) evaluating any
//! tiles no worker returned with the kernel's local tile evaluator. The
//! resulting matrix is **byte-identical** to the serial backend regardless
//! of which worker computed which tile, because tile values are
//! deterministic functions of (kernel, dataset, pair) and `f64`s round-trip
//! bit-exactly through the JSON wire format.
//!
//! Gram computations *without* a spec (arbitrary closures, per-pair entry
//! functions, kernels the wire format cannot express) execute locally on
//! the tiled pool — selecting the distributed backend never makes a
//! computation fail or change value, only (where possible) relocates it.

use crate::dataset::{dataset_id, dataset_keys, SHIP_CHUNK};
use crate::fault::{Conn, WorkerLink, WorkerStatsSnapshot};
use crate::scheduler;
use crate::wire::{self, KernelSpec};
use haqjsk_engine::backend::{Prefetch, TileEvaluator};
use haqjsk_engine::{gram, Json, RemoteGram, WorkerPool};
use haqjsk_graph::Graph;
use haqjsk_linalg::Matrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable bounding in-flight tiles per worker connection.
pub const DIST_WINDOW_ENV_VAR: &str = "HAQJSK_DIST_WINDOW";

/// Environment variable setting the straggler re-dispatch deadline, in
/// milliseconds.
pub const DIST_DEADLINE_ENV_VAR: &str = "HAQJSK_DIST_DEADLINE_MS";

/// Environment variable setting the worker connect timeout, in
/// milliseconds.
pub const DIST_CONNECT_TIMEOUT_ENV_VAR: &str = "HAQJSK_DIST_CONNECT_TIMEOUT_MS";

/// Tuning knobs of the distributed scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistConfig {
    /// Outstanding-tile window per worker connection: how many tile
    /// requests are pipelined before waiting for a response. Larger
    /// windows hide latency; smaller windows lose less work on death.
    pub window: usize,
    /// How long a dispatched tile may stay unanswered before it becomes
    /// claimable by other workers (and its worker is considered hung).
    pub deadline: Duration,
    /// Back-off while a worker has nothing claimable.
    pub idle_backoff: Duration,
    /// Connect (and handshake) timeout per worker.
    pub connect_timeout: Duration,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            window: 2,
            deadline: Duration::from_secs(10),
            idle_backoff: Duration::from_millis(2),
            connect_timeout: Duration::from_secs(5),
        }
    }
}

impl DistConfig {
    /// The defaults with `HAQJSK_DIST_WINDOW` / `HAQJSK_DIST_DEADLINE_MS` /
    /// `HAQJSK_DIST_CONNECT_TIMEOUT_MS` applied on top.
    pub fn from_env() -> DistConfig {
        let mut config = DistConfig::default();
        let read = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|raw| raw.trim().parse::<u64>().ok())
        };
        if let Some(window) = read(DIST_WINDOW_ENV_VAR) {
            config.window = (window as usize).max(1);
        }
        if let Some(ms) = read(DIST_DEADLINE_ENV_VAR) {
            config.deadline = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = read(DIST_CONNECT_TIMEOUT_ENV_VAR) {
            config.connect_timeout = Duration::from_millis(ms.max(1));
        }
        config
    }
}

/// Aggregate distributed-pool state, for `stats` responses and benchmark
/// reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistStats {
    /// Per-worker counters, in configuration order.
    pub workers: Vec<WorkerStatsSnapshot>,
    /// Gram computations routed through the coordinator.
    pub grams: usize,
    /// Gram computations executed entirely locally (no spec, or no
    /// reachable worker).
    pub local_fallback_grams: usize,
    /// Tiles evaluated by the coordinator's local fallback after worker
    /// failures.
    pub local_fallback_tiles: usize,
    /// Graph keys announced across all dataset shipping rounds.
    pub dataset_keys_total: usize,
    /// Graph keys whose graphs actually had to be shipped (the rest were
    /// dedup hits already resident on the worker).
    pub dataset_keys_shipped: usize,
}

impl DistStats {
    /// Fraction of announced keys answered from worker-resident graphs
    /// (1.0 = nothing needed shipping).
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.dataset_keys_total == 0 {
            0.0
        } else {
            1.0 - self.dataset_keys_shipped as f64 / self.dataset_keys_total as f64
        }
    }
}

/// The coordinator of a distributed worker pool.
pub struct Coordinator {
    workers: Vec<Arc<WorkerLink>>,
    config: DistConfig,
    grams: AtomicUsize,
    local_fallback_grams: AtomicUsize,
    local_fallback_tiles: AtomicUsize,
    dataset_keys_total: AtomicUsize,
    dataset_keys_shipped: AtomicUsize,
}

impl Coordinator {
    /// Creates a coordinator over `addrs`, requiring at least one worker to
    /// answer the ping handshake right now (catching dead configuration at
    /// startup); the rest are retried at every Gram. Errors list every
    /// unreachable address.
    pub fn connect(addrs: &[String], config: DistConfig) -> Result<Coordinator, String> {
        if addrs.is_empty() {
            return Err("distributed backend needs at least one worker address".to_string());
        }
        let workers: Vec<Arc<WorkerLink>> = addrs
            .iter()
            .map(|addr| Arc::new(WorkerLink::new(addr.clone())))
            .collect();
        let mut failures = Vec::new();
        let mut reachable = 0;
        for link in &workers {
            match Conn::connect(&link.addr, config.connect_timeout) {
                Ok(conn) => {
                    link.alive.store(true, Ordering::Release);
                    link.checkin(conn);
                    reachable += 1;
                }
                Err(e) => failures.push(e),
            }
        }
        if reachable == 0 {
            return Err(format!(
                "no distributed worker reachable: {}",
                failures.join("; ")
            ));
        }
        Ok(Coordinator {
            workers,
            config,
            grams: AtomicUsize::new(0),
            local_fallback_grams: AtomicUsize::new(0),
            local_fallback_tiles: AtomicUsize::new(0),
            dataset_keys_total: AtomicUsize::new(0),
            dataset_keys_shipped: AtomicUsize::new(0),
        })
    }

    /// Number of configured workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Snapshot of the pool state.
    pub fn stats(&self) -> DistStats {
        DistStats {
            workers: self.workers.iter().map(|w| w.stats()).collect(),
            grams: self.grams.load(Ordering::Relaxed),
            local_fallback_grams: self.local_fallback_grams.load(Ordering::Relaxed),
            local_fallback_tiles: self.local_fallback_tiles.load(Ordering::Relaxed),
            dataset_keys_total: self.dataset_keys_total.load(Ordering::Relaxed),
            dataset_keys_shipped: self.dataset_keys_shipped.load(Ordering::Relaxed),
        }
    }

    /// Chaos hook: arms `fail_after` on worker `index` — it will serve
    /// `tiles` more tile requests, then fail and hang up. Used by the
    /// fault-injection tests to kill a worker deterministically mid-Gram.
    pub fn inject_worker_fault(&self, index: usize, tiles: usize) -> Result<(), String> {
        let link = self
            .workers
            .get(index)
            .ok_or_else(|| format!("no worker at index {index}"))?;
        let mut conn = link
            .checkout(self.config.connect_timeout)
            .ok_or_else(|| format!("worker {} unreachable", link.addr))?;
        let request = Json::obj([
            ("cmd", Json::Str("fail_after".to_string())),
            ("tiles", Json::Num(tiles as f64)),
        ]);
        let result = conn.call(&request, Some(self.config.connect_timeout));
        link.checkin(conn);
        result.map(|_| ())
    }

    /// The distributed Gram entry point (called by the installed
    /// [`GramBackend`](haqjsk_engine::GramBackend) implementation).
    pub(crate) fn gram_tiles_spec(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
        spec: Option<&RemoteGram<'_>>,
    ) -> Matrix {
        self.grams.fetch_add(1, Ordering::Relaxed);
        // Anything the wire format cannot express executes locally.
        let kernel = spec.and_then(KernelSpec::from_remote);
        let (Some(spec), Some(kernel)) = (spec, kernel) else {
            return self.local_gram(pool, n, tile, prefetch, eval);
        };
        if spec.graphs.len() != n || n == 0 {
            return self.local_gram(pool, n, tile, prefetch, eval);
        }

        // Dataset shipping to every currently reachable worker — one
        // scoped thread per link, so connect timeouts and shipping round
        // trips overlap instead of stacking up serially before the first
        // tile can go out.
        let keys = dataset_keys(spec.graphs);
        let id = dataset_id(&keys);
        let ready: std::sync::Mutex<Vec<(Arc<WorkerLink>, Conn)>> =
            std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for link in &self.workers {
                let (keys, id, ready) = (&keys, &id, &ready);
                scope.spawn(move || {
                    let Some(mut conn) = link.checkout(self.config.connect_timeout) else {
                        return;
                    };
                    match ship_dataset(link, &mut conn, id, keys, spec.graphs, &self.config) {
                        Ok(shipped) => {
                            self.dataset_keys_total
                                .fetch_add(keys.len(), Ordering::Relaxed);
                            self.dataset_keys_shipped
                                .fetch_add(shipped, Ordering::Relaxed);
                            link.datasets_shipped.fetch_add(1, Ordering::Relaxed);
                            ready
                                .lock()
                                .expect("ship list poisoned")
                                .push((Arc::clone(link), conn));
                        }
                        Err(_) => link.mark_dead(),
                    }
                });
            }
        });
        let mut ready = ready.into_inner().expect("ship list poisoned");
        // Deterministic thread order (stats, scheduling fairness) despite
        // the parallel shipping.
        ready.sort_by_key(|(link, _)| {
            self.workers
                .iter()
                .position(|w| Arc::ptr_eq(w, link))
                .unwrap_or(usize::MAX)
        });
        if ready.is_empty() {
            return self.local_gram(pool, n, tile, prefetch, eval);
        }

        // The exact tile grid the local backends use.
        let tile = tile.max(1);
        let grid = gram::upper_triangle_tiles(n, tile);
        let mut tiles: Vec<Vec<(usize, usize)>> = Vec::with_capacity(grid.len());
        let mut pairs = Vec::new();
        for &(bi, bj) in &grid {
            gram::tile_pairs(n, tile, bi, bj, &mut pairs);
            tiles.push(pairs.clone());
        }

        let kernel_json = kernel.to_json();
        let results = scheduler::run_tiles(ready, &id, &kernel_json, &tiles, &self.config);

        // Assemble, evaluating leftover tiles locally (worker deaths must
        // never fail a Gram). The leftovers run in parallel on the engine
        // pool — after a total pool loss this is the whole Gram.
        let missing: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(t, _)| t)
            .collect();
        self.local_fallback_tiles
            .fetch_add(missing.len(), Ordering::Relaxed);
        let fallback: Vec<Vec<f64>> = pool.map(missing.len(), |k| {
            let t = missing[k];
            let mut out = vec![0.0; tiles[t].len()];
            eval.eval_tile(&tiles[t], &mut out);
            out
        });

        let mut values = Matrix::zeros(n, n);
        let mut fallback_iter = fallback.into_iter();
        for (t, result) in results.into_iter().enumerate() {
            let block = match result {
                Some(block) => block,
                None => fallback_iter.next().expect("one fallback per missing tile"),
            };
            for (&(i, j), &v) in tiles[t].iter().zip(&block) {
                values[(i, j)] = v;
                values[(j, i)] = v;
            }
        }
        values
    }

    /// Local execution on the tiled pool — the no-spec / no-worker path.
    fn local_gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        self.local_fallback_grams.fetch_add(1, Ordering::Relaxed);
        use haqjsk_engine::backend::{GramBackend, TiledPoolBackend};
        TiledPoolBackend.gram_tiles(pool, n, tile, prefetch, eval)
    }
}

/// Ships the dataset to one worker (begin → missing graphs in chunks →
/// commit); returns how many graphs actually travelled.
fn ship_dataset(
    link: &WorkerLink,
    conn: &mut Conn,
    id: &str,
    keys: &[haqjsk_engine::GraphKey],
    graphs: &[Graph],
    config: &DistConfig,
) -> Result<usize, String> {
    let timeout = Some(config.deadline);
    let begin = conn.call_counted(link, &wire::dataset_begin_request(id, keys), timeout)?;
    let missing: Vec<usize> = begin
        .get("missing")
        .and_then(Json::as_array)
        .ok_or("dataset_begin response needs 'missing'")?
        .iter()
        .map(|i| {
            i.as_usize()
                .filter(|&i| i < graphs.len())
                .ok_or("bad missing index")
        })
        .collect::<Result<_, _>>()?;
    for chunk in missing.chunks(SHIP_CHUNK) {
        let refs: Vec<&Graph> = chunk.iter().map(|&i| &graphs[i]).collect();
        conn.call_counted(
            link,
            &wire::dataset_graphs_request(id, chunk, &refs),
            timeout,
        )?;
    }
    conn.call_counted(link, &wire::dataset_commit_request(id), timeout)?;
    Ok(missing.len())
}
