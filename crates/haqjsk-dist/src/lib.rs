//! # haqjsk-dist
//!
//! Distributed tile execution: a worker-pool RPC backend that spans one
//! Gram matrix across processes and machines.
//!
//! The engine's PR 4 tile seam (`GramBackend::gram_tiles` hands whole tiles
//! of index pairs to an evaluator) is exactly the shape a remote backend
//! needs: this crate adds the transport. A [`Coordinator`] speaks a
//! JSON-lines TCP protocol (the same [`haqjsk_engine::json`] values and
//! `serve` framing as `haqjsk-serve`) to a pool of [`WorkerServer`]
//! processes, each running the existing engine locally:
//!
//! ```text
//!           Engine::gram_tiles_spec (kernel id + params + graphs)
//!                         │
//!            DistributedBackend (BackendKind::Distributed)
//!                         │
//!                   Coordinator ──── dataset shipping (content-hash dedup)
//!                    │        │
//!      window + deadline    local fallback (byte-identical evaluator)
//!            │                          │
//!     haqjsk-worker ...  haqjsk-worker  └── tiles no worker returned
//!      (own engine,        (own engine,
//!       own caches)         own caches)
//! ```
//!
//! * **Selection.** `HAQJSK_BACKEND=dist:host:port,host:port` plus
//!   [`install_from_env`] (the binaries call it at startup), or
//!   [`Coordinator::connect`] + [`set_coordinator`] programmatically. The
//!   backend registers itself with the engine's backend registry
//!   ([`haqjsk_engine::install_distributed_backend`]); kernels then select
//!   it like any other backend (`BackendKind::Distributed`).
//! * **Byte identity.** A distributed Gram is byte-identical to
//!   [`BackendKind::Serial`](haqjsk_engine::BackendKind) no matter which
//!   worker computed which tile, which tiles were re-dispatched, or which
//!   fell back to local execution — tile values are deterministic functions
//!   of (kernel, dataset, pair) and `f64`s round-trip bit-exactly through
//!   the JSON wire format.
//! * **Fault handling.** Outstanding-tile windows per worker,
//!   deadline-based straggler re-dispatch, death recovery with requeueing,
//!   and a local evaluator of last resort: a Gram never fails because a
//!   worker vanished. See [`fault`] and [`scheduler`].
//! * **What distributes.** Gram computations carrying a serialisable
//!   kernel spec: QJSK unaligned/aligned and JTQK publish one directly,
//!   and fitted HAQJSK models distribute by shipping their persisted-model
//!   artifact (content-addressed, dedup-shipped like datasets) so workers
//!   evaluate model tiles against a local reconstruction. Everything else
//!   — arbitrary closures, per-pair entries — executes locally on the
//!   tiled pool when the distributed backend is selected, never failing,
//!   so the backend is always safe to enable globally.
//! * **Elastic membership.** Workers join ([`Coordinator::add_worker`])
//!   and leave ([`Coordinator::remove_worker`]) a *running* coordinator;
//!   dead workers sit in probation and are redialed with jittered
//!   exponential backoff; every transition bumps a membership epoch
//!   stamped on tile traffic. Worker-side graph stores are byte-budgeted
//!   (evictions repair via targeted re-shipping, not worker death), and a
//!   seeded [`chaos`] harness injects deterministic kills / hangups /
//!   delays / store misses for soak testing.

pub mod chaos;
pub mod coordinator;
pub mod dataset;
pub mod fault;
pub mod obs;
pub(crate) mod scheduler;
pub mod wire;
pub mod worker;

pub use chaos::{ChaosPlan, CHAOS_ENV_VAR};
pub use coordinator::{
    Coordinator, DistConfig, DistStats, DIST_CONNECT_TIMEOUT_ENV_VAR, DIST_DEADLINE_ENV_VAR,
    DIST_RECONNECT_BASE_ENV_VAR, DIST_RECONNECT_MAX_ENV_VAR, DIST_WINDOW_ENV_VAR,
};
pub use dataset::{
    StoreConfig, StoreStats, WORKER_STORE_ADMISSION_ENV_VAR, WORKER_STORE_BUDGET_ENV_VAR,
};
pub use fault::{LinkState, WorkerStatsSnapshot};
pub use obs::register_dist_metrics;
pub use wire::KernelSpec;
pub use worker::{WorkerOptions, WorkerServer};

use haqjsk_engine::backend::{GramBackend, Prefetch, TileEvaluator, TiledPoolBackend};
use haqjsk_engine::{BackendKind, RemoteGram, WorkerPool};
use haqjsk_linalg::Matrix;
use std::sync::{Arc, OnceLock, RwLock};

/// The [`GramBackend`] realising [`BackendKind::Distributed`]: routes
/// spec-carrying tile Grams through the current [`Coordinator`] and
/// everything else (per-pair entries, extensions, specless tiles, no
/// coordinator installed) to the local tiled pool.
pub struct DistributedBackend;

static BACKEND: DistributedBackend = DistributedBackend;

fn coordinator_slot() -> &'static RwLock<Option<Arc<Coordinator>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<Coordinator>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Registers [`DistributedBackend`] with the engine's backend registry so
/// `BackendKind::Distributed` resolves to it. Idempotent.
pub fn install() {
    haqjsk_engine::install_distributed_backend(&BACKEND);
}

/// Swaps the process-wide coordinator (also [`install`]ing the backend);
/// returns the previous one. `None` reverts `BackendKind::Distributed` to
/// local execution.
pub fn set_coordinator(coordinator: Option<Arc<Coordinator>>) -> Option<Arc<Coordinator>> {
    install();
    let mut slot = coordinator_slot()
        .write()
        .expect("coordinator slot poisoned");
    std::mem::replace(&mut slot, coordinator)
}

/// The process-wide coordinator, if one is installed.
pub fn current_coordinator() -> Option<Arc<Coordinator>> {
    coordinator_slot()
        .read()
        .expect("coordinator slot poisoned")
        .clone()
}

/// Wires the distributed backend up from the environment: when
/// `HAQJSK_BACKEND` is `dist:<addr,addr>`, connects a [`Coordinator`]
/// (config from `HAQJSK_DIST_*`), installs it process-wide and returns it.
/// `Ok(None)` when the environment selects no distributed backend; an
/// error when it does but no worker is reachable — binaries should treat
/// that as fatal at startup rather than silently computing locally.
pub fn install_from_env() -> Result<Option<Arc<Coordinator>>, String> {
    let Some(addrs) = BackendKind::dist_addresses_from_env() else {
        return Ok(None);
    };
    let coordinator = Arc::new(Coordinator::connect(&addrs, DistConfig::from_env())?);
    set_coordinator(Some(Arc::clone(&coordinator)));
    Ok(Some(coordinator))
}

impl GramBackend for DistributedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Distributed
    }

    // Per-pair entry functions cannot be serialised; execute locally with
    // the tiled pool's exact semantics.
    fn gram(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: haqjsk_engine::backend::Entry<'_>,
    ) -> Matrix {
        TiledPoolBackend.gram(pool, n, tile, prefetch, entry)
    }

    fn gram_extend(
        &self,
        pool: &WorkerPool,
        base: &Matrix,
        total: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        entry: haqjsk_engine::backend::Entry<'_>,
    ) -> Matrix {
        TiledPoolBackend.gram_extend(pool, base, total, tile, prefetch, entry)
    }

    fn for_each(&self, pool: &WorkerPool, count: usize, f: &(dyn Fn(usize) + Sync)) {
        TiledPoolBackend.for_each(pool, count, f)
    }

    fn gram_tiles(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
    ) -> Matrix {
        // No spec — nothing to ship.
        TiledPoolBackend.gram_tiles(pool, n, tile, prefetch, eval)
    }

    fn gram_tiles_spec(
        &self,
        pool: &WorkerPool,
        n: usize,
        tile: usize,
        prefetch: Option<Prefetch<'_>>,
        eval: &dyn TileEvaluator,
        spec: Option<&RemoteGram<'_>>,
    ) -> Matrix {
        match current_coordinator() {
            Some(coordinator) => coordinator.gram_tiles_spec(pool, n, tile, prefetch, eval, spec),
            None => TiledPoolBackend.gram_tiles(pool, n, tile, prefetch, eval),
        }
    }
}
