//! Deterministic chaos injection for workers.
//!
//! A [`ChaosPlan`] is a seeded fault schedule: per-tile permille rates for
//! connection kills, mid-stream hangups, bounded response delays and
//! transient `store_miss` replies. Because the schedule is driven by one
//! seeded [`StdRng`] drawn in request order on a single worker thread, a
//! given `(seed, request sequence)` always injects the same faults — the
//! soak harness replays bugs instead of chasing them.
//!
//! Plans travel two ways: as the `HAQJSK_CHAOS` environment variable
//! (`seed:42,kill:10,hang:5,delay:50:25,miss:20`) read by a worker process
//! at startup, and as the `chaos` wire command a coordinator sends to arm
//! or disarm a running worker.
//!
//! Faults are injected only on `tile` requests — control traffic (dataset
//! and artifact shipping, stats, pings) stays reliable so the harness
//! exercises *recovery*, not setup.

use haqjsk_engine::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A seeded fault schedule. Rates are permille (‰) probabilities drawn
/// independently per `tile` request, checked in the order: kill, hangup,
/// store_miss, delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// RNG seed; the whole schedule is a pure function of this.
    pub seed: u64,
    /// Permille chance the worker answers an error and drops the
    /// connection (the process survives; the coordinator sees a death).
    pub kill_permille: u32,
    /// Permille chance the worker computes the tile but hangs up without
    /// answering — a mid-stream EOF from the coordinator's side.
    pub hangup_permille: u32,
    /// Permille chance the worker sleeps before evaluating the tile.
    pub delay_permille: u32,
    /// Upper bound (milliseconds) of the injected delay.
    pub delay_max_ms: u32,
    /// Permille chance the worker forgets one stored dataset graph and
    /// answers `store_miss`, forcing a targeted re-ship.
    pub miss_permille: u32,
}

/// Environment variable carrying a seeded chaos plan
/// (`seed:N[,kill:P][,hang:P][,delay:P[:MS]][,miss:P]`, rates in permille).
pub const CHAOS_ENV_VAR: &str = "HAQJSK_CHAOS";

impl ChaosPlan {
    /// Parses the `HAQJSK_CHAOS` syntax: comma-separated `key:value`
    /// entries. `seed:N` is required; `kill:N`, `hang:N`, `miss:N` are
    /// permille rates; `delay:N` or `delay:N:MS` sets the delay rate and
    /// optionally its bound (default 20 ms).
    pub fn parse(raw: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan {
            seed: 0,
            kill_permille: 0,
            hangup_permille: 0,
            delay_permille: 0,
            delay_max_ms: 20,
            miss_permille: 0,
        };
        let mut saw_seed = false;
        for entry in raw.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let mut parts = entry.split(':');
            let key = parts.next().unwrap_or_default();
            let value = parts
                .next()
                .ok_or_else(|| format!("chaos entry '{entry}' needs a value"))?;
            let parsed: u64 = value
                .parse()
                .map_err(|e| format!("bad chaos value '{value}': {e}"))?;
            match key {
                "seed" => {
                    plan.seed = parsed;
                    saw_seed = true;
                }
                "kill" => plan.kill_permille = permille(parsed)?,
                "hang" => plan.hangup_permille = permille(parsed)?,
                "miss" => plan.miss_permille = permille(parsed)?,
                "delay" => {
                    plan.delay_permille = permille(parsed)?;
                    if let Some(ms) = parts.next() {
                        plan.delay_max_ms = ms
                            .parse()
                            .map_err(|e| format!("bad chaos delay bound '{ms}': {e}"))?;
                    }
                }
                other => return Err(format!("unknown chaos key '{other}'")),
            }
            if parts.next().is_some() && key != "delay" {
                return Err(format!("chaos entry '{entry}' has too many fields"));
            }
        }
        if !saw_seed {
            return Err("chaos plan needs a 'seed:N' entry".to_string());
        }
        Ok(plan)
    }

    /// Reads the plan from [`CHAOS_ENV_VAR`]; `None` when unset or empty,
    /// `Err` (with the offending text) when set but malformed.
    pub fn from_env() -> Result<Option<ChaosPlan>, String> {
        match std::env::var(CHAOS_ENV_VAR) {
            Ok(raw) if !raw.trim().is_empty() => Self::parse(&raw).map(Some),
            _ => Ok(None),
        }
    }

    /// The `HAQJSK_CHAOS` text form of this plan (parses back to `self`).
    pub fn to_env_string(&self) -> String {
        format!(
            "seed:{},kill:{},hang:{},delay:{}:{},miss:{}",
            self.seed,
            self.kill_permille,
            self.hangup_permille,
            self.delay_permille,
            self.delay_max_ms,
            self.miss_permille
        )
    }

    /// The plan's fields in `chaos` wire-command form.
    pub fn to_fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("seed", Json::Num(self.seed as f64)),
            ("kill", Json::Num(self.kill_permille as f64)),
            ("hangup", Json::Num(self.hangup_permille as f64)),
            ("delay", Json::Num(self.delay_permille as f64)),
            ("delay_ms", Json::Num(self.delay_max_ms as f64)),
            ("miss", Json::Num(self.miss_permille as f64)),
        ]
    }

    /// Restores a plan from a `chaos` wire command; `Ok(None)` when the
    /// command carries `"off":true`.
    pub fn from_request(value: &Json) -> Result<Option<ChaosPlan>, String> {
        if value.get("off").and_then(Json::as_bool) == Some(true) {
            return Ok(None);
        }
        let field = |name: &str| {
            value
                .get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("chaos command needs an integer field '{name}'"))
        };
        Ok(Some(ChaosPlan {
            seed: field("seed")? as u64,
            kill_permille: permille(field("kill")? as u64)?,
            hangup_permille: permille(field("hangup")? as u64)?,
            delay_permille: permille(field("delay")? as u64)?,
            delay_max_ms: field("delay_ms")? as u32,
            miss_permille: permille(field("miss")? as u64)?,
        }))
    }
}

fn permille(value: u64) -> Result<u32, String> {
    (value <= 1000)
        .then_some(value as u32)
        .ok_or_else(|| format!("permille rate {value} exceeds 1000"))
}

/// One fault drawn from the plan for a single tile request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Answer an error and drop the connection.
    Kill,
    /// Hang up without answering (mid-stream EOF).
    Hangup,
    /// Sleep this long before evaluating.
    Delay(std::time::Duration),
    /// Evict one stored graph and answer `store_miss`.
    StoreMiss,
}

/// The armed plan plus its RNG and injection counters, owned by a worker.
pub struct ChaosState {
    plan: ChaosPlan,
    rng: Mutex<StdRng>,
    /// Kills injected so far.
    pub kills: AtomicUsize,
    /// Hangups injected so far.
    pub hangups: AtomicUsize,
    /// Delays injected so far.
    pub delays: AtomicUsize,
    /// Store misses injected so far.
    pub misses: AtomicUsize,
    /// `(dataset-id hash, job)` of the last injected miss: a given job is
    /// never missed twice in a row, so every injected miss is transient by
    /// construction and the coordinator's re-ship-and-retry terminates.
    last_miss: Mutex<Option<(u64, usize)>>,
}

impl ChaosState {
    /// Arms `plan`, seeding the RNG.
    pub fn new(plan: ChaosPlan) -> ChaosState {
        ChaosState {
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(plan.seed)),
            kills: AtomicUsize::new(0),
            hangups: AtomicUsize::new(0),
            delays: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            last_miss: Mutex::new(None),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> ChaosPlan {
        self.plan
    }

    /// Draws at most one fault for a `tile` request, recording it in the
    /// counters. Repeat misses for the same `(dataset, job)` are
    /// suppressed (see [`ChaosState::last_miss`]'s invariant).
    pub fn draw(&self, dataset: &str, job: usize) -> Option<ChaosFault> {
        let mut rng = self.rng.lock().expect("chaos rng poisoned");
        let roll = rng.gen_range(0u32..1000);
        let delay_ms = rng.gen_range(0u32..self.plan.delay_max_ms.max(1));
        drop(rng);

        let kill_edge = self.plan.kill_permille;
        let hang_edge = kill_edge + self.plan.hangup_permille;
        let miss_edge = hang_edge + self.plan.miss_permille;
        let delay_edge = miss_edge + self.plan.delay_permille;
        if roll < kill_edge {
            self.kills.fetch_add(1, Ordering::Relaxed);
            return Some(ChaosFault::Kill);
        }
        if roll < hang_edge {
            self.hangups.fetch_add(1, Ordering::Relaxed);
            return Some(ChaosFault::Hangup);
        }
        if roll < miss_edge {
            let tag = (fnv64(dataset), job);
            let mut last = self.last_miss.lock().expect("chaos miss guard poisoned");
            if *last == Some(tag) {
                return None;
            }
            *last = Some(tag);
            drop(last);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Some(ChaosFault::StoreMiss);
        }
        if roll < delay_edge {
            self.delays.fetch_add(1, Ordering::Relaxed);
            return Some(ChaosFault::Delay(std::time::Duration::from_millis(
                delay_ms as u64,
            )));
        }
        None
    }
}

fn fnv64(text: &str) -> u64 {
    let mut state: u64 = 0xcbf29ce484222325;
    for byte in text.as_bytes() {
        state ^= *byte as u64;
        state = state.wrapping_mul(0x100000001b3);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let plan = ChaosPlan::parse("seed:42,kill:10,hang:5,delay:50:25,miss:20").unwrap();
        assert_eq!(
            plan,
            ChaosPlan {
                seed: 42,
                kill_permille: 10,
                hangup_permille: 5,
                delay_permille: 50,
                delay_max_ms: 25,
                miss_permille: 20,
            }
        );
        // Defaults: unset rates are zero, delay bound defaults to 20 ms.
        let sparse = ChaosPlan::parse("seed:7,delay:100").unwrap();
        assert_eq!(sparse.seed, 7);
        assert_eq!(sparse.kill_permille, 0);
        assert_eq!(sparse.delay_max_ms, 20);
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        assert!(ChaosPlan::parse("kill:10").is_err()); // no seed
        assert!(ChaosPlan::parse("seed:abc").is_err());
        assert!(ChaosPlan::parse("seed:1,kill:1500").is_err()); // > 1000‰
        assert!(ChaosPlan::parse("seed:1,frobnicate:2").is_err());
        assert!(ChaosPlan::parse("seed:1,kill").is_err());
        assert!(ChaosPlan::parse("seed:1,kill:1:2").is_err());
    }

    #[test]
    fn env_string_roundtrips() {
        let plan = ChaosPlan::parse("seed:9,kill:3,hang:2,delay:40:15,miss:8").unwrap();
        assert_eq!(ChaosPlan::parse(&plan.to_env_string()).unwrap(), plan);
    }

    #[test]
    fn wire_fields_roundtrip() {
        let plan = ChaosPlan::parse("seed:11,kill:7,hang:3,delay:20:30,miss:5").unwrap();
        let request = crate::wire::chaos_request(Some(&plan));
        let parsed = Json::parse(&request.to_string()).unwrap();
        assert_eq!(ChaosPlan::from_request(&parsed).unwrap(), Some(plan));
        let off = crate::wire::chaos_request(None);
        assert_eq!(
            ChaosPlan::from_request(&Json::parse(&off.to_string()).unwrap()).unwrap(),
            None
        );
    }

    #[test]
    fn draws_are_deterministic_for_a_seed() {
        let plan = ChaosPlan::parse("seed:1234,kill:100,hang:100,delay:200:10,miss:100").unwrap();
        let a = ChaosState::new(plan);
        let b = ChaosState::new(plan);
        let seq_a: Vec<_> = (0..200).map(|j| a.draw("ds", j)).collect();
        let seq_b: Vec<_> = (0..200).map(|j| b.draw("ds", j)).collect();
        assert_eq!(seq_a, seq_b);
        // With these rates 200 draws essentially always inject something.
        assert!(seq_a.iter().any(Option::is_some));
        let total = a.kills.load(Ordering::Relaxed)
            + a.hangups.load(Ordering::Relaxed)
            + a.delays.load(Ordering::Relaxed)
            + a.misses.load(Ordering::Relaxed);
        assert_eq!(total, seq_a.iter().filter(|f| f.is_some()).count());
    }

    #[test]
    fn repeat_misses_for_one_job_are_suppressed() {
        // miss-only plan: every draw that fires is a StoreMiss.
        let plan = ChaosPlan::parse("seed:5,miss:1000").unwrap();
        let state = ChaosState::new(plan);
        assert_eq!(state.draw("ds", 3), Some(ChaosFault::StoreMiss));
        // The immediate retry of the same job must pass.
        assert_eq!(state.draw("ds", 3), None);
        // A different job can miss again.
        assert_eq!(state.draw("ds", 4), Some(ChaosFault::StoreMiss));
    }

    #[test]
    fn zero_rate_plan_never_fires() {
        let state = ChaosState::new(ChaosPlan::parse("seed:42").unwrap());
        assert!((0..500).all(|j| state.draw("ds", j).is_none()));
    }
}
