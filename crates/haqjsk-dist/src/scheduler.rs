//! The tile scheduler: windows, stragglers, and the never-fail guarantee.
//!
//! One Gram computation becomes a list of tile work units (the exact
//! upper-triangle tile grid the local backends use). Each live worker gets
//! a dedicated coordinator thread that keeps up to
//! [`DistConfig::window`](crate::DistConfig::window) tiles in flight on its
//! connection (pipelining hides the request/response latency), commits
//! results as they arrive, and tops the window back up from a shared queue.
//!
//! Four mechanisms keep the Gram alive under partial failure:
//!
//! * **Deadline-based straggler re-dispatch.** A tile in flight longer than
//!   [`DistConfig::deadline`](crate::DistConfig::deadline) becomes
//!   claimable by any idle worker; whichever copy finishes first wins
//!   (results are byte-identical, so duplicated execution is harmless and
//!   commits are idempotent).
//! * **Death recovery.** A connection error, hangup, malformed response or
//!   read timeout marks the worker dead (probation — see
//!   [`crate::fault`]) and requeues its in-flight tiles for the surviving
//!   workers. A **draining** worker exits its loop at the next iteration,
//!   requeueing the same way, without being counted dead.
//! * **Store-miss recovery.** A worker whose bounded store evicted dataset
//!   graphs (or whose model artifact is gone) answers `store_miss` instead
//!   of failing: the tile requeues, the worker's pipeline drains, the
//!   coordinator thread re-ships exactly what is missing over the same
//!   connection, and dispatch resumes — an eviction is never a death.
//! * **Local fallback.** Tiles still unfinished when every worker thread
//!   has exited are returned as `None`; the coordinator evaluates them with
//!   the kernel's local tile evaluator — same values, same Gram.

use crate::coordinator::{ship_artifact, ship_dataset, DistConfig};
use crate::fault::{Conn, LinkState, WorkerLink};
use crate::wire::{self, TileReply};
use haqjsk_engine::{GraphKey, Json};
use haqjsk_graph::Graph;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Everything one Gram's scheduling run needs: the work, the dataset (for
/// targeted re-ships after store misses), and the membership epoch stamped
/// on every dispatch.
pub(crate) struct TileRun<'a> {
    /// Dataset id the tiles refer to.
    pub dataset: &'a str,
    /// Wire form of the kernel spec.
    pub kernel: &'a Json,
    /// The tile grid: index pairs per tile.
    pub tiles: &'a [Vec<(usize, usize)>],
    /// Ordered structural keys of the dataset (re-ship path).
    pub keys: &'a [GraphKey],
    /// The dataset's graphs (re-ship path).
    pub graphs: &'a [Graph],
    /// Model artifact `(id, payload)` when the kernel is a fitted model.
    pub artifact: Option<(&'a str, &'a str)>,
    /// Membership epoch at dispatch time.
    pub epoch: usize,
    /// Scheduler knobs.
    pub config: &'a DistConfig,
}

/// Shared scheduling state over one Gram's tile list.
struct Shared<'a> {
    tiles: &'a [Vec<(usize, usize)>],
    queue: Mutex<SchedState>,
    results: Vec<OnceLock<Vec<f64>>>,
}

struct SchedState {
    /// Tiles waiting for a first (or re-) dispatch.
    queue: VecDeque<usize>,
    /// In-flight tiles and their latest dispatch time.
    inflight: HashMap<usize, Instant>,
    /// Per-tile completion flags.
    done: Vec<bool>,
    /// Tiles not yet committed.
    remaining: usize,
}

/// How one worker's dispatch loop ended.
enum LoopExit {
    /// All tiles committed; the connection survives.
    Done,
    /// The worker died (its tiles have been requeued).
    Died,
    /// The worker is draining out of membership (tiles requeued; the
    /// connection is discarded without counting a death).
    Drained,
}

/// Runs the tile list over the given worker connections; returns one
/// `Some(values)` per committed tile (in tile order) with `None` for tiles
/// no worker completed. Connections of surviving workers are checked back
/// into their links; dead and draining workers' connections are dropped.
pub(crate) fn run_tiles(
    workers: Vec<(Arc<WorkerLink>, Conn)>,
    run: &TileRun<'_>,
) -> Vec<Option<Vec<f64>>> {
    let shared = Shared {
        tiles: run.tiles,
        queue: Mutex::new(SchedState {
            queue: (0..run.tiles.len()).collect(),
            inflight: HashMap::new(),
            done: vec![false; run.tiles.len()],
            remaining: run.tiles.len(),
        }),
        results: (0..run.tiles.len()).map(|_| OnceLock::new()).collect(),
    };

    // The caller's trace context (the serving request's span, typically)
    // rides into every per-worker dispatch thread: tile dispatches are
    // stamped with it, and worker-returned spans merge under it — one
    // trace covers request → Gram → tile → remote eigensolve.
    let trace_ctx = haqjsk_obs::TraceContext::current();
    std::thread::scope(|scope| {
        for (link, mut conn) in workers {
            let shared = &shared;
            scope.spawn(move || {
                let _trace = haqjsk_obs::TraceContext::attach(trace_ctx);
                match worker_loop(&link, &mut conn, shared, run) {
                    LoopExit::Done => link.checkin(conn),
                    LoopExit::Died => link.mark_dead(),
                    LoopExit::Drained => {}
                }
            });
        }
    });

    shared
        .results
        .into_iter()
        .map(|slot| slot.into_inner())
        .collect()
}

/// Claims the next tile for a worker: queued tiles first, then any
/// in-flight tile whose deadline has expired (straggler re-dispatch).
/// `own` is the claimer's in-flight list — re-claiming one's own straggler
/// would be pointless.
fn claim(
    shared: &Shared<'_>,
    own: &VecDeque<usize>,
    link: &WorkerLink,
    config: &DistConfig,
) -> Option<usize> {
    let mut state = shared.queue.lock().expect("scheduler state poisoned");
    if state.remaining == 0 {
        return None;
    }
    while let Some(tile) = state.queue.pop_front() {
        if !state.done[tile] {
            state.inflight.insert(tile, Instant::now());
            return Some(tile);
        }
    }
    let now = Instant::now();
    let straggler = state
        .inflight
        .iter()
        .filter(|&(tile, since)| {
            !own.contains(tile) && now.duration_since(*since) >= config.deadline
        })
        .map(|(&tile, _)| tile)
        .next();
    if let Some(tile) = straggler {
        state.inflight.insert(tile, now);
        link.tiles_redispatched.fetch_add(1, Ordering::Relaxed);
    }
    straggler
}

/// Commits one tile result; idempotent (re-dispatched duplicates lose).
/// The winning commit returns the dispatch-to-commit round trip (measured
/// from the most recent in-flight stamp) for the worker's RPC histogram.
fn commit(shared: &Shared<'_>, tile: usize, values: Vec<f64>) -> Option<Duration> {
    let _ = shared.results[tile].set(values);
    let mut state = shared.queue.lock().expect("scheduler state poisoned");
    if !state.done[tile] {
        state.done[tile] = true;
        state.remaining -= 1;
        state.inflight.remove(&tile).map(|since| since.elapsed())
    } else {
        None
    }
}

/// Requeues a dead worker's unfinished in-flight tiles at the queue front.
fn requeue(shared: &Shared<'_>, own: &VecDeque<usize>) {
    let mut state = shared.queue.lock().expect("scheduler state poisoned");
    for &tile in own {
        if !state.done[tile] {
            state.inflight.remove(&tile);
            state.queue.push_front(tile);
        }
    }
}

/// Requeues one tile (the store-miss path: the tile was answered but not
/// computed).
fn requeue_one(shared: &Shared<'_>, tile: usize) {
    let mut state = shared.queue.lock().expect("scheduler state poisoned");
    if !state.done[tile] {
        state.inflight.remove(&tile);
        state.queue.push_front(tile);
    }
}

fn finished(shared: &Shared<'_>) -> bool {
    shared
        .queue
        .lock()
        .expect("scheduler state poisoned")
        .remaining
        == 0
}

/// One worker's dispatch loop (see [`LoopExit`] for the endings).
fn worker_loop(
    link: &WorkerLink,
    conn: &mut Conn,
    shared: &Shared<'_>,
    run: &TileRun<'_>,
) -> LoopExit {
    let config = run.config;
    let trace_ctx = haqjsk_obs::TraceContext::current();
    let mut own: VecDeque<usize> = VecDeque::new();
    // A read timeout alone does not kill the worker: a tile can
    // legitimately take longer than the straggler deadline (its tiles
    // become claimable by idle peers meanwhile — duplicates are harmless).
    // Two consecutive deadlines with zero responses means hung, which
    // bounds the worst case (a hung sole worker) at 2x deadline before the
    // local fallback takes over.
    let mut silent_deadlines = 0u32;
    // Accumulated store-miss repair work: dataset graphs and/or the model
    // artifact to re-ship once the pipeline has drained.
    let mut reship: Option<bool> = None;
    loop {
        // A drain request (remove_worker) takes effect at the next
        // iteration: requeue and bow out without counting a death.
        if link.state() == LinkState::Draining {
            requeue(shared, &own);
            return LoopExit::Drained;
        }

        // A pending store-miss repair blocks new claims; once the pipeline
        // has drained, re-ship over this same connection and resume.
        if let Some(artifact_missing) = reship {
            if own.is_empty() {
                if ship_dataset(link, conn, run.dataset, run.keys, run.graphs, config).is_err() {
                    return LoopExit::Died;
                }
                if artifact_missing {
                    match run.artifact {
                        Some((id, payload)) => {
                            if ship_artifact(link, conn, id, payload, config).is_err() {
                                return LoopExit::Died;
                            }
                        }
                        // The worker claims a model artifact is missing for
                        // a Gram that shipped none: unreliable.
                        None => return LoopExit::Died,
                    }
                }
                reship = None;
            }
        } else {
            // Top the pipeline up to the outstanding-tile window.
            while own.len() < config.window.max(1) {
                let Some(tile) = claim(shared, &own, link, config) else {
                    break;
                };
                let request = wire::tile_request(
                    run.dataset,
                    tile,
                    run.kernel,
                    &shared.tiles[tile],
                    run.epoch,
                    trace_ctx.as_ref(),
                );
                match conn.send(&request) {
                    Ok(bytes) => {
                        link.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
                        link.tiles_dispatched.fetch_add(1, Ordering::Relaxed);
                        own.push_back(tile);
                    }
                    Err(_) => {
                        // The claimed tile never reached the worker: requeue
                        // it along with everything else in flight here.
                        own.push_back(tile);
                        requeue(shared, &own);
                        return LoopExit::Died;
                    }
                }
            }
        }

        if own.is_empty() {
            if reship.is_some() {
                continue;
            }
            if finished(shared) {
                return LoopExit::Done;
            }
            // Nothing claimable right now: other workers hold the remaining
            // tiles within their deadline. Back off briefly and re-check
            // (the deadline expiring or a death will free work).
            std::thread::sleep(config.idle_backoff);
            continue;
        }

        match conn.recv(Some(config.deadline)) {
            Ok(response) => match wire::parse_tile_reply(&response) {
                Ok(TileReply::Values(tile))
                    if shared.tiles.get(tile.job).map(Vec::len) == Some(tile.values.len()) =>
                {
                    silent_deadlines = 0;
                    if let Some(pos) = own.iter().position(|&t| t == tile.job) {
                        own.remove(pos);
                    }
                    link.tiles_completed.fetch_add(1, Ordering::Relaxed);
                    if let Some(round_trip) = commit(shared, tile.job, tile.values) {
                        crate::obs::rpc_histogram(&link.addr).observe_duration(round_trip);
                        // The winning commit records the coordinator-side
                        // tile span (back-dated by the round trip) and
                        // splices the worker's span records into the local
                        // ring, tagged with the worker's address.
                        haqjsk_obs::record_span("dist_tile", round_trip);
                        haqjsk_obs::merge_spans(&link.addr, wire::reply_spans(&response));
                    }
                }
                Ok(TileReply::StoreMiss {
                    job,
                    artifact_missing,
                    ..
                }) if own.contains(&job) => {
                    // Recoverable: the worker's bounded store evicted part
                    // of the dataset (or the model). The tile was not
                    // computed — requeue it and schedule a re-ship.
                    silent_deadlines = 0;
                    if let Some(pos) = own.iter().position(|&t| t == job) {
                        own.remove(pos);
                    }
                    link.store_misses.fetch_add(1, Ordering::Relaxed);
                    requeue_one(shared, job);
                    reship = Some(reship.unwrap_or(false) | artifact_missing);
                }
                // Error responses, unknown jobs and short value vectors all
                // mean the worker is unreliable: give up on it.
                _ => {
                    requeue(shared, &own);
                    return LoopExit::Died;
                }
            },
            Err(e) if e.timed_out => {
                silent_deadlines += 1;
                if silent_deadlines >= 2 {
                    requeue(shared, &own);
                    return LoopExit::Died;
                }
                // Keep waiting; meanwhile idle peers can already claim the
                // overdue tiles through the straggler path.
            }
            Err(_) => {
                // Hangup or transport error: the connection is gone.
                requeue(shared, &own);
                return LoopExit::Died;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    fn test_config() -> DistConfig {
        DistConfig {
            window: 2,
            deadline: Duration::from_millis(150),
            idle_backoff: Duration::from_millis(1),
            connect_timeout: Duration::from_millis(500),
            ..DistConfig::default()
        }
    }

    /// Spawns a scripted "worker" that answers the ping handshake, then
    /// hands the connection to `script`.
    fn scripted_worker(
        script: impl FnOnce(TcpStream, BufReader<TcpStream>) + Send + 'static,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap(); // ping
            stream
                .write_all(b"{\"ok\":true,\"pong\":true,\"role\":\"worker\"}\n")
                .unwrap();
            script(stream, reader);
        });
        (addr, handle)
    }

    /// Runs two tiles against one scripted worker; returns the results and
    /// the link for counter assertions.
    fn run_against(addr: &str, config: &DistConfig) -> (Vec<Option<Vec<f64>>>, Arc<WorkerLink>) {
        let epoch = Arc::new(std::sync::atomic::AtomicUsize::new(1));
        let link = Arc::new(WorkerLink::new(addr.to_string(), epoch));
        let conn = link.checkout(config).expect("scripted worker reachable");
        let tiles = vec![vec![(0, 0), (0, 1)], vec![(1, 1)]];
        let kernel = Json::obj([("id", Json::Str("test".to_string()))]);
        let run = TileRun {
            dataset: "feedbeef",
            kernel: &kernel,
            tiles: &tiles,
            keys: &[],
            graphs: &[],
            artifact: None,
            epoch: 1,
            config,
        };
        let results = run_tiles(vec![(Arc::clone(&link), conn)], &run);
        (results, link)
    }

    /// Every failure mode must collapse to: mark dead (one death), requeue
    /// (all results `None` — the local fallback finishes the Gram).
    #[test]
    fn midstream_eof_collapses_to_death_and_requeue() {
        let (addr, handle) = scripted_worker(|stream, mut reader| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap(); // first tile request
            drop(stream); // hang up without answering
        });
        let config = test_config();
        let (results, link) = run_against(&addr, &config);
        handle.join().unwrap();
        assert!(results.iter().all(Option::is_none));
        assert_eq!(link.stats().deaths, 1);
        assert_eq!(link.state(), LinkState::Probation);
    }

    #[test]
    fn malformed_response_collapses_to_death_and_requeue() {
        let (addr, handle) = scripted_worker(|mut stream, mut reader| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            stream.write_all(b"not json at all\n").unwrap();
            // Keep the socket open so EOF is not the trigger.
            std::thread::sleep(Duration::from_millis(300));
        });
        let config = test_config();
        let (results, link) = run_against(&addr, &config);
        handle.join().unwrap();
        assert!(results.iter().all(Option::is_none));
        assert_eq!(link.stats().deaths, 1);
    }

    #[test]
    fn silent_deadline_timeouts_collapse_to_death_and_requeue() {
        let (addr, handle) = scripted_worker(|stream, mut reader| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            // Answer nothing for well past two deadlines.
            std::thread::sleep(Duration::from_millis(600));
            drop(stream);
        });
        let config = test_config();
        let (results, link) = run_against(&addr, &config);
        handle.join().unwrap();
        assert!(results.iter().all(Option::is_none));
        assert_eq!(link.stats().deaths, 1);
    }

    #[test]
    fn error_response_collapses_to_death_and_requeue() {
        let (addr, handle) = scripted_worker(|mut stream, mut reader| {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            stream
                .write_all(b"{\"ok\":false,\"error\":\"injected\"}\n")
                .unwrap();
            std::thread::sleep(Duration::from_millis(300));
        });
        let config = test_config();
        let (results, link) = run_against(&addr, &config);
        handle.join().unwrap();
        assert!(results.iter().all(Option::is_none));
        assert_eq!(link.stats().deaths, 1);
    }

    #[test]
    fn connect_refused_never_yields_a_connection() {
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let epoch = Arc::new(std::sync::atomic::AtomicUsize::new(1));
        let link = Arc::new(WorkerLink::new(addr, epoch));
        assert!(link.checkout(&test_config()).is_none());
        assert_eq!(link.state(), LinkState::Probation);
    }

    /// A worker that answers tiles normally: the happy path commits every
    /// tile and checks the connection back in.
    #[test]
    fn healthy_worker_commits_all_tiles() {
        let (addr, handle) = scripted_worker(|mut stream, mut reader| {
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let request = Json::parse(line.trim()).unwrap();
                let job = request.get("job").and_then(Json::as_usize).unwrap();
                let pairs = request.get("pairs").and_then(Json::as_array).unwrap().len();
                // Tile requests must carry the membership epoch.
                assert_eq!(request.get("epoch").and_then(Json::as_usize), Some(1));
                let values: Vec<String> = (0..pairs).map(|k| format!("{}.0", job + k)).collect();
                let reply = format!(
                    "{{\"ok\":true,\"job\":{job},\"values\":[{}]}}\n",
                    values.join(",")
                );
                stream.write_all(reply.as_bytes()).unwrap();
            }
        });
        let config = test_config();
        let (results, link) = run_against(&addr, &config);
        handle.join().unwrap();
        assert!(results.iter().all(Option::is_some));
        let stats = link.stats();
        assert_eq!(stats.deaths, 0);
        assert_eq!(stats.tiles_completed, 2);
        assert_eq!(link.state(), LinkState::Alive);
    }
}
