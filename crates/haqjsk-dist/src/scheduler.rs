//! The tile scheduler: windows, stragglers, and the never-fail guarantee.
//!
//! One Gram computation becomes a list of tile work units (the exact
//! upper-triangle tile grid the local backends use). Each live worker gets
//! a dedicated coordinator thread that keeps up to
//! [`DistConfig::window`](crate::DistConfig::window) tiles in flight on its
//! connection (pipelining hides the request/response latency), commits
//! results as they arrive, and tops the window back up from a shared queue.
//!
//! Three mechanisms keep the Gram alive under partial failure:
//!
//! * **Deadline-based straggler re-dispatch.** A tile in flight longer than
//!   [`DistConfig::deadline`](crate::DistConfig::deadline) becomes
//!   claimable by any idle worker; whichever copy finishes first wins
//!   (results are byte-identical, so duplicated execution is harmless and
//!   commits are idempotent).
//! * **Death recovery.** A connection error, hangup, malformed response or
//!   read timeout marks the worker dead and requeues its in-flight tiles
//!   for the surviving workers.
//! * **Local fallback.** Tiles still unfinished when every worker thread
//!   has exited are returned as `None`; the coordinator evaluates them with
//!   the kernel's local tile evaluator — same values, same Gram.

use crate::coordinator::DistConfig;
use crate::fault::{Conn, WorkerLink};
use crate::wire;
use haqjsk_engine::Json;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Shared scheduling state over one Gram's tile list.
struct Shared<'a> {
    tiles: &'a [Vec<(usize, usize)>],
    queue: Mutex<SchedState>,
    results: Vec<OnceLock<Vec<f64>>>,
}

struct SchedState {
    /// Tiles waiting for a first (or re-) dispatch.
    queue: VecDeque<usize>,
    /// In-flight tiles and their latest dispatch time.
    inflight: HashMap<usize, Instant>,
    /// Per-tile completion flags.
    done: Vec<bool>,
    /// Tiles not yet committed.
    remaining: usize,
}

/// Runs the tile list over the given worker connections; returns one
/// `Some(values)` per committed tile (in tile order) with `None` for tiles
/// no worker completed. Connections of surviving workers are checked back
/// into their links; dead workers' connections are dropped.
pub(crate) fn run_tiles(
    workers: Vec<(Arc<WorkerLink>, Conn)>,
    dataset: &str,
    kernel: &Json,
    tiles: &[Vec<(usize, usize)>],
    config: &DistConfig,
) -> Vec<Option<Vec<f64>>> {
    let shared = Shared {
        tiles,
        queue: Mutex::new(SchedState {
            queue: (0..tiles.len()).collect(),
            inflight: HashMap::new(),
            done: vec![false; tiles.len()],
            remaining: tiles.len(),
        }),
        results: (0..tiles.len()).map(|_| OnceLock::new()).collect(),
    };

    std::thread::scope(|scope| {
        for (link, mut conn) in workers {
            let shared = &shared;
            scope.spawn(move || {
                if worker_loop(&link, &mut conn, shared, dataset, kernel, config).is_ok() {
                    link.checkin(conn);
                } else {
                    link.mark_dead();
                }
            });
        }
    });

    shared
        .results
        .into_iter()
        .map(|slot| slot.into_inner())
        .collect()
}

/// Claims the next tile for a worker: queued tiles first, then any
/// in-flight tile whose deadline has expired (straggler re-dispatch).
/// `own` is the claimer's in-flight list — re-claiming one's own straggler
/// would be pointless.
fn claim(
    shared: &Shared<'_>,
    own: &VecDeque<usize>,
    link: &WorkerLink,
    config: &DistConfig,
) -> Option<usize> {
    let mut state = shared.queue.lock().expect("scheduler state poisoned");
    if state.remaining == 0 {
        return None;
    }
    while let Some(tile) = state.queue.pop_front() {
        if !state.done[tile] {
            state.inflight.insert(tile, Instant::now());
            return Some(tile);
        }
    }
    let now = Instant::now();
    let straggler = state
        .inflight
        .iter()
        .filter(|&(tile, since)| {
            !own.contains(tile) && now.duration_since(*since) >= config.deadline
        })
        .map(|(&tile, _)| tile)
        .next();
    if let Some(tile) = straggler {
        state.inflight.insert(tile, now);
        link.tiles_redispatched.fetch_add(1, Ordering::Relaxed);
    }
    straggler
}

/// Commits one tile result; idempotent (re-dispatched duplicates lose).
/// The winning commit returns the dispatch-to-commit round trip (measured
/// from the most recent in-flight stamp) for the worker's RPC histogram.
fn commit(shared: &Shared<'_>, tile: usize, values: Vec<f64>) -> Option<Duration> {
    let _ = shared.results[tile].set(values);
    let mut state = shared.queue.lock().expect("scheduler state poisoned");
    if !state.done[tile] {
        state.done[tile] = true;
        state.remaining -= 1;
        state.inflight.remove(&tile).map(|since| since.elapsed())
    } else {
        None
    }
}

/// Requeues a dead worker's unfinished in-flight tiles at the queue front.
fn requeue(shared: &Shared<'_>, own: &VecDeque<usize>) {
    let mut state = shared.queue.lock().expect("scheduler state poisoned");
    for &tile in own {
        if !state.done[tile] {
            state.inflight.remove(&tile);
            state.queue.push_front(tile);
        }
    }
}

fn finished(shared: &Shared<'_>) -> bool {
    shared
        .queue
        .lock()
        .expect("scheduler state poisoned")
        .remaining
        == 0
}

/// One worker's dispatch loop; `Err` means the worker died (its tiles have
/// been requeued).
fn worker_loop(
    link: &WorkerLink,
    conn: &mut Conn,
    shared: &Shared<'_>,
    dataset: &str,
    kernel: &Json,
    config: &DistConfig,
) -> Result<(), ()> {
    let mut own: VecDeque<usize> = VecDeque::new();
    // A read timeout alone does not kill the worker: a tile can
    // legitimately take longer than the straggler deadline (its tiles
    // become claimable by idle peers meanwhile — duplicates are harmless).
    // Two consecutive deadlines with zero responses means hung, which
    // bounds the worst case (a hung sole worker) at 2x deadline before the
    // local fallback takes over.
    let mut silent_deadlines = 0u32;
    loop {
        // Top the pipeline up to the outstanding-tile window.
        while own.len() < config.window.max(1) {
            let Some(tile) = claim(shared, &own, link, config) else {
                break;
            };
            let request = wire::tile_request(dataset, tile, kernel, &shared.tiles[tile]);
            match conn.send(&request) {
                Ok(bytes) => {
                    link.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
                    link.tiles_dispatched.fetch_add(1, Ordering::Relaxed);
                    own.push_back(tile);
                }
                Err(_) => {
                    // The claimed tile never reached the worker: requeue it
                    // along with everything else in flight here.
                    own.push_back(tile);
                    requeue(shared, &own);
                    return Err(());
                }
            }
        }

        if own.is_empty() {
            if finished(shared) {
                return Ok(());
            }
            // Nothing claimable right now: other workers hold the remaining
            // tiles within their deadline. Back off briefly and re-check
            // (the deadline expiring or a death will free work).
            std::thread::sleep(config.idle_backoff);
            continue;
        }

        match conn.recv(Some(config.deadline)) {
            Ok(response) => match wire::parse_tile_response(&response) {
                Ok(tile) if shared.tiles.get(tile.job).map(Vec::len) == Some(tile.values.len()) => {
                    silent_deadlines = 0;
                    if let Some(pos) = own.iter().position(|&t| t == tile.job) {
                        own.remove(pos);
                    }
                    link.tiles_completed.fetch_add(1, Ordering::Relaxed);
                    if let Some(round_trip) = commit(shared, tile.job, tile.values) {
                        crate::obs::rpc_histogram(&link.addr).observe_duration(round_trip);
                    }
                }
                // Error responses, unknown jobs and short value vectors all
                // mean the worker is unreliable: give up on it.
                _ => {
                    requeue(shared, &own);
                    return Err(());
                }
            },
            Err(e) if e.timed_out => {
                silent_deadlines += 1;
                if silent_deadlines >= 2 {
                    requeue(shared, &own);
                    return Err(());
                }
                // Keep waiting; meanwhile idle peers can already claim the
                // overdue tiles through the straggler path.
            }
            Err(_) => {
                // Hangup or transport error: the connection is gone.
                requeue(shared, &own);
                return Err(());
            }
        }
    }
}
