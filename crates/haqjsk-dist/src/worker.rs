//! The worker loop: a TCP server that stores datasets and evaluates tiles.
//!
//! A worker is a plain [`haqjsk_engine::Server`] (same accept loop, same
//! JSON-lines framing as `haqjsk-serve`) whose handler implements the
//! [`wire`] command table: it receives the dataset once
//! (content-hash-deduplicated into a process-lifetime [`GraphStore`]), then
//! answers `tile` work units by running the requested kernel's tile
//! evaluator over its local engine. Per-graph features warm the worker's
//! own sharded `FeatureCache`s exactly as an in-process Gram would, so
//! repeated tiles over the same rows are cache-hot.
//!
//! Large tiles are split into contiguous pair chunks evaluated in parallel
//! on the worker's own pool (`HAQJSK_THREADS` sizes it) — byte-identical to
//! a single whole-tile call because the batched mixture eigensolver is
//! bit-identical per matrix regardless of batch composition.
//!
//! ## Chaos knob
//!
//! `{"cmd":"fail_after","tiles":N}` arms deterministic fault injection: the
//! next `N` tile requests succeed, after which every tile request answers
//! an injected error and the connection is dropped — how the fault tests
//! kill a worker mid-Gram without races. `shutdown` acks, hangs up, and (in
//! the standalone binary) exits the process. The hangup flag is
//! process-wide, matching the deployment shape (one coordinator, one
//! connection): with multiple concurrent connections an armed fault can
//! close whichever connection's tile request trips it — fine for chaos
//! testing, which *wants* the worker to die messily.

use crate::dataset::GraphStore;
use crate::wire::{self, KernelSpec};
use haqjsk_engine::serve::error_response;
use haqjsk_engine::{graph_from_json, Engine, Handler, Json, Server};
use haqjsk_graph::Graph;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Minimum pairs per parallel chunk of a tile — below this, lane-starved
/// batches and scheduling overhead cost more than the parallelism buys.
const MIN_CHUNK_PAIRS: usize = 8;

/// Behavioral options of a worker server.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerOptions {
    /// Whether a `shutdown` command exits the process (the standalone
    /// `haqjsk-worker` binary sets this; in-process test workers do not).
    pub exit_on_shutdown: bool,
}

/// Counters a worker reports through its `stats` command.
struct WorkerCounters {
    tiles_served: AtomicUsize,
    pairs_evaluated: AtomicUsize,
    faults_injected: AtomicUsize,
}

struct WorkerState {
    store: Mutex<GraphStore>,
    counters: WorkerCounters,
    /// `< 0`: disabled. `> 0`: tile requests to serve before failing.
    /// `== 0`: every tile request fails (and hangs up).
    fail_after: AtomicIsize,
    /// Set when the current request decided to hang up afterwards.
    hangup_pending: AtomicBool,
    /// Set when the current request should exit the process afterwards.
    exit_pending: AtomicBool,
    options: WorkerOptions,
}

/// A running distributed worker bound to a TCP address.
pub struct WorkerServer {
    server: Server,
}

impl WorkerServer {
    /// Binds `addr` (port `0` for ephemeral) and serves the worker
    /// protocol on background threads.
    pub fn spawn(addr: &str, options: WorkerOptions) -> std::io::Result<WorkerServer> {
        let state = Arc::new(WorkerState {
            store: Mutex::new(GraphStore::default()),
            counters: WorkerCounters {
                tiles_served: AtomicUsize::new(0),
                pairs_evaluated: AtomicUsize::new(0),
                faults_injected: AtomicUsize::new(0),
            },
            fail_after: AtomicIsize::new(-1),
            hangup_pending: AtomicBool::new(false),
            exit_pending: AtomicBool::new(false),
            options,
        });
        let handler: Arc<dyn Handler> = Arc::new(WorkerHandler { state });
        Ok(WorkerServer {
            server: Server::spawn(addr, handler)?,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Stops accepting connections (existing ones finish naturally).
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

struct WorkerHandler {
    state: Arc<WorkerState>,
}

impl Handler for WorkerHandler {
    fn handle(&self, request: &Json) -> Json {
        let Some(cmd) = request.get("cmd").and_then(Json::as_str) else {
            return error_response("request needs a string field 'cmd'");
        };
        match cmd {
            "ping" => Json::obj([
                ("ok", Json::Bool(true)),
                ("pong", Json::Bool(true)),
                ("role", Json::Str("worker".to_string())),
                ("protocol", Json::Num(wire::PROTOCOL_VERSION as f64)),
            ]),
            "dataset_begin" => cmd_dataset_begin(&self.state, request),
            "dataset_graphs" => cmd_dataset_graphs(&self.state, request),
            "dataset_commit" => cmd_dataset_commit(&self.state, request),
            "tile" => cmd_tile(&self.state, request),
            "stats" => cmd_stats(&self.state),
            "fail_after" => cmd_fail_after(&self.state, request),
            "shutdown" => {
                self.state.hangup_pending.store(true, Ordering::Release);
                if self.state.options.exit_on_shutdown {
                    self.state.exit_pending.store(true, Ordering::Release);
                }
                Json::obj([("ok", Json::Bool(true))])
            }
            other => error_response(&format!("unknown worker command '{other}'")),
        }
    }

    fn hangup_after(&self, _request: &Json) -> bool {
        if self.state.exit_pending.load(Ordering::Acquire) {
            // The ack has been written and flushed; a standalone worker
            // leaves the process now.
            std::process::exit(0);
        }
        self.state.hangup_pending.swap(false, Ordering::AcqRel)
    }
}

fn dataset_field(request: &Json) -> Result<&str, String> {
    request
        .get("dataset")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string field 'dataset'".to_string())
}

fn cmd_dataset_begin(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let keys_json = request
            .get("keys")
            .and_then(Json::as_array)
            .ok_or("dataset_begin needs an array field 'keys'")?;
        let keys = keys_json
            .iter()
            .map(|k| {
                k.as_str()
                    .and_then(wire::key_from_hex)
                    .ok_or("keys must be 32-digit hex graph digests")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let missing = state
            .store
            .lock()
            .expect("graph store poisoned")
            .begin(dataset, keys);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            (
                "missing",
                Json::Arr(missing.into_iter().map(|i| Json::Num(i as f64)).collect()),
            ),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_dataset_graphs(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let indices = request
            .get("indices")
            .and_then(Json::as_array)
            .ok_or("dataset_graphs needs an array field 'indices'")?
            .iter()
            .map(|i| i.as_usize().ok_or("indices must be non-negative integers"))
            .collect::<Result<Vec<_>, _>>()?;
        let graphs = request
            .get("graphs")
            .and_then(Json::as_array)
            .ok_or("dataset_graphs needs an array field 'graphs'")?
            .iter()
            .map(graph_from_json)
            .collect::<Result<Vec<Graph>, String>>()?;
        let stored = state
            .store
            .lock()
            .expect("graph store poisoned")
            .insert_graphs(dataset, &indices, graphs)?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("stored", Json::Num(stored as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_dataset_commit(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let graphs = state
            .store
            .lock()
            .expect("graph store poisoned")
            .commit(dataset)?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("num_graphs", Json::Num(graphs.len() as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

/// Whether an armed fault fires on this tile request (serving `false` also
/// consumes one charge of the countdown).
fn fault_fires(state: &WorkerState) -> bool {
    loop {
        let current = state.fail_after.load(Ordering::Acquire);
        if current < 0 {
            return false;
        }
        if current == 0 {
            return true;
        }
        if state
            .fail_after
            .compare_exchange(current, current - 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return false;
        }
    }
}

fn cmd_tile(state: &WorkerState, request: &Json) -> Json {
    if fault_fires(state) {
        state
            .counters
            .faults_injected
            .fetch_add(1, Ordering::Relaxed);
        state.hangup_pending.store(true, Ordering::Release);
        return error_response("injected worker fault (fail_after)");
    }
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let job = request
            .get("job")
            .and_then(Json::as_usize)
            .ok_or("tile needs an integer field 'job'")?;
        let kernel =
            KernelSpec::from_json(request.get("kernel").ok_or("tile needs a field 'kernel'")?)?;
        let pairs =
            wire::pairs_from_json(request.get("pairs").ok_or("tile needs a field 'pairs'")?)?;
        let graphs = state
            .store
            .lock()
            .expect("graph store poisoned")
            .dataset(dataset)
            .ok_or_else(|| format!("dataset '{dataset}' is not committed on this worker"))?;
        let n = graphs.len();
        if pairs.iter().any(|&(i, j)| i >= n || j >= n) {
            return Err(format!("tile pair index out of range for {n} graphs"));
        }
        let values = eval_tile_chunked(&kernel, &graphs, &pairs);
        state.counters.tiles_served.fetch_add(1, Ordering::Relaxed);
        state
            .counters
            .pairs_evaluated
            .fetch_add(pairs.len(), Ordering::Relaxed);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("job", Json::Num(job as f64)),
            ("values", wire::values_to_json(&values)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

/// Evaluates a tile's pair list, splitting it into contiguous chunks over
/// the worker's own engine pool when large enough to be worth it.
/// Byte-identical to one whole-tile call (per-pair values are independent
/// and the batched eigensolver is bit-identical per matrix).
fn eval_tile_chunked(kernel: &KernelSpec, graphs: &[Graph], pairs: &[(usize, usize)]) -> Vec<f64> {
    let engine = Engine::global();
    let chunks = (pairs.len() / MIN_CHUNK_PAIRS).clamp(1, engine.threads());
    if chunks <= 1 {
        let mut out = vec![0.0; pairs.len()];
        kernel.eval_tile(graphs, pairs, &mut out);
        return out;
    }
    let per_chunk = pairs.len().div_ceil(chunks);
    let parts = engine.map(chunks, |c| {
        let start = c * per_chunk;
        let end = ((c + 1) * per_chunk).min(pairs.len());
        let mut out = vec![0.0; end - start];
        kernel.eval_tile(graphs, &pairs[start..end], &mut out);
        out
    });
    parts.concat()
}

fn cmd_fail_after(state: &WorkerState, request: &Json) -> Json {
    let Some(tiles) = request.get("tiles").and_then(Json::as_usize) else {
        return error_response("fail_after needs an integer field 'tiles'");
    };
    state.fail_after.store(tiles as isize, Ordering::Release);
    Json::obj([("ok", Json::Bool(true))])
}

fn cmd_stats(state: &WorkerState) -> Json {
    let store = state.store.lock().expect("graph store poisoned");
    Json::obj([
        ("ok", Json::Bool(true)),
        ("role", Json::Str("worker".to_string())),
        ("graphs_stored", Json::Num(store.num_graphs() as f64)),
        ("datasets", Json::Num(store.num_datasets() as f64)),
        (
            "tiles_served",
            Json::Num(state.counters.tiles_served.load(Ordering::Relaxed) as f64),
        ),
        (
            "pairs_evaluated",
            Json::Num(state.counters.pairs_evaluated.load(Ordering::Relaxed) as f64),
        ),
        (
            "faults_injected",
            Json::Num(state.counters.faults_injected.load(Ordering::Relaxed) as f64),
        ),
        (
            "engine_threads",
            Json::Num(Engine::global().threads() as f64),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{dataset_id, dataset_keys};
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn exchange(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &Json) -> Json {
        writer.write_all(format!("{request}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim()).unwrap()
    }

    #[test]
    fn worker_serves_dataset_and_tiles_over_loopback() {
        let server = WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let pong = exchange(&mut writer, &mut reader, &wire::ping_request());
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6)];
        let keys = dataset_keys(&graphs);
        let id = dataset_id(&keys);
        let begin = exchange(
            &mut writer,
            &mut reader,
            &wire::dataset_begin_request(&id, &keys),
        );
        let missing = begin.get("missing").and_then(Json::as_array).unwrap();
        assert_eq!(missing.len(), 3);
        let refs: Vec<&Graph> = graphs.iter().collect();
        exchange(
            &mut writer,
            &mut reader,
            &wire::dataset_graphs_request(&id, &[0, 1, 2], &refs),
        );
        let commit = exchange(&mut writer, &mut reader, &wire::dataset_commit_request(&id));
        assert_eq!(commit.get("num_graphs").and_then(Json::as_usize), Some(3));

        // A tile request answers the exact values of the local evaluator.
        let kernel = KernelSpec::QjskUnaligned { mu: 1.0 };
        let pairs = vec![(0, 0), (0, 1), (0, 2), (1, 2)];
        let response = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 3, &kernel.to_json(), &pairs),
        );
        let tile = wire::parse_tile_response(&response).unwrap();
        assert_eq!(tile.job, 3);
        let mut expected = vec![0.0; pairs.len()];
        kernel.eval_tile(&graphs, &pairs, &mut expected);
        assert_eq!(tile.values.len(), expected.len());
        for (a, b) in tile.values.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Tiles against an uncommitted dataset fail cleanly.
        let bad = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request("ffff", 0, &kernel.to_json(), &[(0, 1)]),
        );
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));

        let stats = exchange(
            &mut writer,
            &mut reader,
            &Json::obj([("cmd", Json::Str("stats".to_string()))]),
        );
        assert_eq!(stats.get("tiles_served").and_then(Json::as_usize), Some(1));
        assert_eq!(stats.get("graphs_stored").and_then(Json::as_usize), Some(3));
    }

    #[test]
    fn fail_after_injects_a_deterministic_fault() {
        let server = WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let graphs = vec![path_graph(4), cycle_graph(5)];
        let keys = dataset_keys(&graphs);
        let id = dataset_id(&keys);
        exchange(
            &mut writer,
            &mut reader,
            &wire::dataset_begin_request(&id, &keys),
        );
        let refs: Vec<&Graph> = graphs.iter().collect();
        exchange(
            &mut writer,
            &mut reader,
            &wire::dataset_graphs_request(&id, &[0, 1], &refs),
        );
        exchange(&mut writer, &mut reader, &wire::dataset_commit_request(&id));

        // Arm: one more tile succeeds, then the connection dies.
        let arm = exchange(
            &mut writer,
            &mut reader,
            &Json::obj([
                ("cmd", Json::Str("fail_after".to_string())),
                ("tiles", Json::Num(1.0)),
            ]),
        );
        assert_eq!(arm.get("ok").and_then(Json::as_bool), Some(true));

        let kernel = KernelSpec::QjskUnaligned { mu: 1.0 }.to_json();
        let ok = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 0, &kernel, &[(0, 1)]),
        );
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let injected = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 1, &kernel, &[(0, 1)]),
        );
        assert_eq!(injected.get("ok").and_then(Json::as_bool), Some(false));
        // The worker hung up after the injected failure: the next exchange
        // sees either a clean EOF or a reset (we may have written into the
        // already-closed socket), never a response.
        let _ = writer.write_all(format!("{}\n", wire::ping_request()).as_bytes());
        let _ = writer.flush();
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) => assert_eq!(n, 0, "connection closed, got {line:?}"),
            Err(_) => {} // reset by peer — also a hangup
        }
    }
}
