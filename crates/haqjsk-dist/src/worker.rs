//! The worker loop: a TCP server that stores datasets and evaluates tiles.
//!
//! A worker is a plain [`haqjsk_engine::Server`] (same accept loop, same
//! JSON-lines framing as `haqjsk-serve`) whose handler implements the
//! [`wire`] command table: it receives the dataset once
//! (content-hash-deduplicated into a byte-budgeted [`GraphStore`]), then
//! answers `tile` work units by running the requested kernel's tile
//! evaluator over its local engine. Per-graph features warm the worker's
//! own sharded `FeatureCache`s exactly as an in-process Gram would, so
//! repeated tiles over the same rows are cache-hot.
//!
//! Fitted-model kernels arrive as content-addressed **artifacts**
//! (`artifact_begin` / `artifact_chunk` / `artifact_commit`): the worker
//! verifies the digest, parses the persisted model eagerly, and keeps a
//! small LRU of reconstructed models, each with its own aligned-transform
//! cache. Model tiles evaluate against the reconstruction — byte-identical
//! to the coordinator's serial path because persistence round-trips `f64`s
//! exactly.
//!
//! The graph store is bounded (`HAQJSK_WORKER_STORE_BUDGET`): tiles pin
//! their dataset for the duration of evaluation, and a tile whose graphs
//! were evicted answers `store_miss` — the coordinator re-ships exactly
//! the missing graphs and retries, so an eviction never looks like a
//! worker death.
//!
//! Large tiles are split into contiguous pair chunks evaluated in parallel
//! on the worker's own pool (`HAQJSK_THREADS` sizes it) — byte-identical to
//! a single whole-tile call because the batched mixture eigensolver is
//! bit-identical per matrix regardless of batch composition.
//!
//! ## Chaos knobs
//!
//! `{"cmd":"fail_after","tiles":N}` arms deterministic fault injection: the
//! next `N` tile requests succeed, after which every tile request answers
//! an injected error and the connection is dropped — how the fault tests
//! kill a worker mid-Gram without races. `shutdown` acks, hangs up, and (in
//! the standalone binary) exits the process. The hangup flag is
//! process-wide, matching the deployment shape (one coordinator, one
//! connection): with multiple concurrent connections an armed fault can
//! close whichever connection's tile request trips it — fine for chaos
//! testing, which *wants* the worker to die messily.
//!
//! The seeded chaos harness is richer: `HAQJSK_CHAOS=seed:N,...` at spawn
//! (or a `chaos` command at runtime) arms a [`ChaosState`] that injects
//! kills, mid-stream hangups, response delays and transient store misses
//! at the configured permille rates, deterministically in request order.
//! Faults only fire on `tile` requests — dataset shipping, artifacts and
//! control commands always succeed, so the soak exercises recovery, not
//! setup. See [`crate::chaos`].

use crate::chaos::{ChaosFault, ChaosPlan, ChaosState};
use crate::dataset::GraphStore;
use crate::wire::{self, KernelSpec};
use haqjsk_core::{model_artifact_id, model_from_string, AlignedGraph, HaqjskModel};
use haqjsk_engine::cache::FeatureCache;
use haqjsk_engine::serve::error_response;
use haqjsk_engine::{graph_from_json, Engine, Handler, Json, Server};
use haqjsk_graph::Graph;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Minimum pairs per parallel chunk of a tile — below this, lane-starved
/// batches and scheduling overhead cost more than the parallelism buys.
const MIN_CHUNK_PAIRS: usize = 8;

/// Reconstructed models kept per worker. Small: a worker serves one
/// coordinator, which rarely juggles more than a couple of fitted models.
const MODEL_STORE_CAP: usize = 4;

/// Behavioral options of a worker server.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerOptions {
    /// Whether a `shutdown` command exits the process (the standalone
    /// `haqjsk-worker` binary sets this; in-process test workers do not).
    pub exit_on_shutdown: bool,
}

/// Counters a worker reports through its `stats` command.
struct WorkerCounters {
    tiles_served: AtomicUsize,
    pairs_evaluated: AtomicUsize,
    faults_injected: AtomicUsize,
    store_miss_replies: AtomicUsize,
}

/// A reconstructed fitted model plus its aligned-transform cache. The
/// cache is keyed by structural graph hash, so it must never outlive its
/// model — replacing an artifact replaces the cache with it.
struct ModelEntry {
    model: HaqjskModel,
    cache: FeatureCache<AlignedGraph>,
}

/// The worker's content-addressed model artifacts: in-flight text
/// accumulators plus a small LRU of parsed models.
#[derive(Default)]
struct ModelStore {
    pending: HashMap<String, String>,
    models: HashMap<String, Arc<ModelEntry>>,
    /// Commit order, oldest first (LRU victim order; touched on use).
    order: Vec<String>,
}

impl ModelStore {
    fn touch(&mut self, id: &str) {
        if let Some(position) = self.order.iter().position(|o| o == id) {
            let id = self.order.remove(position);
            self.order.push(id);
        }
    }

    fn get(&mut self, id: &str) -> Option<Arc<ModelEntry>> {
        let entry = self.models.get(id).cloned()?;
        self.touch(id);
        Some(entry)
    }

    fn insert(&mut self, id: String, entry: ModelEntry) {
        if self.models.insert(id.clone(), Arc::new(entry)).is_none() {
            self.order.push(id);
        } else {
            self.touch(&id);
        }
        while self.order.len() > MODEL_STORE_CAP {
            let victim = self.order.remove(0);
            self.models.remove(&victim);
        }
    }
}

struct WorkerState {
    store: Mutex<GraphStore>,
    models: Mutex<ModelStore>,
    chaos: RwLock<Option<Arc<ChaosState>>>,
    counters: WorkerCounters,
    /// Highest membership epoch seen on tile traffic (observability only —
    /// tiles from any epoch evaluate identically by design).
    last_epoch: AtomicUsize,
    /// `< 0`: disabled. `> 0`: tile requests to serve before failing.
    /// `== 0`: every tile request fails (and hangs up).
    fail_after: AtomicIsize,
    /// Set when the current request decided to hang up afterwards.
    hangup_pending: AtomicBool,
    /// Set when the current request's response must be swallowed (chaos
    /// mid-stream hangup: the peer sees EOF where a response line was due).
    swallow_pending: AtomicBool,
    /// Set when the current request should exit the process afterwards.
    exit_pending: AtomicBool,
    options: WorkerOptions,
}

/// A running distributed worker bound to a TCP address.
pub struct WorkerServer {
    server: Server,
}

impl WorkerServer {
    /// Binds `addr` (port `0` for ephemeral) and serves the worker
    /// protocol on background threads. The graph store budget comes from
    /// `HAQJSK_WORKER_STORE_BUDGET` and a chaos plan (if any) from
    /// `HAQJSK_CHAOS` — a malformed plan is a spawn error, not a silent
    /// no-chaos run.
    pub fn spawn(addr: &str, options: WorkerOptions) -> std::io::Result<WorkerServer> {
        let chaos = ChaosPlan::from_env()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?
            .map(|plan| Arc::new(ChaosState::new(plan)));
        let state = Arc::new(WorkerState {
            store: Mutex::new(GraphStore::from_env()),
            models: Mutex::new(ModelStore::default()),
            chaos: RwLock::new(chaos),
            counters: WorkerCounters {
                tiles_served: AtomicUsize::new(0),
                pairs_evaluated: AtomicUsize::new(0),
                faults_injected: AtomicUsize::new(0),
                store_miss_replies: AtomicUsize::new(0),
            },
            last_epoch: AtomicUsize::new(0),
            fail_after: AtomicIsize::new(-1),
            hangup_pending: AtomicBool::new(false),
            swallow_pending: AtomicBool::new(false),
            exit_pending: AtomicBool::new(false),
            options,
        });
        let handler: Arc<dyn Handler> = Arc::new(WorkerHandler { state });
        Ok(WorkerServer {
            server: Server::spawn(addr, handler)?,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// Stops accepting connections (existing ones finish naturally).
    pub fn shutdown(&mut self) {
        self.server.shutdown();
    }
}

struct WorkerHandler {
    state: Arc<WorkerState>,
}

impl Handler for WorkerHandler {
    fn handle(&self, request: &Json) -> Json {
        let Some(cmd) = request.get("cmd").and_then(Json::as_str) else {
            return error_response("request needs a string field 'cmd'");
        };
        match cmd {
            "ping" => Json::obj([
                ("ok", Json::Bool(true)),
                ("pong", Json::Bool(true)),
                ("role", Json::Str("worker".to_string())),
                ("protocol", Json::Num(wire::PROTOCOL_VERSION as f64)),
            ]),
            "dataset_begin" => cmd_dataset_begin(&self.state, request),
            "dataset_graphs" => cmd_dataset_graphs(&self.state, request),
            "dataset_commit" => cmd_dataset_commit(&self.state, request),
            "artifact_begin" => cmd_artifact_begin(&self.state, request),
            "artifact_chunk" => cmd_artifact_chunk(&self.state, request),
            "artifact_commit" => cmd_artifact_commit(&self.state, request),
            "tile" => cmd_tile(&self.state, request),
            "stats" => cmd_stats(&self.state),
            "fail_after" => cmd_fail_after(&self.state, request),
            "chaos" => cmd_chaos(&self.state, request),
            "shutdown" => {
                self.state.hangup_pending.store(true, Ordering::Release);
                if self.state.options.exit_on_shutdown {
                    self.state.exit_pending.store(true, Ordering::Release);
                }
                Json::obj([("ok", Json::Bool(true))])
            }
            other => error_response(&format!("unknown worker command '{other}'")),
        }
    }

    fn swallow_response(&self, _request: &Json) -> bool {
        self.state.swallow_pending.swap(false, Ordering::AcqRel)
    }

    fn hangup_after(&self, _request: &Json) -> bool {
        if self.state.exit_pending.load(Ordering::Acquire) {
            // The ack has been written and flushed; a standalone worker
            // leaves the process now.
            std::process::exit(0);
        }
        self.state.hangup_pending.swap(false, Ordering::AcqRel)
    }
}

fn dataset_field(request: &Json) -> Result<&str, String> {
    request
        .get("dataset")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string field 'dataset'".to_string())
}

fn artifact_field(request: &Json) -> Result<&str, String> {
    request
        .get("artifact")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string field 'artifact'".to_string())
}

fn cmd_dataset_begin(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let keys_json = request
            .get("keys")
            .and_then(Json::as_array)
            .ok_or("dataset_begin needs an array field 'keys'")?;
        let keys = keys_json
            .iter()
            .map(|k| {
                k.as_str()
                    .and_then(wire::key_from_hex)
                    .ok_or("keys must be 32-digit hex graph digests")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let missing = state
            .store
            .lock()
            .expect("graph store poisoned")
            .begin(dataset, keys);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            (
                "missing",
                Json::Arr(missing.into_iter().map(|i| Json::Num(i as f64)).collect()),
            ),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_dataset_graphs(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let indices = request
            .get("indices")
            .and_then(Json::as_array)
            .ok_or("dataset_graphs needs an array field 'indices'")?
            .iter()
            .map(|i| i.as_usize().ok_or("indices must be non-negative integers"))
            .collect::<Result<Vec<_>, _>>()?;
        let graphs = request
            .get("graphs")
            .and_then(Json::as_array)
            .ok_or("dataset_graphs needs an array field 'graphs'")?
            .iter()
            .map(graph_from_json)
            .collect::<Result<Vec<Graph>, String>>()?;
        let stored = state
            .store
            .lock()
            .expect("graph store poisoned")
            .insert_graphs(dataset, &indices, graphs)?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("stored", Json::Num(stored as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_dataset_commit(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let num_graphs = state
            .store
            .lock()
            .expect("graph store poisoned")
            .commit(dataset)?;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("num_graphs", Json::Num(num_graphs as f64)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_artifact_begin(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let artifact = artifact_field(request)?;
        let mut models = state.models.lock().expect("model store poisoned");
        let have = models.get(artifact).is_some();
        if !have {
            // A fresh begin resets any half-shipped text for this id.
            models.pending.insert(artifact.to_string(), String::new());
        }
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("have", Json::Bool(have)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_artifact_chunk(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let artifact = artifact_field(request)?;
        let text = request
            .get("text")
            .and_then(Json::as_str)
            .ok_or("artifact_chunk needs a string field 'text'")?;
        let mut models = state.models.lock().expect("model store poisoned");
        let buffer = models
            .pending
            .get_mut(artifact)
            .ok_or_else(|| format!("artifact '{artifact}' has no open begin"))?;
        buffer.push_str(text);
        Ok(Json::obj([("ok", Json::Bool(true))]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

fn cmd_artifact_commit(state: &WorkerState, request: &Json) -> Json {
    let run = || -> Result<Json, String> {
        let artifact = artifact_field(request)?;
        let mut models = state.models.lock().expect("model store poisoned");
        let text = models
            .pending
            .remove(artifact)
            .ok_or_else(|| format!("artifact '{artifact}' has no open begin"))?;
        let digest = model_artifact_id(&text);
        if digest != artifact {
            return Err(format!(
                "artifact digest mismatch: announced {artifact}, received {digest}"
            ));
        }
        // Parse eagerly: a corrupt model fails the commit, not the first
        // tile, so the coordinator's shipping phase catches it.
        let model = model_from_string(&text).map_err(|e| format!("artifact parse failed: {e}"))?;
        models.insert(
            artifact.to_string(),
            ModelEntry {
                model,
                cache: FeatureCache::new(),
            },
        );
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("parsed", Json::Bool(true)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

/// Whether an armed fault fires on this tile request (serving `false` also
/// consumes one charge of the countdown).
fn fault_fires(state: &WorkerState) -> bool {
    loop {
        let current = state.fail_after.load(Ordering::Acquire);
        if current < 0 {
            return false;
        }
        if current == 0 {
            return true;
        }
        if state
            .fail_after
            .compare_exchange(current, current - 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return false;
        }
    }
}

/// Handles a `tile` request under the coordinator's trace context (when
/// the request is stamped and tracing is enabled): the worker's tile span
/// — and every engine-pool span it opens — joins the caller's trace, and
/// the records drained for that trace ride back on a successful reply as
/// a `spans` array for the coordinator to merge.
fn cmd_tile(state: &WorkerState, request: &Json) -> Json {
    let ctx = wire::trace_stamp(request);
    let mut response = {
        let _adopted = haqjsk_obs::TraceContext::attach(ctx);
        let _span = haqjsk_obs::span("worker_tile");
        cmd_tile_inner(state, request)
    };
    if let Some(ctx) = ctx {
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            let spans = haqjsk_obs::take_trace_spans(ctx.trace_id);
            if !spans.is_empty() {
                if let Json::Obj(map) = &mut response {
                    map.insert(
                        "spans".to_string(),
                        Json::Arr(spans.iter().map(wire::span_to_json).collect()),
                    );
                }
            }
        }
    }
    response
}

fn cmd_tile_inner(state: &WorkerState, request: &Json) -> Json {
    if fault_fires(state) {
        state
            .counters
            .faults_injected
            .fetch_add(1, Ordering::Relaxed);
        state.hangup_pending.store(true, Ordering::Release);
        return error_response("injected worker fault (fail_after)");
    }
    let run = || -> Result<Json, String> {
        let dataset = dataset_field(request)?;
        let job = request
            .get("job")
            .and_then(Json::as_usize)
            .ok_or("tile needs an integer field 'job'")?;
        if let Some(epoch) = request.get("epoch").and_then(Json::as_usize) {
            state.last_epoch.fetch_max(epoch, Ordering::Relaxed);
        }
        let kernel =
            KernelSpec::from_json(request.get("kernel").ok_or("tile needs a field 'kernel'")?)?;
        let pairs =
            wire::pairs_from_json(request.get("pairs").ok_or("tile needs a field 'pairs'")?)?;

        // Seeded chaos, drawn once per tile request in arrival order.
        let chaos = state.chaos.read().expect("chaos slot poisoned").clone();
        if let Some(chaos) = chaos {
            match chaos.draw(dataset, job) {
                Some(ChaosFault::Kill) => {
                    state.hangup_pending.store(true, Ordering::Release);
                    return Err("chaos: injected kill".to_string());
                }
                Some(ChaosFault::Hangup) => {
                    // The response is swallowed, so its content is moot —
                    // the peer sees a mid-stream EOF.
                    state.swallow_pending.store(true, Ordering::Release);
                    return Err("chaos: injected hangup (never written)".to_string());
                }
                Some(ChaosFault::Delay(pause)) => std::thread::sleep(pause),
                Some(ChaosFault::StoreMiss) => {
                    let evicted = state
                        .store
                        .lock()
                        .expect("graph store poisoned")
                        .forget_one(dataset);
                    if let Some(index) = evicted {
                        state
                            .counters
                            .store_miss_replies
                            .fetch_add(1, Ordering::Relaxed);
                        return Ok(wire::store_miss_response(job, &[index], false));
                    }
                    // Nothing evictable (all pinned, or unknown dataset):
                    // the injected miss degenerates to a normal answer.
                }
                None => {}
            }
        }

        // Pin the dataset so the bounded store cannot evict its graphs
        // mid-evaluation; a pin failure is a store miss, not an error.
        let pinned = state
            .store
            .lock()
            .expect("graph store poisoned")
            .pin_dataset(dataset);
        let graphs = match pinned {
            Ok(graphs) => graphs,
            Err(missing) => {
                state
                    .counters
                    .store_miss_replies
                    .fetch_add(1, Ordering::Relaxed);
                let artifact_missing = matches!(&kernel, KernelSpec::Model { artifact }
                    if state.models.lock().expect("model store poisoned").get(artifact).is_none());
                return Ok(wire::store_miss_response(job, &missing, artifact_missing));
            }
        };
        let unpin = || {
            state
                .store
                .lock()
                .expect("graph store poisoned")
                .unpin_dataset(dataset);
        };

        let n = graphs.len();
        if pairs.iter().any(|&(i, j)| i >= n || j >= n) {
            unpin();
            return Err(format!("tile pair index out of range for {n} graphs"));
        }

        let values = match &kernel {
            KernelSpec::Model { artifact } => {
                let entry = state
                    .models
                    .lock()
                    .expect("model store poisoned")
                    .get(artifact);
                let Some(entry) = entry else {
                    unpin();
                    state
                        .counters
                        .store_miss_replies
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(wire::store_miss_response(job, &[], true));
                };
                let result = eval_model_tile_chunked(&entry, &graphs, &pairs);
                match result {
                    Ok(values) => values,
                    Err(e) => {
                        unpin();
                        return Err(format!("model tile evaluation failed: {e}"));
                    }
                }
            }
            _ => eval_tile_chunked(&kernel, &graphs, &pairs),
        };
        unpin();
        state.counters.tiles_served.fetch_add(1, Ordering::Relaxed);
        state
            .counters
            .pairs_evaluated
            .fetch_add(pairs.len(), Ordering::Relaxed);
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("job", Json::Num(job as f64)),
            ("values", wire::values_to_json(&values)),
        ]))
    };
    run().unwrap_or_else(|e| error_response(&e))
}

/// Evaluates a tile's pair list, splitting it into contiguous chunks over
/// the worker's own engine pool when large enough to be worth it.
/// Byte-identical to one whole-tile call (per-pair values are independent
/// and the batched eigensolver is bit-identical per matrix).
fn eval_tile_chunked(kernel: &KernelSpec, graphs: &[Graph], pairs: &[(usize, usize)]) -> Vec<f64> {
    let engine = Engine::global();
    let chunks = (pairs.len() / MIN_CHUNK_PAIRS).clamp(1, engine.threads());
    if chunks <= 1 {
        let mut out = vec![0.0; pairs.len()];
        kernel.eval_tile(graphs, pairs, &mut out);
        return out;
    }
    let per_chunk = pairs.len().div_ceil(chunks);
    let parts = engine.map(chunks, |c| {
        let start = c * per_chunk;
        let end = ((c + 1) * per_chunk).min(pairs.len());
        let mut out = vec![0.0; end - start];
        kernel.eval_tile(graphs, &pairs[start..end], &mut out);
        out
    });
    parts.concat()
}

/// Evaluates a fitted-model tile against the worker's reconstructed
/// model: aligned transforms come from the entry's cache (computed at most
/// once per distinct graph across all tiles), then the per-pair kernel is
/// chunked over the engine pool. Byte-identical to the coordinator's
/// serial `gram_over_aligned` path because persistence round-trips the
/// model exactly and the transform and kernel are deterministic.
fn eval_model_tile_chunked(
    entry: &ModelEntry,
    graphs: &[Graph],
    pairs: &[(usize, usize)],
) -> Result<Vec<f64>, String> {
    let aligned = entry
        .model
        .transform_all_cached(graphs, &entry.cache)
        .map_err(|e| e.to_string())?;
    let engine = Engine::global();
    let chunks = (pairs.len() / MIN_CHUNK_PAIRS).clamp(1, engine.threads());
    if chunks <= 1 {
        return Ok(pairs
            .iter()
            .map(|&(i, j)| entry.model.kernel(&aligned[i], &aligned[j]))
            .collect());
    }
    let per_chunk = pairs.len().div_ceil(chunks);
    let parts = engine.map(chunks, |c| {
        let start = c * per_chunk;
        let end = ((c + 1) * per_chunk).min(pairs.len());
        pairs[start..end]
            .iter()
            .map(|&(i, j)| entry.model.kernel(&aligned[i], &aligned[j]))
            .collect::<Vec<f64>>()
    });
    Ok(parts.concat())
}

fn cmd_fail_after(state: &WorkerState, request: &Json) -> Json {
    let Some(tiles) = request.get("tiles").and_then(Json::as_usize) else {
        return error_response("fail_after needs an integer field 'tiles'");
    };
    state.fail_after.store(tiles as isize, Ordering::Release);
    Json::obj([("ok", Json::Bool(true))])
}

fn cmd_chaos(state: &WorkerState, request: &Json) -> Json {
    match ChaosPlan::from_request(request) {
        Ok(plan) => {
            let armed = plan.is_some();
            *state.chaos.write().expect("chaos slot poisoned") =
                plan.map(|plan| Arc::new(ChaosState::new(plan)));
            Json::obj([("ok", Json::Bool(true)), ("armed", Json::Bool(armed))])
        }
        Err(e) => error_response(&e),
    }
}

fn cmd_stats(state: &WorkerState) -> Json {
    let store_stats = state.store.lock().expect("graph store poisoned").stats();
    let models = state.models.lock().expect("model store poisoned");
    let chaos = state.chaos.read().expect("chaos slot poisoned").clone();
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("role", Json::Str("worker".to_string())),
        ("protocol", Json::Num(wire::PROTOCOL_VERSION as f64)),
        ("graphs_stored", Json::Num(store_stats.num_graphs as f64)),
        ("datasets", Json::Num(store_stats.num_datasets as f64)),
        (
            "store_resident_bytes",
            Json::Num(store_stats.resident_bytes as f64),
        ),
        ("store_evictions", Json::Num(store_stats.evictions as f64)),
        ("store_pin_misses", Json::Num(store_stats.pin_misses as f64)),
        ("models_stored", Json::Num(models.models.len() as f64)),
        (
            "last_epoch",
            Json::Num(state.last_epoch.load(Ordering::Relaxed) as f64),
        ),
        (
            "tiles_served",
            Json::Num(state.counters.tiles_served.load(Ordering::Relaxed) as f64),
        ),
        (
            "pairs_evaluated",
            Json::Num(state.counters.pairs_evaluated.load(Ordering::Relaxed) as f64),
        ),
        (
            "faults_injected",
            Json::Num(state.counters.faults_injected.load(Ordering::Relaxed) as f64),
        ),
        (
            "store_miss_replies",
            Json::Num(state.counters.store_miss_replies.load(Ordering::Relaxed) as f64),
        ),
        (
            "engine_threads",
            Json::Num(Engine::global().threads() as f64),
        ),
    ];
    match chaos {
        Some(chaos) => fields.extend([
            ("chaos_armed", Json::Bool(true)),
            ("chaos_seed", Json::Num(chaos.plan().seed as f64)),
            (
                "chaos_kills",
                Json::Num(chaos.kills.load(Ordering::Relaxed) as f64),
            ),
            (
                "chaos_hangups",
                Json::Num(chaos.hangups.load(Ordering::Relaxed) as f64),
            ),
            (
                "chaos_delays",
                Json::Num(chaos.delays.load(Ordering::Relaxed) as f64),
            ),
            (
                "chaos_misses",
                Json::Num(chaos.misses.load(Ordering::Relaxed) as f64),
            ),
        ]),
        None => fields.push(("chaos_armed", Json::Bool(false))),
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{dataset_id, dataset_keys};
    use haqjsk_core::{model_to_string, HaqjskConfig, HaqjskVariant};
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn exchange(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &Json) -> Json {
        writer.write_all(format!("{request}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim()).unwrap()
    }

    fn ship_dataset(
        writer: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        graphs: &[Graph],
    ) -> String {
        let keys = dataset_keys(graphs);
        let id = dataset_id(&keys);
        exchange(writer, reader, &wire::dataset_begin_request(&id, &keys));
        let refs: Vec<&Graph> = graphs.iter().collect();
        let indices: Vec<usize> = (0..graphs.len()).collect();
        exchange(
            writer,
            reader,
            &wire::dataset_graphs_request(&id, &indices, &refs),
        );
        exchange(writer, reader, &wire::dataset_commit_request(&id));
        id
    }

    #[test]
    fn worker_serves_dataset_and_tiles_over_loopback() {
        let server = WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let pong = exchange(&mut writer, &mut reader, &wire::ping_request());
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6)];
        let id = ship_dataset(&mut writer, &mut reader, &graphs);

        // A tile request answers the exact values of the local evaluator.
        let kernel = KernelSpec::QjskUnaligned { mu: 1.0 };
        let pairs = vec![(0, 0), (0, 1), (0, 2), (1, 2)];
        let response = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 3, &kernel.to_json(), &pairs, 7, None),
        );
        let tile = wire::parse_tile_response(&response).unwrap();
        assert_eq!(tile.job, 3);
        let mut expected = vec![0.0; pairs.len()];
        kernel.eval_tile(&graphs, &pairs, &mut expected);
        assert_eq!(tile.values.len(), expected.len());
        for (a, b) in tile.values.iter().zip(&expected) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Tiles against an uncommitted dataset answer a store miss (every
        // index missing) so the coordinator re-ships instead of failing.
        let bad = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request("ffff", 0, &kernel.to_json(), &[(0, 1)], 7, None),
        );
        match wire::parse_tile_reply(&bad).unwrap() {
            wire::TileReply::StoreMiss {
                job,
                artifact_missing,
                ..
            } => {
                assert_eq!(job, 0);
                assert!(!artifact_missing);
            }
            other => panic!("expected a store miss, got {other:?}"),
        }

        let stats = exchange(
            &mut writer,
            &mut reader,
            &Json::obj([("cmd", Json::Str("stats".to_string()))]),
        );
        assert_eq!(stats.get("tiles_served").and_then(Json::as_usize), Some(1));
        assert_eq!(stats.get("graphs_stored").and_then(Json::as_usize), Some(3));
        assert_eq!(stats.get("last_epoch").and_then(Json::as_usize), Some(7));
        assert_eq!(
            stats.get("store_miss_replies").and_then(Json::as_usize),
            Some(1)
        );
        assert_eq!(
            stats.get("chaos_armed").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn model_artifacts_ship_parse_and_evaluate_tiles() {
        let server = WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let graphs = vec![path_graph(5), cycle_graph(6), star_graph(5), path_graph(7)];
        let id = ship_dataset(&mut writer, &mut reader, &graphs);

        let config = HaqjskConfig {
            max_layers: Some(2),
            ..HaqjskConfig::default()
        };
        let model = HaqjskModel::fit(&graphs, config, HaqjskVariant::AlignedAdjacency).unwrap();
        let text = model_to_string(&model);
        let digest = model_artifact_id(&text);

        // Before the artifact arrives, a model tile is a store miss with
        // `artifact_missing` set.
        let kernel = KernelSpec::Model {
            artifact: digest.clone(),
        };
        let miss = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 0, &kernel.to_json(), &[(0, 1)], 1, None),
        );
        match wire::parse_tile_reply(&miss).unwrap() {
            wire::TileReply::StoreMiss {
                artifact_missing, ..
            } => assert!(artifact_missing),
            other => panic!("expected an artifact miss, got {other:?}"),
        }

        // Ship the artifact in two chunks and commit.
        let begin = exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_begin_request(&digest),
        );
        assert_eq!(begin.get("have").and_then(Json::as_bool), Some(false));
        let mid = text.len() / 2;
        let mid = (mid..text.len())
            .find(|&i| text.is_char_boundary(i))
            .unwrap();
        exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_chunk_request(&digest, &text[..mid]),
        );
        exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_chunk_request(&digest, &text[mid..]),
        );
        let commit = exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_commit_request(&digest),
        );
        assert_eq!(commit.get("parsed").and_then(Json::as_bool), Some(true));

        // A second begin reports the artifact as already held.
        let again = exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_begin_request(&digest),
        );
        assert_eq!(again.get("have").and_then(Json::as_bool), Some(true));

        // Model tiles now answer the exact serial kernel values.
        let pairs = vec![(0, 0), (0, 1), (1, 2), (2, 3)];
        let response = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 9, &kernel.to_json(), &pairs, 1, None),
        );
        let tile = wire::parse_tile_response(&response).unwrap();
        assert_eq!(tile.job, 9);
        let aligned = model.transform_all(&graphs).unwrap();
        for (&(i, j), value) in pairs.iter().zip(&tile.values) {
            let expected = model.kernel(&aligned[i], &aligned[j]);
            assert_eq!(value.to_bits(), expected.to_bits());
        }

        // A commit whose text does not hash to the announced id fails.
        let fake = "not a model";
        exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_begin_request("bogus"),
        );
        exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_chunk_request("bogus", fake),
        );
        let bad = exchange(
            &mut writer,
            &mut reader,
            &wire::artifact_commit_request("bogus"),
        );
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn chaos_store_miss_is_transient_and_counted() {
        let server = WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let graphs = vec![path_graph(4), cycle_graph(5)];
        let id = ship_dataset(&mut writer, &mut reader, &graphs);

        // Arm a plan that misses on every tile (seeded, miss:1000).
        let plan = ChaosPlan::parse("seed:7,miss:1000").unwrap();
        let armed = exchange(&mut writer, &mut reader, &wire::chaos_request(Some(&plan)));
        assert_eq!(armed.get("armed").and_then(Json::as_bool), Some(true));

        let kernel = KernelSpec::QjskUnaligned { mu: 1.0 }.to_json();
        let first = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 4, &kernel, &[(0, 1)], 1, None),
        );
        let missing = match wire::parse_tile_reply(&first).unwrap() {
            wire::TileReply::StoreMiss { job, missing, .. } => {
                assert_eq!(job, 4);
                assert_eq!(missing.len(), 1);
                missing
            }
            other => panic!("expected a chaos store miss, got {other:?}"),
        };

        // Repair: re-ship exactly the evicted graph, and the *same* job
        // succeeds on retry — the last-miss guard makes the injected miss
        // transient even at miss:1000.
        let keys = dataset_keys(&graphs);
        exchange(
            &mut writer,
            &mut reader,
            &wire::dataset_begin_request(&id, &keys),
        );
        let refs: Vec<&Graph> = missing.iter().map(|&i| &graphs[i]).collect();
        exchange(
            &mut writer,
            &mut reader,
            &wire::dataset_graphs_request(&id, &missing, &refs),
        );
        exchange(&mut writer, &mut reader, &wire::dataset_commit_request(&id));
        let retry = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 4, &kernel, &[(0, 1)], 1, None),
        );
        let tile = wire::parse_tile_response(&retry).unwrap();
        assert_eq!(tile.job, 4);

        // Disarm; stats report the injected miss.
        exchange(&mut writer, &mut reader, &wire::chaos_request(None));
        let stats = exchange(
            &mut writer,
            &mut reader,
            &Json::obj([("cmd", Json::Str("stats".to_string()))]),
        );
        assert_eq!(
            stats.get("chaos_armed").and_then(Json::as_bool),
            Some(false)
        );
        assert!(stats.get("store_miss_replies").and_then(Json::as_usize) >= Some(1));
    }

    #[test]
    fn fail_after_injects_a_deterministic_fault() {
        let server = WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let graphs = vec![path_graph(4), cycle_graph(5)];
        let id = ship_dataset(&mut writer, &mut reader, &graphs);

        // Arm: one more tile succeeds, then the connection dies.
        let arm = exchange(
            &mut writer,
            &mut reader,
            &Json::obj([
                ("cmd", Json::Str("fail_after".to_string())),
                ("tiles", Json::Num(1.0)),
            ]),
        );
        assert_eq!(arm.get("ok").and_then(Json::as_bool), Some(true));

        let kernel = KernelSpec::QjskUnaligned { mu: 1.0 }.to_json();
        let ok = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 0, &kernel, &[(0, 1)], 1, None),
        );
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let injected = exchange(
            &mut writer,
            &mut reader,
            &wire::tile_request(&id, 1, &kernel, &[(0, 1)], 1, None),
        );
        assert_eq!(injected.get("ok").and_then(Json::as_bool), Some(false));
        // The worker hung up after the injected failure: the next exchange
        // sees either a clean EOF or a reset (we may have written into the
        // already-closed socket), never a response.
        let _ = writer.write_all(format!("{}\n", wire::ping_request()).as_bytes());
        let _ = writer.flush();
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) => assert_eq!(n, 0, "connection closed, got {line:?}"),
            Err(_) => {} // reset by peer — also a hangup
        }
    }
}
