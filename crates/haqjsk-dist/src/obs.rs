//! Distributed-layer observability: per-worker RPC round-trip histograms
//! plus a registry collector re-exporting [`DistStats`](crate::DistStats)
//! as `haqjsk_dist_*` metrics.
//!
//! Two kinds of exchange feed `haqjsk_dist_rpc_seconds{worker}`:
//!
//! * synchronous control/dataset RPCs (`Conn::call_counted` — dataset
//!   begin/chunk/commit), timed around one send + receive, and
//! * pipelined tile exchanges, timed from dispatch (the scheduler's
//!   in-flight stamp) to the winning commit.
//!
//! The aggregate counters and gauges are registered once by
//! [`register_dist_metrics`] and refreshed at snapshot time from the
//! process-wide coordinator; with no coordinator installed they read zero,
//! so the `haqjsk_dist_*` family is present in every scrape. Per-worker
//! series appear lazily as workers are configured (metric registration is
//! idempotent, and collectors run outside the family lock).

use haqjsk_obs::{registry, Histogram};
use std::sync::Once;

/// The per-worker RPC round-trip histogram
/// (`haqjsk_dist_rpc_seconds{worker="host:port"}`).
pub fn rpc_histogram(worker: &str) -> Histogram {
    registry().histogram(
        "haqjsk_dist_rpc_seconds",
        "Coordinator-observed round-trip time of one worker exchange \
         (dataset RPCs and tile dispatch-to-commit), by worker address.",
        &[("worker", worker)],
    )
}

/// Registers the `haqjsk_dist_*` metric family: aggregate coordinator
/// counters, the dedup-rate gauge, and per-worker counters/liveness,
/// all refreshed from [`crate::current_coordinator`] at snapshot time.
/// Idempotent; safe to call with no coordinator installed.
pub fn register_dist_metrics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let registry = registry();
        let grams = registry.counter(
            "haqjsk_dist_grams_total",
            "Gram computations routed through the distributed coordinator.",
            &[],
        );
        let fallback_grams = registry.counter(
            "haqjsk_dist_local_fallback_grams_total",
            "Gram computations the coordinator executed entirely locally.",
            &[],
        );
        let fallback_tiles = registry.counter(
            "haqjsk_dist_local_fallback_tiles_total",
            "Tiles evaluated by the coordinator's local fallback after worker failures.",
            &[],
        );
        let keys_total = registry.counter(
            "haqjsk_dist_dataset_keys_total",
            "Graph keys announced across all dataset shipping rounds.",
            &[],
        );
        let keys_shipped = registry.counter(
            "haqjsk_dist_dataset_keys_shipped_total",
            "Graph keys actually shipped (announced keys minus dedup hits).",
            &[],
        );
        let tiles_scheduled = registry.counter(
            "haqjsk_dist_tiles_scheduled_total",
            "Tiles handed to the distributed scheduler across all Grams.",
            &[],
        );
        let tiles_committed = registry.counter(
            "haqjsk_dist_tiles_committed_total",
            "Tiles committed from worker results across all Grams.",
            &[],
        );
        let artifacts_shipped = registry.counter(
            "haqjsk_dist_artifacts_shipped_total",
            "Model artifacts that actually travelled to a worker (dedup misses).",
            &[],
        );
        let workers_gauge = registry.gauge(
            "haqjsk_dist_workers",
            "Workers configured on the current coordinator.",
            &[],
        );
        let epoch_gauge = registry.gauge(
            "haqjsk_dist_membership_epoch",
            "Membership epoch of the current coordinator (bumped on every \
             join, death, revival and drain).",
            &[],
        );
        let dedup_gauge = registry.gauge(
            "haqjsk_dist_dedup_hit_rate",
            "Fraction of announced dataset keys already resident on workers.",
            &[],
        );
        registry.register_collector(move || {
            let stats = crate::current_coordinator().map(|coordinator| coordinator.stats());
            let (workers, dedup) = match &stats {
                Some(stats) => (stats.workers.len(), stats.dedup_hit_rate()),
                None => (0, 0.0),
            };
            grams.store(stats.as_ref().map_or(0, |s| s.grams) as u64);
            fallback_grams.store(stats.as_ref().map_or(0, |s| s.local_fallback_grams) as u64);
            fallback_tiles.store(stats.as_ref().map_or(0, |s| s.local_fallback_tiles) as u64);
            keys_total.store(stats.as_ref().map_or(0, |s| s.dataset_keys_total) as u64);
            keys_shipped.store(stats.as_ref().map_or(0, |s| s.dataset_keys_shipped) as u64);
            tiles_scheduled.store(stats.as_ref().map_or(0, |s| s.tiles_scheduled) as u64);
            tiles_committed.store(stats.as_ref().map_or(0, |s| s.tiles_committed) as u64);
            artifacts_shipped.store(stats.as_ref().map_or(0, |s| s.artifacts_shipped) as u64);
            workers_gauge.set(workers as f64);
            epoch_gauge.set(stats.as_ref().map_or(0, |s| s.epoch) as f64);
            dedup_gauge.set(dedup);
            let Some(stats) = stats else { return };
            let registry = haqjsk_obs::registry();
            for worker in &stats.workers {
                let labels = [("worker", worker.addr.as_str())];
                let per_worker_counters: [(&str, &str, usize); 8] = [
                    (
                        "haqjsk_dist_tiles_dispatched_total",
                        "Tiles dispatched to the worker, by worker address.",
                        worker.tiles_dispatched,
                    ),
                    (
                        "haqjsk_dist_tiles_completed_total",
                        "Tile results accepted from the worker, by worker address.",
                        worker.tiles_completed,
                    ),
                    (
                        "haqjsk_dist_tiles_redispatched_total",
                        "Straggler tiles the worker re-claimed from peers, by worker address.",
                        worker.tiles_redispatched,
                    ),
                    (
                        "haqjsk_dist_bytes_shipped_total",
                        "Request bytes shipped to the worker, by worker address.",
                        worker.bytes_shipped,
                    ),
                    (
                        "haqjsk_dist_datasets_shipped_total",
                        "Dataset shipping rounds completed to the worker, by worker address.",
                        worker.datasets_shipped,
                    ),
                    (
                        "haqjsk_dist_worker_deaths_total",
                        "Times the worker was declared dead, by worker address.",
                        worker.deaths,
                    ),
                    (
                        "haqjsk_dist_reconnects_total",
                        "Times the worker revived out of probation, by worker address.",
                        worker.reconnects,
                    ),
                    (
                        "haqjsk_dist_store_misses_total",
                        "store_miss tile replies received from the worker, by worker address.",
                        worker.store_misses,
                    ),
                ];
                for (name, help, value) in per_worker_counters {
                    registry.counter(name, help, &labels).store(value as u64);
                }
                registry
                    .gauge(
                        "haqjsk_dist_worker_alive",
                        "Whether the worker link is currently believed live (1/0), by worker address.",
                        &labels,
                    )
                    .set(if worker.alive { 1.0 } else { 0.0 });
                // One gauge per (worker, state): exactly one of the three
                // reads 1 at any snapshot.
                for state in [
                    crate::fault::LinkState::Probation,
                    crate::fault::LinkState::Alive,
                    crate::fault::LinkState::Draining,
                ] {
                    registry
                        .gauge(
                            "haqjsk_dist_worker_state",
                            "Membership state of the worker link (1 on the \
                             active state, 0 elsewhere), by worker address and state.",
                            &[("worker", worker.addr.as_str()), ("state", state.label())],
                        )
                        .set(if worker.state == state { 1.0 } else { 0.0 });
                }
            }
        });
    });
}
