//! The coordinator ↔ worker wire protocol.
//!
//! One JSON object per line over a plain `TcpStream` — exactly the framing
//! of the engine's serving substrate ([`haqjsk_engine::serve`]), reusing
//! its dependency-free [`Json`] value type and graph wire format. Every
//! request receives exactly one response line; `{"ok":false,"error":...}`
//! reports failures without killing the connection (except where a fault
//! hook deliberately hangs up).
//!
//! Command table (coordinator → worker):
//!
//! | command           | fields                                          | response |
//! |-------------------|-------------------------------------------------|----------|
//! | `ping`            | —                                               | `{"ok":true,"pong":true,"role":"worker","protocol":2}` |
//! | `dataset_begin`   | `dataset` (hex id), `keys` (hex graph keys)     | `missing`: indices of keys the worker does not hold |
//! | `dataset_graphs`  | `dataset`, `indices`, `graphs` (wire graphs)    | `stored` count |
//! | `dataset_commit`  | `dataset`                                       | `num_graphs` |
//! | `artifact_begin`  | `artifact` (hex id)                             | `have`: whether the artifact is already loaded |
//! | `artifact_chunk`  | `artifact`, `text`                              | ack (chunks accumulate in order) |
//! | `artifact_commit` | `artifact`                                      | ack after digest verification + model parse |
//! | `tile`            | `dataset`, `job`, `kernel`, `pairs`, `epoch`, optional `trace`/`parent` (hex trace stamp) | `job`, `values` (+ optional `spans`: worker span records for the stamped trace) — or `store_miss` + `missing` when the bounded store evicted dataset graphs (coordinator re-ships and retries) |
//! | `stats`           | —                                               | worker-side counters (store, chaos, epoch) |
//! | `fail_after`      | `tiles`                                         | chaos knob: serve N more tiles, then fail + hang up |
//! | `chaos`           | `seed`, `kill`, `hangup`, `delay`, `delay_ms`, `miss` (permille rates) or `off` | arms/disarms the seeded chaos plan |
//! | `shutdown`        | —                                               | ack, then hang up (process workers exit) |
//!
//! `epoch` is the coordinator's membership epoch at dispatch time; workers
//! echo it and report the last value seen, making split-horizon membership
//! observable from either end.
//!
//! ## Byte identity across the wire
//!
//! Kernel values are `f64`s serialised through the [`Json`] writer, which
//! prints floats with Rust's shortest-round-trip formatting — parsing the
//! printed text recovers the exact bits. Graphs ship as exact integers.
//! Together with the per-matrix bit-identity of the batched eigensolver,
//! this is what makes a distributed Gram byte-identical to the serial one
//! regardless of which worker computed which tile.

use haqjsk_core::HaqjskModel;
use haqjsk_engine::{GraphKey, Json, RemoteGram};
use haqjsk_graph::Graph;
use haqjsk_kernels::{JensenTsallisKernel, QjskAligned, QjskUnaligned};
use haqjsk_obs::{SpanRecord, TraceContext};
use std::borrow::Cow;

/// Version tag answered by `ping`; bumped on incompatible protocol changes.
/// Version 2 added membership epochs, model artifacts, `store_miss` tile
/// replies and the seeded `chaos` command.
pub const PROTOCOL_VERSION: usize = 2;

/// Characters of serialised-model text per `artifact_chunk` line: large
/// enough to amortise round trips, small enough to keep lines bounded.
pub const ARTIFACT_CHUNK: usize = 1 << 16;

/// A kernel the distributed backend knows how to reconstruct on a worker:
/// the serialisable subset of the workspace's kernels, keyed by the stable
/// ids the kernels publish (`REMOTE_KERNEL_ID`).
#[derive(Debug, Clone, PartialEq)]
pub enum KernelSpec {
    /// [`QjskUnaligned`] with decay factor `mu`.
    QjskUnaligned {
        /// Decay factor.
        mu: f64,
    },
    /// [`QjskAligned`] with decay factor `mu`.
    QjskAligned {
        /// Decay factor.
        mu: f64,
    },
    /// [`JensenTsallisKernel`] with Tsallis order `q` and `wl_iterations`
    /// WL refinement rounds.
    Jtqk {
        /// Tsallis order.
        q: f64,
        /// WL refinement rounds.
        wl_iterations: usize,
    },
    /// A fitted [`haqjsk_core::HaqjskModel`], reconstructed on the worker
    /// from a content-addressed persisted-model artifact shipped through
    /// the `artifact_*` commands. Unlike the closed-form kernels, the spec
    /// carries no parameters — everything lives in the artifact.
    Model {
        /// Digest of the persisted model text
        /// ([`haqjsk_core::model_artifact_id`]).
        artifact: String,
    },
}

impl KernelSpec {
    /// Reconstructs a spec from the engine-level [`RemoteGram`] id/params
    /// form; `None` for kernels the distributed backend cannot serialise
    /// (the coordinator then executes locally).
    pub fn from_remote(spec: &RemoteGram<'_>) -> Option<KernelSpec> {
        let param = |name: &str| {
            spec.params
                .iter()
                .find(|(k, _)| *k == name)
                .map(|&(_, v)| v)
        };
        match spec.kernel_id {
            id if id == QjskUnaligned::REMOTE_KERNEL_ID => {
                Some(KernelSpec::QjskUnaligned { mu: param("mu")? })
            }
            id if id == QjskAligned::REMOTE_KERNEL_ID => {
                Some(KernelSpec::QjskAligned { mu: param("mu")? })
            }
            id if id == JensenTsallisKernel::REMOTE_KERNEL_ID => Some(KernelSpec::Jtqk {
                q: param("q")?,
                wl_iterations: param("wl_iterations")? as usize,
            }),
            id if id == HaqjskModel::REMOTE_KERNEL_ID => {
                spec.artifact.as_ref().map(|artifact| KernelSpec::Model {
                    artifact: artifact.id.clone(),
                })
            }
            _ => None,
        }
    }

    /// The stable kernel id.
    pub fn id(&self) -> &'static str {
        match self {
            KernelSpec::QjskUnaligned { .. } => QjskUnaligned::REMOTE_KERNEL_ID,
            KernelSpec::QjskAligned { .. } => QjskAligned::REMOTE_KERNEL_ID,
            KernelSpec::Jtqk { .. } => JensenTsallisKernel::REMOTE_KERNEL_ID,
            KernelSpec::Model { .. } => HaqjskModel::REMOTE_KERNEL_ID,
        }
    }

    /// The wire form: `{"id":...,"params":{...}}` (`{"id":...,
    /// "artifact":...}` for fitted-model specs).
    pub fn to_json(&self) -> Json {
        let params = match self {
            KernelSpec::QjskUnaligned { mu } | KernelSpec::QjskAligned { mu } => {
                Json::obj([("mu", Json::Num(*mu))])
            }
            KernelSpec::Jtqk { q, wl_iterations } => Json::obj([
                ("q", Json::Num(*q)),
                ("wl_iterations", Json::Num(*wl_iterations as f64)),
            ]),
            KernelSpec::Model { artifact } => {
                return Json::obj([
                    ("id", Json::Str(self.id().to_string())),
                    ("artifact", Json::Str(artifact.clone())),
                ]);
            }
        };
        Json::obj([("id", Json::Str(self.id().to_string())), ("params", params)])
    }

    /// Restores a spec from its wire form.
    pub fn from_json(value: &Json) -> Result<KernelSpec, String> {
        let id = value
            .get("id")
            .and_then(Json::as_str)
            .ok_or("kernel spec needs a string field 'id'")?;
        let param = |name: &str| {
            value
                .get("params")
                .and_then(|p| p.get(name))
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("kernel '{id}' needs a numeric param '{name}'"))
        };
        match id {
            _ if id == QjskUnaligned::REMOTE_KERNEL_ID => {
                Ok(KernelSpec::QjskUnaligned { mu: param("mu")? })
            }
            _ if id == QjskAligned::REMOTE_KERNEL_ID => {
                Ok(KernelSpec::QjskAligned { mu: param("mu")? })
            }
            _ if id == JensenTsallisKernel::REMOTE_KERNEL_ID => Ok(KernelSpec::Jtqk {
                q: param("q")?,
                wl_iterations: param("wl_iterations")? as usize,
            }),
            _ if id == HaqjskModel::REMOTE_KERNEL_ID => Ok(KernelSpec::Model {
                artifact: value
                    .get("artifact")
                    .and_then(Json::as_str)
                    .ok_or("model kernel spec needs a string field 'artifact'")?
                    .to_string(),
            }),
            other => Err(format!("unknown kernel id '{other}'")),
        }
    }

    /// Evaluates one tile of Gram entries over `graphs` through the
    /// kernel's public tile evaluator — byte-identical to the in-process
    /// Gram paths for the same pairs. Fitted-model specs cannot be
    /// evaluated from graphs alone (the worker resolves them through its
    /// artifact store); calling this on one is a programming error.
    pub fn eval_tile(&self, graphs: &[Graph], pairs: &[(usize, usize)], out: &mut [f64]) {
        match *self {
            KernelSpec::QjskUnaligned { mu } => {
                QjskUnaligned::new(mu).eval_tile(graphs, pairs, out)
            }
            KernelSpec::QjskAligned { mu } => QjskAligned::new(mu).eval_tile(graphs, pairs, out),
            KernelSpec::Jtqk { q, wl_iterations } => {
                JensenTsallisKernel::new(q, wl_iterations).eval_tile(graphs, pairs, out)
            }
            KernelSpec::Model { .. } => {
                panic!("model tiles are evaluated through the worker's artifact store")
            }
        }
    }
}

/// Hex form of a structural graph key (32 lower-case hex digits).
pub fn key_hex(key: GraphKey) -> String {
    format!("{:032x}", key.0)
}

/// Parses a [`key_hex`] digest.
pub fn key_from_hex(raw: &str) -> Option<GraphKey> {
    (raw.len() == 32)
        .then(|| u128::from_str_radix(raw, 16).ok())
        .flatten()
        .map(GraphKey)
}

/// `[[i,j],...]` wire form of an index-pair tile.
pub fn pairs_to_json(pairs: &[(usize, usize)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(i, j)| Json::Arr(vec![Json::Num(i as f64), Json::Num(j as f64)]))
            .collect(),
    )
}

/// Parses a [`pairs_to_json`] tile.
pub fn pairs_from_json(value: &Json) -> Result<Vec<(usize, usize)>, String> {
    let arr = value.as_array().ok_or("'pairs' must be an array")?;
    arr.iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("each pair must be a two-element array")?;
            let i = pair[0].as_usize().ok_or("pair indices must be integers")?;
            let j = pair[1].as_usize().ok_or("pair indices must be integers")?;
            Ok((i, j))
        })
        .collect()
}

/// Wire form of a tile's kernel values. Values must be finite — the JSON
/// grammar has no NaN/inf — which every kernel in the workspace guarantees.
pub fn values_to_json(values: &[f64]) -> Json {
    debug_assert!(values.iter().all(|v| v.is_finite()));
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

/// Parses a [`values_to_json`] array (bit-exact round trip).
pub fn values_from_json(value: &Json) -> Result<Vec<f64>, String> {
    let arr = value.as_array().ok_or("'values' must be an array")?;
    arr.iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| "values must be numbers".to_string())
        })
        .collect()
}

/// Builds a `ping` request.
pub fn ping_request() -> Json {
    Json::obj([("cmd", Json::Str("ping".to_string()))])
}

/// Builds a `dataset_begin` request announcing the dataset's ordered keys.
pub fn dataset_begin_request(dataset: &str, keys: &[GraphKey]) -> Json {
    Json::obj([
        ("cmd", Json::Str("dataset_begin".to_string())),
        ("dataset", Json::Str(dataset.to_string())),
        (
            "keys",
            Json::Arr(keys.iter().map(|&k| Json::Str(key_hex(k))).collect()),
        ),
    ])
}

/// Builds a `dataset_graphs` request shipping the graphs at `indices`.
pub fn dataset_graphs_request(dataset: &str, indices: &[usize], graphs: &[&Graph]) -> Json {
    Json::obj([
        ("cmd", Json::Str("dataset_graphs".to_string())),
        ("dataset", Json::Str(dataset.to_string())),
        (
            "indices",
            Json::Arr(indices.iter().map(|&i| Json::Num(i as f64)).collect()),
        ),
        (
            "graphs",
            Json::Arr(
                graphs
                    .iter()
                    .map(|g| haqjsk_engine::graph_to_json(g))
                    .collect(),
            ),
        ),
    ])
}

/// Builds a `dataset_commit` request.
pub fn dataset_commit_request(dataset: &str) -> Json {
    Json::obj([
        ("cmd", Json::Str("dataset_commit".to_string())),
        ("dataset", Json::Str(dataset.to_string())),
    ])
}

/// Builds a `tile` work-unit request stamped with the coordinator's
/// current membership epoch and, when tracing, the caller's trace context
/// (`trace`/`parent` hex fields) — the worker adopts it, runs its tile
/// span as a child, and returns its span records with the reply so one
/// trace follows the request across processes.
pub fn tile_request(
    dataset: &str,
    job: usize,
    kernel: &Json,
    pairs: &[(usize, usize)],
    epoch: usize,
    ctx: Option<&TraceContext>,
) -> Json {
    let mut fields = vec![
        ("cmd", Json::Str("tile".to_string())),
        ("dataset", Json::Str(dataset.to_string())),
        ("job", Json::Num(job as f64)),
        ("kernel", kernel.clone()),
        ("pairs", pairs_to_json(pairs)),
        ("epoch", Json::Num(epoch as f64)),
    ];
    if let Some(ctx) = ctx {
        fields.push(("trace", Json::Str(ctx.trace_hex())));
        fields.push(("parent", Json::Str(ctx.span_hex())));
    }
    Json::obj(fields)
}

/// Parses the optional trace stamp of a `tile` request into an adoptable
/// context: the sender's span becomes the parent of whatever the receiver
/// opens under the attachment. `None` when the request is unstamped or the
/// stamp is malformed (tracing is best-effort; a bad stamp never fails the
/// tile).
pub fn trace_stamp(request: &Json) -> Option<TraceContext> {
    let trace_id = request
        .get("trace")
        .and_then(Json::as_str)
        .and_then(haqjsk_obs::trace_id_from_hex)?;
    let parent = request
        .get("parent")
        .and_then(Json::as_str)
        .and_then(haqjsk_obs::span_id_from_hex)?;
    Some(TraceContext {
        trace_id,
        span_id: parent,
        parent_id: 0,
    })
}

/// Wire form of one span record:
/// `{"name":...,"trace":hex,"span":hex,"parent":hex?,"start_ns":N,`
/// `"dur_ns":N,"thread":T}`. `start_ns`/`thread` stay origin-local — only
/// names, ids and durations are meaningful across processes.
pub fn span_to_json(record: &SpanRecord) -> Json {
    let mut fields = vec![
        ("name", Json::Str(record.name.to_string())),
        (
            "trace",
            Json::Str(haqjsk_obs::trace_id_hex(record.trace_id)),
        ),
        ("span", Json::Str(haqjsk_obs::span_id_hex(record.span_id))),
    ];
    if record.parent_id != 0 {
        fields.push((
            "parent",
            Json::Str(haqjsk_obs::span_id_hex(record.parent_id)),
        ));
    }
    fields.extend([
        ("start_ns", Json::Num(record.start_ns as f64)),
        ("dur_ns", Json::Num(record.duration_ns as f64)),
        ("thread", Json::Num(record.thread as f64)),
    ]);
    Json::obj(fields)
}

/// Parses a [`span_to_json`] record; `None` on any malformed field (a
/// droppable span, never an error).
pub fn span_from_json(value: &Json) -> Option<SpanRecord> {
    Some(SpanRecord {
        name: Cow::Owned(value.get("name")?.as_str()?.to_string()),
        trace_id: haqjsk_obs::trace_id_from_hex(value.get("trace")?.as_str()?)?,
        span_id: haqjsk_obs::span_id_from_hex(value.get("span")?.as_str()?)?,
        parent_id: match value.get("parent") {
            Some(parent) => haqjsk_obs::span_id_from_hex(parent.as_str()?)?,
            None => 0,
        },
        start_ns: value.get("start_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        duration_ns: value.get("dur_ns").and_then(Json::as_f64).unwrap_or(0.0) as u64,
        thread: value.get("thread").and_then(Json::as_f64).unwrap_or(0.0) as u32,
        src: None,
    })
}

/// Builds an `artifact_begin` request announcing a content-addressed
/// artifact (a persisted model); the worker answers `have`.
pub fn artifact_begin_request(artifact: &str) -> Json {
    Json::obj([
        ("cmd", Json::Str("artifact_begin".to_string())),
        ("artifact", Json::Str(artifact.to_string())),
    ])
}

/// Builds an `artifact_chunk` request appending one slice of the
/// artifact's text (chunks arrive in order on one connection).
pub fn artifact_chunk_request(artifact: &str, text: &str) -> Json {
    Json::obj([
        ("cmd", Json::Str("artifact_chunk".to_string())),
        ("artifact", Json::Str(artifact.to_string())),
        ("text", Json::Str(text.to_string())),
    ])
}

/// Builds an `artifact_commit` request; the worker verifies the digest
/// and parses the model before acking.
pub fn artifact_commit_request(artifact: &str) -> Json {
    Json::obj([
        ("cmd", Json::Str("artifact_commit".to_string())),
        ("artifact", Json::Str(artifact.to_string())),
    ])
}

/// Builds a `chaos` request arming a seeded fault plan on the worker
/// (see [`crate::chaos::ChaosPlan`]); `None` disarms.
pub fn chaos_request(plan: Option<&crate::chaos::ChaosPlan>) -> Json {
    match plan {
        Some(plan) => {
            let mut fields = vec![("cmd", Json::Str("chaos".to_string()))];
            fields.extend(plan.to_fields());
            Json::obj(fields)
        }
        None => Json::obj([
            ("cmd", Json::Str("chaos".to_string())),
            ("off", Json::Bool(true)),
        ]),
    }
}

/// A parsed `tile` response.
#[derive(Debug, Clone, PartialEq)]
pub struct TileResponse {
    /// The job id echoed back by the worker.
    pub job: usize,
    /// One kernel value per requested pair, in request order.
    pub values: Vec<f64>,
}

/// A worker's answer to a `tile` request: either the computed values, or a
/// recoverable `store_miss` naming what the coordinator must re-ship
/// before retrying (evicted dataset graphs and/or the model artifact).
#[derive(Debug, Clone, PartialEq)]
pub enum TileReply {
    /// The tile was computed.
    Values(TileResponse),
    /// The worker's bounded store no longer holds everything the tile
    /// needs; the tile was **not** computed and should be re-dispatched
    /// after a targeted re-ship.
    StoreMiss {
        /// The job id echoed back by the worker.
        job: usize,
        /// Dataset indices of evicted graphs to re-ship (may be empty).
        missing: Vec<usize>,
        /// Whether the model artifact itself must be re-shipped.
        artifact_missing: bool,
    },
}

/// Builds the worker-side `store_miss` tile reply.
pub fn store_miss_response(job: usize, missing: &[usize], artifact_missing: bool) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("job", Json::Num(job as f64)),
        ("store_miss", Json::Bool(true)),
        (
            "missing",
            Json::Arr(missing.iter().map(|&i| Json::Num(i as f64)).collect()),
        ),
        ("artifact_missing", Json::Bool(artifact_missing)),
    ])
}

/// Parses a worker's `tile` response, rejecting error responses and
/// distinguishing recoverable `store_miss` replies from computed values.
pub fn parse_tile_reply(value: &Json) -> Result<TileReply, String> {
    let value = check_ok(value)?;
    let job = value
        .get("job")
        .and_then(Json::as_usize)
        .ok_or("tile response needs an integer field 'job'")?;
    if value.get("store_miss").and_then(Json::as_bool) == Some(true) {
        let missing = value
            .get("missing")
            .and_then(Json::as_array)
            .ok_or("store_miss response needs an array field 'missing'")?
            .iter()
            .map(|i| i.as_usize().ok_or("missing indices must be integers"))
            .collect::<Result<Vec<_>, _>>()?;
        let artifact_missing = value
            .get("artifact_missing")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        return Ok(TileReply::StoreMiss {
            job,
            missing,
            artifact_missing,
        });
    }
    let values = values_from_json(
        value
            .get("values")
            .ok_or("tile response needs a field 'values'")?,
    )?;
    Ok(TileReply::Values(TileResponse { job, values }))
}

/// Parses a worker's `tile` response, rejecting both error responses and
/// `store_miss` replies (callers that handle misses use
/// [`parse_tile_reply`]).
pub fn parse_tile_response(value: &Json) -> Result<TileResponse, String> {
    match parse_tile_reply(value)? {
        TileReply::Values(response) => Ok(response),
        TileReply::StoreMiss { job, .. } => Err(format!("tile {job} answered store_miss")),
    }
}

/// Extracts the optional `spans` array of a worker reply (span records the
/// worker drained for the request's trace). Empty when absent or
/// malformed; individual bad records are dropped, not errors.
pub fn reply_spans(value: &Json) -> Vec<SpanRecord> {
    value
        .get("spans")
        .and_then(Json::as_array)
        .map(|spans| spans.iter().filter_map(span_from_json).collect())
        .unwrap_or_default()
}

/// Rejects `{"ok":false,...}` responses, returning the error message.
pub fn check_ok(value: &Json) -> Result<&Json, String> {
    match value.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(value),
        _ => Err(value
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("worker reported failure without an error message")
            .to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_specs_roundtrip_through_json() {
        let specs = [
            KernelSpec::QjskUnaligned { mu: 1.25 },
            KernelSpec::QjskAligned { mu: 0.5 },
            KernelSpec::Jtqk {
                q: 2.0,
                wl_iterations: 3,
            },
            KernelSpec::Model {
                artifact: "0123456789abcdef0123456789abcdef".to_string(),
            },
        ];
        for spec in specs {
            let wire = spec.to_json();
            let text = wire.to_string();
            let back = KernelSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(KernelSpec::from_json(&Json::parse(r#"{"id":"wl"}"#).unwrap()).is_err());
    }

    #[test]
    fn kernel_spec_matches_remote_gram_ids() {
        let spec = RemoteGram {
            kernel_id: QjskUnaligned::REMOTE_KERNEL_ID,
            params: vec![("mu", 2.0)],
            graphs: &[],
            artifact: None,
        };
        assert_eq!(
            KernelSpec::from_remote(&spec),
            Some(KernelSpec::QjskUnaligned { mu: 2.0 })
        );
        let unknown = RemoteGram {
            kernel_id: "wl_subtree",
            params: vec![],
            graphs: &[],
            artifact: None,
        };
        assert_eq!(KernelSpec::from_remote(&unknown), None);
    }

    #[test]
    fn model_spec_requires_an_artifact() {
        // A model spec without a shipped artifact cannot be serialised —
        // the coordinator falls back to local execution.
        let bare = RemoteGram {
            kernel_id: HaqjskModel::REMOTE_KERNEL_ID,
            params: vec![],
            graphs: &[],
            artifact: None,
        };
        assert_eq!(KernelSpec::from_remote(&bare), None);
        let payload = "haqjsk-model v1\nend\n";
        let with_artifact = RemoteGram {
            kernel_id: HaqjskModel::REMOTE_KERNEL_ID,
            params: vec![],
            graphs: &[],
            artifact: Some(haqjsk_engine::RemoteArtifact {
                id: "feed".repeat(8),
                payload,
            }),
        };
        assert_eq!(
            KernelSpec::from_remote(&with_artifact),
            Some(KernelSpec::Model {
                artifact: "feed".repeat(8),
            })
        );
    }

    #[test]
    fn keys_roundtrip_through_hex() {
        for key in [GraphKey(0), GraphKey(42), GraphKey(u128::MAX)] {
            assert_eq!(key_from_hex(&key_hex(key)), Some(key));
        }
        assert_eq!(key_from_hex("zz"), None);
        assert_eq!(key_from_hex(""), None);
    }

    #[test]
    fn values_roundtrip_bit_exactly() {
        let values = [
            0.0,
            1.0,
            -0.0,
            0.1 + 0.2,
            (-1.75f64).exp(),
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.0e300,
        ];
        let wire = values_to_json(&values).to_string();
        let back = values_from_json(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} drifted to {b}");
        }
    }

    #[test]
    fn tile_request_roundtrips() {
        let kernel = KernelSpec::Jtqk {
            q: 2.0,
            wl_iterations: 3,
        }
        .to_json();
        let pairs = [(0, 1), (0, 2), (1, 2)];
        let request = tile_request("abc123", 7, &kernel, &pairs, 3, None);
        let parsed = Json::parse(&request.to_string()).unwrap();
        assert_eq!(parsed.get("cmd").and_then(Json::as_str), Some("tile"));
        assert_eq!(parsed.get("job").and_then(Json::as_usize), Some(7));
        assert_eq!(parsed.get("epoch").and_then(Json::as_usize), Some(3));
        assert_eq!(
            pairs_from_json(parsed.get("pairs").unwrap()).unwrap(),
            pairs.to_vec()
        );
        assert_eq!(
            KernelSpec::from_json(parsed.get("kernel").unwrap()).unwrap(),
            KernelSpec::Jtqk {
                q: 2.0,
                wl_iterations: 3
            }
        );
    }

    #[test]
    fn store_miss_replies_roundtrip_and_are_distinguished() {
        let wire = store_miss_response(9, &[2, 5], true).to_string();
        let parsed = Json::parse(&wire).unwrap();
        assert_eq!(
            parse_tile_reply(&parsed).unwrap(),
            TileReply::StoreMiss {
                job: 9,
                missing: vec![2, 5],
                artifact_missing: true,
            }
        );
        // The strict parser treats a miss as an error.
        assert!(parse_tile_response(&parsed).is_err());
        // A normal values reply still parses through both.
        let ok = Json::parse(r#"{"ok":true,"job":4,"values":[1.0,0.5]}"#).unwrap();
        assert_eq!(
            parse_tile_reply(&ok).unwrap(),
            TileReply::Values(TileResponse {
                job: 4,
                values: vec![1.0, 0.5],
            })
        );
        assert_eq!(parse_tile_response(&ok).unwrap().job, 4);
    }

    #[test]
    fn artifact_requests_carry_the_digest() {
        let begin = artifact_begin_request("abcd");
        assert_eq!(
            begin.get("cmd").and_then(Json::as_str),
            Some("artifact_begin")
        );
        assert_eq!(begin.get("artifact").and_then(Json::as_str), Some("abcd"));
        let chunk = artifact_chunk_request("abcd", "proto 1.0\n");
        assert_eq!(
            chunk.get("text").and_then(Json::as_str),
            Some("proto 1.0\n")
        );
        let commit = artifact_commit_request("abcd");
        assert_eq!(
            commit.get("cmd").and_then(Json::as_str),
            Some("artifact_commit")
        );
    }

    #[test]
    fn check_ok_surfaces_errors() {
        let ok = Json::parse(r#"{"ok":true,"x":1}"#).unwrap();
        assert!(check_ok(&ok).is_ok());
        let err = Json::parse(r#"{"ok":false,"error":"boom"}"#).unwrap();
        assert_eq!(check_ok(&err).unwrap_err(), "boom");
        assert!(check_ok(&Json::Null).is_err());
    }
}
