//! Worker-link lifecycle and failure handling.
//!
//! A [`WorkerLink`] is the coordinator's view of one worker: its address,
//! the (at most one) live connection, its membership state, and the
//! per-worker counters the serving `stats` response and the scaling
//! benchmark report. The failure philosophy is simple and absolute: **a
//! Gram must never fail because a worker vanished.** Every failure mode —
//! refused connection, mid-stream hangup, deadline timeout, malformed
//! response — collapses to the same recovery: mark the link dead, requeue
//! its in-flight tiles, and let the remaining workers (or, ultimately, the
//! coordinator's own local evaluator) finish the Gram byte-identically.
//!
//! ## Link states
//!
//! ```text
//!          connect ok                    mark_dead
//!   ┌──────────────────► Alive ────────────────────────┐
//!   │                      ▲                           ▼
//! (join)                   └──── reconnect ok ──── Probation ◄─┐
//!   │                                                  │       │
//!   │   begin_drain (remove_worker)                    └─ retry│fails:
//!   └─────────────────► Draining (terminal)              jittered
//!                                                     exponential backoff
//! ```
//!
//! A dead worker enters **probation**: a background thread on the
//! coordinator retries its address on a jittered exponential backoff
//! schedule (`HAQJSK_DIST_RECONNECT_BASE_MS` / `..._MAX_MS`), so a
//! restarted worker rejoins the pool without coordinator intervention and
//! without per-Gram connect-timeout stalls — [`WorkerLink::checkout`]
//! refuses to dial a probationed address before its retry is due. A
//! **draining** worker (removed via `Coordinator::remove_worker`) accepts
//! no further tiles; its in-flight tiles requeue through the ordinary
//! death-recovery path.

use crate::coordinator::DistConfig;
use crate::wire;
use haqjsk_engine::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A failed receive, distinguishing deadline expiry (the worker may just
/// be slow) from everything else (the connection is unusable).
pub(crate) struct RecvError {
    /// Human-readable description.
    pub message: String,
    /// Whether the failure was a read-timeout rather than a hangup,
    /// transport error or malformed response.
    pub timed_out: bool,
}

impl RecvError {
    fn fatal(message: String) -> RecvError {
        RecvError {
            message,
            timed_out: false,
        }
    }
}

/// One live request/response connection to a worker (JSON lines over TCP).
pub(crate) struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Partial line carried across a read timeout, so a response split by
    /// the deadline boundary is not lost when the caller retries.
    pending: String,
}

impl Conn {
    /// Connects with a timeout and verifies the peer answers `ping` as a
    /// worker.
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<Conn, String> {
        let socket_addr = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve '{addr}': {e}"))?
            .next()
            .ok_or_else(|| format!("'{addr}' resolves to no address"))?;
        let stream = TcpStream::connect_timeout(&socket_addr, timeout)
            .map_err(|e| format!("cannot connect to worker at {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream to {addr}: {e}"))?;
        let mut conn = Conn {
            reader: BufReader::new(stream),
            writer,
            pending: String::new(),
        };
        let pong = conn
            .call(&wire::ping_request(), Some(timeout))
            .map_err(|e| format!("worker at {addr} failed the ping handshake: {e}"))?;
        match pong.get("pong").and_then(Json::as_bool) {
            Some(true) => Ok(conn),
            _ => Err(format!("peer at {addr} is not a haqjsk worker")),
        }
    }

    /// Writes one request line; returns the bytes written.
    pub(crate) fn send(&mut self, message: &Json) -> std::io::Result<usize> {
        let mut line = message.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(line.len())
    }

    /// Reads one response line, parsing it as JSON. `timeout` bounds the
    /// wait; expiry is reported as [`RecvError::timed_out`] (the caller
    /// may keep waiting — a partial line is carried over), while EOF,
    /// transport errors and garbage are fatal for the connection.
    pub(crate) fn recv(&mut self, timeout: Option<Duration>) -> Result<Json, RecvError> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| RecvError::fatal(format!("cannot set read timeout: {e}")))?;
        match self.reader.read_line(&mut self.pending) {
            Ok(0) => Err(RecvError::fatal("worker closed the connection".to_string())),
            Ok(_) => {
                let line = std::mem::take(&mut self.pending);
                Json::parse(line.trim())
                    .map_err(|e| RecvError::fatal(format!("malformed worker response: {e}")))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(RecvError {
                    message: format!("worker read timed out: {e}"),
                    timed_out: true,
                })
            }
            Err(e) => Err(RecvError::fatal(format!("worker read failed: {e}"))),
        }
    }

    /// One synchronous request/response exchange, rejecting `ok:false`.
    pub(crate) fn call(
        &mut self,
        message: &Json,
        timeout: Option<Duration>,
    ) -> Result<Json, String> {
        self.send(message)
            .map_err(|e| format!("send failed: {e}"))?;
        let response = self.recv(timeout).map_err(|e| e.message)?;
        wire::check_ok(&response)?;
        Ok(response)
    }

    /// Bytes-written-accounting variant of [`Conn::call`], crediting the
    /// link's shipped-byte counter and (on success) the worker's RPC
    /// round-trip histogram.
    pub(crate) fn call_counted(
        &mut self,
        link: &WorkerLink,
        message: &Json,
        timeout: Option<Duration>,
    ) -> Result<Json, String> {
        let started = Instant::now();
        let bytes = self
            .send(message)
            .map_err(|e| format!("send failed: {e}"))?;
        link.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
        let response = self.recv(timeout).map_err(|e| e.message)?;
        wire::check_ok(&response)?;
        crate::obs::rpc_histogram(&link.addr).observe_duration(started.elapsed());
        Ok(response)
    }
}

/// A link's membership state (see the module docs for the transitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Believed dead; retried on the backoff schedule.
    Probation,
    /// Live and eligible for tiles.
    Alive,
    /// Removed from membership; accepts no further tiles (terminal).
    Draining,
}

impl LinkState {
    /// The canonical lower-case label (the `state` metric label value).
    pub fn label(self) -> &'static str {
        match self {
            LinkState::Probation => "probation",
            LinkState::Alive => "alive",
            LinkState::Draining => "draining",
        }
    }

    fn from_u8(raw: u8) -> LinkState {
        match raw {
            1 => LinkState::Alive,
            2 => LinkState::Draining,
            _ => LinkState::Probation,
        }
    }
}

/// Backoff bookkeeping of a probationed link.
#[derive(Debug, Clone, Copy, Default)]
struct Probation {
    /// Consecutive failed reconnect attempts.
    attempts: u32,
    /// Earliest instant the next dial is allowed; `None` = immediately.
    next_retry: Option<Instant>,
}

/// The coordinator's handle on one worker.
pub struct WorkerLink {
    /// The worker's `host:port` address.
    pub addr: String,
    pub(crate) conn: Mutex<Option<Conn>>,
    pub(crate) alive: AtomicBool,
    state: AtomicU8,
    probation: Mutex<Probation>,
    /// The owning coordinator's membership epoch, bumped on every
    /// join/death/revival/drain of this link.
    epoch: Arc<AtomicUsize>,
    pub(crate) tiles_dispatched: AtomicUsize,
    pub(crate) tiles_completed: AtomicUsize,
    pub(crate) tiles_redispatched: AtomicUsize,
    pub(crate) bytes_shipped: AtomicUsize,
    pub(crate) datasets_shipped: AtomicUsize,
    pub(crate) deaths: AtomicUsize,
    pub(crate) reconnects: AtomicUsize,
    pub(crate) store_misses: AtomicUsize,
}

impl WorkerLink {
    pub(crate) fn new(addr: String, epoch: Arc<AtomicUsize>) -> WorkerLink {
        WorkerLink {
            addr,
            conn: Mutex::new(None),
            alive: AtomicBool::new(false),
            state: AtomicU8::new(LinkState::Probation as u8),
            probation: Mutex::new(Probation::default()),
            epoch,
            tiles_dispatched: AtomicUsize::new(0),
            tiles_completed: AtomicUsize::new(0),
            tiles_redispatched: AtomicUsize::new(0),
            bytes_shipped: AtomicUsize::new(0),
            datasets_shipped: AtomicUsize::new(0),
            deaths: AtomicUsize::new(0),
            reconnects: AtomicUsize::new(0),
            store_misses: AtomicUsize::new(0),
        }
    }

    /// Whether the link is currently believed live.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// The link's membership state.
    pub fn state(&self) -> LinkState {
        LinkState::from_u8(self.state.load(Ordering::Acquire))
    }

    fn set_state(&self, state: LinkState) {
        self.state.store(state as u8, Ordering::Release);
        self.alive
            .store(state == LinkState::Alive, Ordering::Release);
    }

    /// Whether a probation retry is allowed right now (a link never in
    /// probation, or past its backoff deadline, answers `true`).
    pub(crate) fn retry_due(&self) -> bool {
        self.probation
            .lock()
            .expect("probation lock poisoned")
            .next_retry
            .is_none_or(|at| Instant::now() >= at)
    }

    /// Records one failed reconnect attempt, pushing `next_retry` out on a
    /// jittered exponential schedule: `min(base · 2^(attempts-1), max)`
    /// scaled by a uniform factor in `[0.5, 1.5)` so a pool of probationed
    /// workers does not thunder back in lockstep.
    pub(crate) fn schedule_retry(&self, config: &DistConfig) {
        let mut probation = self.probation.lock().expect("probation lock poisoned");
        probation.attempts = probation.attempts.saturating_add(1);
        let exponent = probation.attempts.saturating_sub(1).min(16);
        let backoff = config
            .reconnect_base
            .saturating_mul(1u32 << exponent)
            .min(config.reconnect_max);
        let jittered = backoff.mul_f64(0.5 + jitter_unit(&self.addr, probation.attempts));
        probation.next_retry = Some(Instant::now() + jittered);
    }

    /// Takes the live connection for exclusive use (re-connecting first if
    /// necessary); `None` when the worker is draining, its probation
    /// backoff has not expired, or the dial fails (which schedules the
    /// next retry).
    pub(crate) fn checkout(&self, config: &DistConfig) -> Option<Conn> {
        if self.state() == LinkState::Draining {
            return None;
        }
        if let Some(conn) = self.conn.lock().expect("worker link poisoned").take() {
            return Some(conn);
        }
        if self.state() == LinkState::Probation && !self.retry_due() {
            return None;
        }
        match Conn::connect(&self.addr, config.connect_timeout) {
            Ok(conn) => {
                self.note_revival();
                Some(conn)
            }
            Err(_) => {
                if self.state() != LinkState::Draining {
                    self.set_state(LinkState::Probation);
                    self.schedule_retry(config);
                }
                None
            }
        }
    }

    /// Records a successful (re)connect: the link goes Alive, probation
    /// resets, and a revival after at least one death counts as a
    /// reconnect.
    pub(crate) fn note_revival(&self) {
        let was_alive = self.state() == LinkState::Alive;
        self.set_state(LinkState::Alive);
        *self.probation.lock().expect("probation lock poisoned") = Probation::default();
        if !was_alive {
            self.epoch.fetch_add(1, Ordering::AcqRel);
            if self.deaths.load(Ordering::Relaxed) > 0 {
                self.reconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Returns a connection after use.
    pub(crate) fn checkin(&self, conn: Conn) {
        *self.conn.lock().expect("worker link poisoned") = Some(conn);
    }

    /// Declares the worker dead: drops any stored connection and enters
    /// probation (draining links stay draining — they are on their way
    /// out).
    pub(crate) fn mark_dead(&self) {
        if self.state() != LinkState::Draining {
            self.set_state(LinkState::Probation);
        } else {
            self.alive.store(false, Ordering::Release);
        }
        self.deaths.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        *self.conn.lock().expect("worker link poisoned") = None;
    }

    /// Begins draining: no further tiles are dispatched to this link, and
    /// its stored connection is dropped.
    pub(crate) fn begin_drain(&self) {
        self.set_state(LinkState::Draining);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        *self.conn.lock().expect("worker link poisoned") = None;
    }

    /// Snapshot of the per-worker counters.
    pub fn stats(&self) -> WorkerStatsSnapshot {
        WorkerStatsSnapshot {
            addr: self.addr.clone(),
            alive: self.is_alive(),
            state: self.state(),
            tiles_dispatched: self.tiles_dispatched.load(Ordering::Relaxed),
            tiles_completed: self.tiles_completed.load(Ordering::Relaxed),
            tiles_redispatched: self.tiles_redispatched.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            datasets_shipped: self.datasets_shipped.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
        }
    }
}

/// A uniform jitter draw in `[0, 1)`, seeded from the address and attempt
/// number plus a process-wide nonce — decorrelated across workers without
/// needing wall-clock entropy.
fn jitter_unit(addr: &str, attempts: u32) -> f64 {
    static NONCE: AtomicU64 = AtomicU64::new(0x9e3779b97f4a7c15);
    let nonce = NONCE.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
    let mut seed: u64 = nonce ^ (attempts as u64).wrapping_mul(0x100000001b3);
    for byte in addr.as_bytes() {
        seed ^= *byte as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(seed).gen::<f64>()
}

/// Point-in-time view of one worker's counters, for `stats` responses and
/// benchmark reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// Worker address.
    pub addr: String,
    /// Whether the link was live at snapshot time.
    pub alive: bool,
    /// Membership state at snapshot time.
    pub state: LinkState,
    /// Tile work units sent to this worker (including re-dispatches *to*
    /// it).
    pub tiles_dispatched: usize,
    /// Tile results received from this worker and committed.
    pub tiles_completed: usize,
    /// Tiles this worker claimed from another worker's expired deadline.
    pub tiles_redispatched: usize,
    /// Request bytes written to this worker (dataset shipping + tiles).
    pub bytes_shipped: usize,
    /// Dataset shipping rounds completed with this worker.
    pub datasets_shipped: usize,
    /// Times this link was declared dead.
    pub deaths: usize,
    /// Times this link came back from probation (revivals after death).
    pub reconnects: usize,
    /// `store_miss` replies received from this worker (each triggered a
    /// targeted re-ship, not a death).
    pub store_misses: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config() -> DistConfig {
        DistConfig {
            connect_timeout: Duration::from_millis(300),
            reconnect_base: Duration::from_millis(10),
            reconnect_max: Duration::from_millis(80),
            ..DistConfig::default()
        }
    }

    #[test]
    fn refused_connect_enters_probation_with_backoff() {
        // Bind-then-drop guarantees a refused port.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let link = WorkerLink::new(addr, Arc::new(AtomicUsize::new(1)));
        let config = test_config();
        assert!(link.checkout(&config).is_none());
        assert_eq!(link.state(), LinkState::Probation);
        // The next checkout before the backoff expires must not dial.
        assert!(!link.retry_due());
        assert!(link.checkout(&config).is_none());
        // Backoff grows with attempts (deterministically bounded by max).
        for _ in 0..10 {
            link.schedule_retry(&config);
        }
        let wait = link
            .probation
            .lock()
            .unwrap()
            .next_retry
            .unwrap()
            .saturating_duration_since(Instant::now());
        assert!(
            wait <= config.reconnect_max.mul_f64(1.5),
            "backoff {wait:?} exceeds jittered max"
        );
    }

    #[test]
    fn revival_after_death_counts_as_reconnect() {
        let link = WorkerLink::new("127.0.0.1:1".to_string(), Arc::new(AtomicUsize::new(1)));
        link.note_revival();
        // First connect is a join, not a reconnect.
        assert_eq!(link.stats().reconnects, 0);
        link.mark_dead();
        assert_eq!(link.state(), LinkState::Probation);
        link.note_revival();
        let stats = link.stats();
        assert_eq!(stats.reconnects, 1);
        assert_eq!(stats.state, LinkState::Alive);
        assert!(stats.alive);
    }

    #[test]
    fn draining_is_terminal_and_refuses_checkout() {
        let link = WorkerLink::new("127.0.0.1:1".to_string(), Arc::new(AtomicUsize::new(1)));
        link.note_revival();
        link.begin_drain();
        assert_eq!(link.state(), LinkState::Draining);
        assert!(link.checkout(&test_config()).is_none());
        // A death while draining does not re-enter probation.
        link.mark_dead();
        assert_eq!(link.state(), LinkState::Draining);
        assert!(!link.is_alive());
    }

    #[test]
    fn recv_classifies_timeouts_apart_from_hangups_and_garbage() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Script: answer the ping, then one garbage line, then silence,
        // then hang up.
        let script = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap(); // ping
            stream.write_all(b"{\"ok\":true,\"pong\":true}\n").unwrap();
            reader.read_line(&mut line).unwrap(); // first probe
            stream.write_all(b"this is not json\n").unwrap();
            reader.read_line(&mut line).unwrap(); // second probe: silence
            std::thread::sleep(Duration::from_millis(120));
            drop(stream); // EOF
        });
        let mut conn = Conn::connect(&addr, Duration::from_secs(2)).unwrap();
        // Garbage: fatal, not a timeout.
        conn.send(&wire::ping_request()).unwrap();
        let garbage = conn.recv(Some(Duration::from_secs(2))).unwrap_err();
        assert!(!garbage.timed_out, "{}", garbage.message);
        assert!(garbage.message.contains("malformed"), "{}", garbage.message);
        // Silence within the deadline: timed_out, retryable.
        conn.send(&wire::ping_request()).unwrap();
        let slow = conn.recv(Some(Duration::from_millis(30))).unwrap_err();
        assert!(slow.timed_out, "{}", slow.message);
        // After the peer hangs up: EOF is fatal.
        script.join().unwrap();
        let eof = conn.recv(Some(Duration::from_secs(2))).unwrap_err();
        assert!(!eof.timed_out);
        assert!(eof.message.contains("closed"), "{}", eof.message);
    }
}
