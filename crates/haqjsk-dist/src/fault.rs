//! Worker-link lifecycle and failure handling.
//!
//! A [`WorkerLink`] is the coordinator's view of one worker: its address,
//! the (at most one) live connection, liveness, and the per-worker counters
//! the serving `stats` response and the scaling benchmark report. The
//! failure philosophy is simple and absolute: **a Gram must never fail
//! because a worker vanished.** Every failure mode — refused connection,
//! mid-stream hangup, deadline timeout, malformed response — collapses to
//! the same recovery: mark the link dead, requeue its in-flight tiles, and
//! let the remaining workers (or, ultimately, the coordinator's own local
//! evaluator) finish the Gram byte-identically. Dead links are revived by
//! reconnect attempts at the start of every subsequent Gram, so a restarted
//! worker rejoins the pool without coordinator intervention.

use crate::wire;
use haqjsk_engine::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A failed receive, distinguishing deadline expiry (the worker may just
/// be slow) from everything else (the connection is unusable).
pub(crate) struct RecvError {
    /// Human-readable description.
    pub message: String,
    /// Whether the failure was a read-timeout rather than a hangup,
    /// transport error or malformed response.
    pub timed_out: bool,
}

impl RecvError {
    fn fatal(message: String) -> RecvError {
        RecvError {
            message,
            timed_out: false,
        }
    }
}

/// One live request/response connection to a worker (JSON lines over TCP).
pub(crate) struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Partial line carried across a read timeout, so a response split by
    /// the deadline boundary is not lost when the caller retries.
    pending: String,
}

impl Conn {
    /// Connects with a timeout and verifies the peer answers `ping` as a
    /// worker.
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<Conn, String> {
        let socket_addr = addr
            .to_socket_addrs()
            .map_err(|e| format!("cannot resolve '{addr}': {e}"))?
            .next()
            .ok_or_else(|| format!("'{addr}' resolves to no address"))?;
        let stream = TcpStream::connect_timeout(&socket_addr, timeout)
            .map_err(|e| format!("cannot connect to worker at {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream to {addr}: {e}"))?;
        let mut conn = Conn {
            reader: BufReader::new(stream),
            writer,
            pending: String::new(),
        };
        let pong = conn
            .call(&wire::ping_request(), Some(timeout))
            .map_err(|e| format!("worker at {addr} failed the ping handshake: {e}"))?;
        match pong.get("pong").and_then(Json::as_bool) {
            Some(true) => Ok(conn),
            _ => Err(format!("peer at {addr} is not a haqjsk worker")),
        }
    }

    /// Writes one request line; returns the bytes written.
    pub(crate) fn send(&mut self, message: &Json) -> std::io::Result<usize> {
        let mut line = message.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(line.len())
    }

    /// Reads one response line, parsing it as JSON. `timeout` bounds the
    /// wait; expiry is reported as [`RecvError::timed_out`] (the caller
    /// may keep waiting — a partial line is carried over), while EOF,
    /// transport errors and garbage are fatal for the connection.
    pub(crate) fn recv(&mut self, timeout: Option<Duration>) -> Result<Json, RecvError> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| RecvError::fatal(format!("cannot set read timeout: {e}")))?;
        match self.reader.read_line(&mut self.pending) {
            Ok(0) => Err(RecvError::fatal("worker closed the connection".to_string())),
            Ok(_) => {
                let line = std::mem::take(&mut self.pending);
                Json::parse(line.trim())
                    .map_err(|e| RecvError::fatal(format!("malformed worker response: {e}")))
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(RecvError {
                    message: format!("worker read timed out: {e}"),
                    timed_out: true,
                })
            }
            Err(e) => Err(RecvError::fatal(format!("worker read failed: {e}"))),
        }
    }

    /// One synchronous request/response exchange, rejecting `ok:false`.
    pub(crate) fn call(
        &mut self,
        message: &Json,
        timeout: Option<Duration>,
    ) -> Result<Json, String> {
        self.send(message)
            .map_err(|e| format!("send failed: {e}"))?;
        let response = self.recv(timeout).map_err(|e| e.message)?;
        wire::check_ok(&response)?;
        Ok(response)
    }

    /// Bytes-written-accounting variant of [`Conn::call`], crediting the
    /// link's shipped-byte counter and (on success) the worker's RPC
    /// round-trip histogram.
    pub(crate) fn call_counted(
        &mut self,
        link: &WorkerLink,
        message: &Json,
        timeout: Option<Duration>,
    ) -> Result<Json, String> {
        let started = Instant::now();
        let bytes = self
            .send(message)
            .map_err(|e| format!("send failed: {e}"))?;
        link.bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
        let response = self.recv(timeout).map_err(|e| e.message)?;
        wire::check_ok(&response)?;
        crate::obs::rpc_histogram(&link.addr).observe_duration(started.elapsed());
        Ok(response)
    }
}

/// The coordinator's handle on one worker.
pub struct WorkerLink {
    /// The worker's `host:port` address.
    pub addr: String,
    pub(crate) conn: Mutex<Option<Conn>>,
    pub(crate) alive: AtomicBool,
    pub(crate) tiles_dispatched: AtomicUsize,
    pub(crate) tiles_completed: AtomicUsize,
    pub(crate) tiles_redispatched: AtomicUsize,
    pub(crate) bytes_shipped: AtomicUsize,
    pub(crate) datasets_shipped: AtomicUsize,
    pub(crate) deaths: AtomicUsize,
}

impl WorkerLink {
    pub(crate) fn new(addr: String) -> WorkerLink {
        WorkerLink {
            addr,
            conn: Mutex::new(None),
            alive: AtomicBool::new(false),
            tiles_dispatched: AtomicUsize::new(0),
            tiles_completed: AtomicUsize::new(0),
            tiles_redispatched: AtomicUsize::new(0),
            bytes_shipped: AtomicUsize::new(0),
            datasets_shipped: AtomicUsize::new(0),
            deaths: AtomicUsize::new(0),
        }
    }

    /// Whether the link is currently believed live.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Takes the live connection for exclusive use (re-connecting first if
    /// necessary); `None` when the worker is unreachable.
    pub(crate) fn checkout(&self, connect_timeout: Duration) -> Option<Conn> {
        if let Some(conn) = self.conn.lock().expect("worker link poisoned").take() {
            return Some(conn);
        }
        match Conn::connect(&self.addr, connect_timeout) {
            Ok(conn) => {
                self.alive.store(true, Ordering::Release);
                Some(conn)
            }
            Err(_) => {
                self.alive.store(false, Ordering::Release);
                None
            }
        }
    }

    /// Returns a connection after use.
    pub(crate) fn checkin(&self, conn: Conn) {
        *self.conn.lock().expect("worker link poisoned") = Some(conn);
    }

    /// Declares the worker dead: drops any stored connection so the next
    /// Gram attempts a fresh connect.
    pub(crate) fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
        self.deaths.fetch_add(1, Ordering::Relaxed);
        *self.conn.lock().expect("worker link poisoned") = None;
    }

    /// Snapshot of the per-worker counters.
    pub fn stats(&self) -> WorkerStatsSnapshot {
        WorkerStatsSnapshot {
            addr: self.addr.clone(),
            alive: self.is_alive(),
            tiles_dispatched: self.tiles_dispatched.load(Ordering::Relaxed),
            tiles_completed: self.tiles_completed.load(Ordering::Relaxed),
            tiles_redispatched: self.tiles_redispatched.load(Ordering::Relaxed),
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            datasets_shipped: self.datasets_shipped.load(Ordering::Relaxed),
            deaths: self.deaths.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one worker's counters, for `stats` responses and
/// benchmark reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// Worker address.
    pub addr: String,
    /// Whether the link was live at snapshot time.
    pub alive: bool,
    /// Tile work units sent to this worker (including re-dispatches *to*
    /// it).
    pub tiles_dispatched: usize,
    /// Tile results received from this worker and committed.
    pub tiles_completed: usize,
    /// Tiles this worker claimed from another worker's expired deadline.
    pub tiles_redispatched: usize,
    /// Request bytes written to this worker (dataset shipping + tiles).
    pub bytes_shipped: usize,
    /// Dataset shipping rounds completed with this worker.
    pub datasets_shipped: usize,
    /// Times this link was declared dead.
    pub deaths: usize,
}
