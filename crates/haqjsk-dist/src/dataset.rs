//! Content-hash-deduplicated dataset shipping.
//!
//! A worker must hold the dataset before it can evaluate tiles over it, but
//! re-fitting with overlapping datasets (cross-validation folds, appended
//! streams, repeated serving requests) would make naive re-shipping the
//! dominant cost. Shipping is therefore two-phase and content-addressed by
//! the engine's structural graph hash ([`haqjsk_engine::graph_key`]):
//!
//! 1. `dataset_begin` announces the dataset id plus the *ordered* key list;
//!    the worker answers with the indices it does **not** already hold in
//!    its process-lifetime graph store,
//! 2. `dataset_graphs` ships only those graphs (chunked), and
//!    `dataset_commit` materialises the ordered graph vector under the
//!    dataset id.
//!
//! The dataset id is itself a digest of the ordered key list, so the same
//! dataset is committed once and instantly reusable, and two datasets that
//! share graphs share the underlying store entries. The worker verifies
//! every received graph against its announced key — a corrupted or
//! misordered shipment is rejected instead of silently computing a wrong
//! Gram matrix.

use crate::wire;
use haqjsk_engine::{graph_key, GraphKey};
use haqjsk_graph::Graph;
use std::collections::HashMap;
use std::sync::Arc;

/// Graphs shipped per `dataset_graphs` message: large enough to amortise
/// the per-line round trip, small enough to keep single lines bounded.
pub const SHIP_CHUNK: usize = 64;

/// The structural keys of a dataset, in dataset order.
pub fn dataset_keys(graphs: &[Graph]) -> Vec<GraphKey> {
    graphs.iter().map(graph_key).collect()
}

/// The dataset id: an FNV-1a digest of the ordered key list, in hex.
/// Order-sensitive by design — tile index pairs refer to positions.
pub fn dataset_id(keys: &[GraphKey]) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut state = OFFSET;
    for key in keys {
        for byte in key.0.to_le_bytes() {
            state ^= byte as u128;
            state = state.wrapping_mul(PRIME);
        }
    }
    format!("{state:032x}")
}

/// The worker-side graph store: every graph ever received, keyed by its
/// structural hash, plus the committed datasets assembled from it.
///
/// The store is process-lifetime (workers are cattle; restart one to drop
/// its store) — the point is that overlapping datasets only ship new
/// graphs, which the dedup counters of the coordinator make observable.
#[derive(Default)]
pub struct GraphStore {
    graphs: HashMap<GraphKey, Graph>,
    datasets: HashMap<String, Arc<Vec<Graph>>>,
    pending: HashMap<String, Vec<GraphKey>>,
}

impl GraphStore {
    /// Starts (or restarts) assembly of `dataset` with the announced key
    /// list; returns the indices of keys not yet in the store.
    pub fn begin(&mut self, dataset: &str, keys: Vec<GraphKey>) -> Vec<usize> {
        let missing = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| !self.graphs.contains_key(k))
            .map(|(i, _)| i)
            .collect();
        self.pending.insert(dataset.to_string(), keys);
        missing
    }

    /// Stores shipped graphs, verifying each against the key announced for
    /// its dataset position.
    pub fn insert_graphs(
        &mut self,
        dataset: &str,
        indices: &[usize],
        graphs: Vec<Graph>,
    ) -> Result<usize, String> {
        let keys = self
            .pending
            .get(dataset)
            .ok_or_else(|| format!("dataset '{dataset}' has no pending begin"))?;
        if indices.len() != graphs.len() {
            return Err(format!(
                "{} indices for {} graphs",
                indices.len(),
                graphs.len()
            ));
        }
        let mut stored = 0;
        for (&i, graph) in indices.iter().zip(graphs) {
            let expected = *keys
                .get(i)
                .ok_or_else(|| format!("graph index {i} out of range"))?;
            let actual = graph_key(&graph);
            if actual != expected {
                return Err(format!(
                    "graph at index {i} hashes to {} but was announced as {}",
                    wire::key_hex(actual),
                    wire::key_hex(expected)
                ));
            }
            if self.graphs.insert(expected, graph).is_none() {
                stored += 1;
            }
        }
        Ok(stored)
    }

    /// Materialises the ordered graph vector of `dataset`; every key must
    /// be resident by now.
    pub fn commit(&mut self, dataset: &str) -> Result<Arc<Vec<Graph>>, String> {
        if let Some(existing) = self.datasets.get(dataset) {
            self.pending.remove(dataset);
            return Ok(Arc::clone(existing));
        }
        let keys = self
            .pending
            .remove(dataset)
            .ok_or_else(|| format!("dataset '{dataset}' has no pending begin"))?;
        let mut graphs = Vec::with_capacity(keys.len());
        for (i, key) in keys.iter().enumerate() {
            let graph = self.graphs.get(key).ok_or_else(|| {
                format!("dataset '{dataset}' commit with graph {i} never shipped")
            })?;
            graphs.push(graph.clone());
        }
        let graphs = Arc::new(graphs);
        self.datasets
            .insert(dataset.to_string(), Arc::clone(&graphs));
        Ok(graphs)
    }

    /// The committed dataset, if any.
    pub fn dataset(&self, dataset: &str) -> Option<Arc<Vec<Graph>>> {
        self.datasets.get(dataset).cloned()
    }

    /// Distinct graphs resident in the store.
    pub fn num_graphs(&self) -> usize {
        self.graphs.len()
    }

    /// Committed datasets.
    pub fn num_datasets(&self) -> usize {
        self.datasets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn dataset_id_is_order_sensitive_and_stable() {
        let a = dataset_keys(&[path_graph(4), cycle_graph(5)]);
        let b = dataset_keys(&[cycle_graph(5), path_graph(4)]);
        assert_eq!(dataset_id(&a), dataset_id(&a));
        assert_ne!(dataset_id(&a), dataset_id(&b));
        assert_eq!(dataset_id(&a).len(), 32);
    }

    #[test]
    fn shipping_dedups_and_verifies() {
        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6)];
        let keys = dataset_keys(&graphs);
        let id = dataset_id(&keys);
        let mut store = GraphStore::default();

        assert_eq!(store.begin(&id, keys.clone()), vec![0, 1, 2]);
        store
            .insert_graphs(&id, &[0, 1, 2], graphs.clone())
            .unwrap();
        let committed = store.commit(&id).unwrap();
        assert_eq!(committed.as_slice(), graphs.as_slice());

        // A second dataset sharing two graphs only needs the new one.
        let graphs2 = vec![cycle_graph(5), star_graph(6), path_graph(9)];
        let keys2 = dataset_keys(&graphs2);
        let id2 = dataset_id(&keys2);
        assert_eq!(store.begin(&id2, keys2), vec![2]);
        store
            .insert_graphs(&id2, &[2], vec![path_graph(9)])
            .unwrap();
        assert_eq!(store.commit(&id2).unwrap().as_slice(), graphs2.as_slice());
        assert_eq!(store.num_graphs(), 4);
        assert_eq!(store.num_datasets(), 2);

        // Re-beginning a committed dataset ships nothing.
        let keys = dataset_keys(&graphs);
        assert_eq!(store.begin(&id, keys), Vec::<usize>::new());
        assert!(store.commit(&id).is_ok());
    }

    #[test]
    fn mismatched_graphs_are_rejected() {
        let graphs = vec![path_graph(4), cycle_graph(5)];
        let keys = dataset_keys(&graphs);
        let id = dataset_id(&keys);
        let mut store = GraphStore::default();
        store.begin(&id, keys);
        // Shipping the wrong graph for index 0 must fail loudly.
        let err = store
            .insert_graphs(&id, &[0], vec![star_graph(7)])
            .unwrap_err();
        assert!(err.contains("hashes to"), "{err}");
        // Committing with a hole must fail too.
        assert!(store.commit(&id).is_err());
    }
}
