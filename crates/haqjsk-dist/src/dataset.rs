//! Content-hash-deduplicated dataset shipping and the bounded worker store.
//!
//! A worker must hold the dataset before it can evaluate tiles over it, but
//! re-fitting with overlapping datasets (cross-validation folds, appended
//! streams, repeated serving requests) would make naive re-shipping the
//! dominant cost. Shipping is therefore two-phase and content-addressed by
//! the engine's structural graph hash ([`haqjsk_engine::graph_key`]):
//!
//! 1. `dataset_begin` announces the dataset id plus the *ordered* key list;
//!    the worker answers with the indices it does **not** already hold in
//!    its graph store,
//! 2. `dataset_graphs` ships only those graphs (chunked), and
//!    `dataset_commit` verifies the ordered key list is fully resident.
//!
//! The dataset id is itself a digest of the ordered key list, so the same
//! dataset is committed once and instantly reusable, and two datasets that
//! share graphs share the underlying store entries. The worker verifies
//! every received graph against its announced key — a corrupted or
//! misordered shipment is rejected instead of silently computing a wrong
//! Gram matrix.
//!
//! ## Bounded residency
//!
//! The store reuses the budgeted-LRU machinery of the engine's feature
//! caches ([`LruList`], [`FrequencySketch`], [`parse_byte_size`]): a byte
//! budget (`HAQJSK_WORKER_STORE_BUDGET`) bounds resident graphs, with LRU
//! eviction by default and TinyLFU-biased victim selection opt-in
//! (`HAQJSK_WORKER_STORE_ADMISSION=tinylfu`). Two protections keep
//! eviction safe under concurrency with tile evaluation:
//!
//! * **Pinning** — [`GraphStore::pin_dataset`] materialises a dataset and
//!   pins every one of its graphs; a pinned graph is never evicted, so a
//!   tile mid-Gram cannot lose its inputs.
//! * **Shipment protection** — between `begin` and `commit`, every key of
//!   an in-flight dataset is refcount-protected so a concurrent insert
//!   cannot evict what was just confirmed resident (which would livelock
//!   the re-ship loop).
//!
//! When a tile arrives for a dataset whose graphs *were* evicted, the pin
//! fails with the missing dataset indices and the worker answers a
//! `store_miss` — a recoverable signal the coordinator converts into a
//! targeted re-ship, never a worker death.

use crate::wire;
use haqjsk_engine::cache::AdmissionPolicy;
use haqjsk_engine::{graph_key, parse_byte_size, FrequencySketch, GraphKey, LruList};
use haqjsk_graph::Graph;
use std::collections::HashMap;
use std::sync::Arc;

/// Graphs shipped per `dataset_graphs` message: large enough to amortise
/// the per-line round trip, small enough to keep single lines bounded.
pub const SHIP_CHUNK: usize = 64;

/// Environment variable bounding a worker's resident graph bytes
/// (`parse_byte_size` syntax: `"64m"`, `"1g"`, ...). Unset = unbounded.
pub const WORKER_STORE_BUDGET_ENV_VAR: &str = "HAQJSK_WORKER_STORE_BUDGET";

/// Environment variable selecting the store's victim-selection policy
/// (`lru` default, `tinylfu` for frequency-biased eviction).
pub const WORKER_STORE_ADMISSION_ENV_VAR: &str = "HAQJSK_WORKER_STORE_ADMISSION";

/// Under TinyLFU, how many tail-ward candidates an eviction inspects
/// before settling for the least-frequent one seen.
const EVICTION_SCAN: usize = 8;

/// The structural keys of a dataset, in dataset order.
pub fn dataset_keys(graphs: &[Graph]) -> Vec<GraphKey> {
    graphs.iter().map(graph_key).collect()
}

/// The dataset id: an FNV-1a digest of the ordered key list, in hex.
/// Order-sensitive by design — tile index pairs refer to positions.
pub fn dataset_id(keys: &[GraphKey]) -> String {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut state = OFFSET;
    for key in keys {
        for byte in key.0.to_le_bytes() {
            state ^= byte as u128;
            state = state.wrapping_mul(PRIME);
        }
    }
    format!("{state:032x}")
}

/// Approximate heap bytes of a stored graph (adjacency sets + labels).
fn graph_weight(graph: &Graph) -> usize {
    // BTreeSet node overhead is ~3 words per element; adjacency stores
    // each edge twice. Labels are one usize per vertex when present.
    let n = graph.num_vertices();
    let m = graph.num_edges();
    std::mem::size_of::<Graph>()
        + n * 48
        + 2 * m * 3 * std::mem::size_of::<usize>()
        + graph.labels().map_or(0, |l| l.len() * 8)
}

/// Budget and eviction policy of a [`GraphStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreConfig {
    /// Byte budget over resident graphs; `None` = unbounded.
    pub budget_bytes: Option<usize>,
    /// Victim selection under pressure: plain LRU, or TinyLFU-biased
    /// (keep frequently re-shipped graphs, evict one-dataset wonders).
    pub admission: AdmissionPolicy,
}

impl StoreConfig {
    /// Reads [`WORKER_STORE_BUDGET_ENV_VAR`] and
    /// [`WORKER_STORE_ADMISSION_ENV_VAR`] on top of the defaults.
    pub fn from_env() -> StoreConfig {
        let mut config = StoreConfig::default();
        if let Ok(raw) = std::env::var(WORKER_STORE_BUDGET_ENV_VAR) {
            config.budget_bytes = parse_byte_size(&raw);
        }
        if let Ok(raw) = std::env::var(WORKER_STORE_ADMISSION_ENV_VAR) {
            if let Some(policy) = AdmissionPolicy::parse(&raw) {
                config.admission = policy;
            }
        }
        config
    }
}

/// Point-in-time counters of a [`GraphStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Distinct graphs resident right now.
    pub num_graphs: usize,
    /// Committed datasets (key lists; their graphs may be partly evicted).
    pub num_datasets: usize,
    /// Estimated bytes of resident graphs.
    pub resident_bytes: usize,
    /// Graphs evicted under budget pressure since startup.
    pub evictions: u64,
    /// Tile pins that failed because graphs had been evicted.
    pub pin_misses: u64,
}

struct StoredGraph {
    graph: Graph,
    weight: usize,
    node: usize,
    pins: usize,
}

/// The worker-side graph store: resident graphs keyed by structural hash,
/// committed datasets as ordered key lists, and the budget machinery that
/// bounds residency (see the module docs).
#[derive(Default)]
pub struct GraphStore {
    config: StoreConfig,
    graphs: HashMap<GraphKey, StoredGraph>,
    lru: LruList,
    sketch: FrequencySketch,
    resident_bytes: usize,
    evictions: u64,
    pin_misses: u64,
    /// Committed datasets: ordered key lists (not materialised vectors, so
    /// a committed dataset does not itself pin bytes).
    datasets: HashMap<String, Arc<Vec<GraphKey>>>,
    /// Datasets mid-shipment (begin seen, commit not yet).
    pending: HashMap<String, Vec<GraphKey>>,
    /// Refcounts protecting keys of in-flight shipments from eviction.
    protected: HashMap<GraphKey, usize>,
    /// Materialised, pinned datasets currently used by tile evaluation.
    active: HashMap<String, (Arc<Vec<Graph>>, usize)>,
}

impl GraphStore {
    /// An empty store with the given budget/policy.
    pub fn new(config: StoreConfig) -> GraphStore {
        GraphStore {
            config,
            ..GraphStore::default()
        }
    }

    /// An empty store configured from the environment.
    pub fn from_env() -> GraphStore {
        GraphStore::new(StoreConfig::from_env())
    }

    /// The store's budget/policy.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Starts (or restarts) assembly of `dataset` with the announced key
    /// list; returns the indices of keys not currently resident. All
    /// announced keys are protected from eviction until commit.
    pub fn begin(&mut self, dataset: &str, keys: Vec<GraphKey>) -> Vec<usize> {
        if let Some(old) = self.pending.remove(dataset) {
            self.unprotect(&old);
        }
        let missing = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| !self.graphs.contains_key(k))
            .map(|(i, _)| i)
            .collect();
        for &key in &keys {
            *self.protected.entry(key).or_insert(0) += 1;
        }
        self.pending.insert(dataset.to_string(), keys);
        missing
    }

    fn unprotect(&mut self, keys: &[GraphKey]) {
        for key in keys {
            if let Some(count) = self.protected.get_mut(key) {
                *count -= 1;
                if *count == 0 {
                    self.protected.remove(key);
                }
            }
        }
    }

    /// Stores shipped graphs, verifying each against the key announced for
    /// its dataset position, and enforces the byte budget.
    pub fn insert_graphs(
        &mut self,
        dataset: &str,
        indices: &[usize],
        graphs: Vec<Graph>,
    ) -> Result<usize, String> {
        let keys = self
            .pending
            .get(dataset)
            .ok_or_else(|| format!("dataset '{dataset}' has no pending begin"))?;
        if indices.len() != graphs.len() {
            return Err(format!(
                "{} indices for {} graphs",
                indices.len(),
                graphs.len()
            ));
        }
        let mut expected_keys = Vec::with_capacity(indices.len());
        for &i in indices {
            expected_keys.push(
                *keys
                    .get(i)
                    .ok_or_else(|| format!("graph index {i} out of range"))?,
            );
        }
        let mut stored = 0;
        for ((&i, graph), expected) in indices.iter().zip(graphs).zip(expected_keys) {
            let actual = graph_key(&graph);
            if actual != expected {
                return Err(format!(
                    "graph at index {i} hashes to {} but was announced as {}",
                    wire::key_hex(actual),
                    wire::key_hex(expected)
                ));
            }
            if self.insert_graph(expected, graph) {
                stored += 1;
            }
        }
        self.enforce_budget();
        Ok(stored)
    }

    /// Stores one verified graph; `true` when it was new. Always admitted
    /// (shipped graphs are protected); pressure is relieved by evicting
    /// older unprotected entries in [`GraphStore::enforce_budget`].
    fn insert_graph(&mut self, key: GraphKey, graph: Graph) -> bool {
        self.sketch.record(key);
        if let Some(entry) = self.graphs.get(&key) {
            self.lru.touch(entry.node);
            return false;
        }
        let weight = graph_weight(&graph);
        let node = self.lru.push_front(key);
        self.resident_bytes += weight;
        self.graphs.insert(
            key,
            StoredGraph {
                graph,
                weight,
                node,
                pins: 0,
            },
        );
        true
    }

    /// Evicts unpinned, unprotected graphs from the cold end until the
    /// store fits its budget (or nothing more is evictable — a pinned
    /// working set larger than the budget stays resident; the budget is
    /// best-effort by design).
    fn enforce_budget(&mut self) {
        let Some(budget) = self.config.budget_bytes else {
            return;
        };
        while self.resident_bytes > budget {
            match self.pick_victim() {
                Some(key) => self.evict_key(key),
                None => break,
            }
        }
    }

    /// The next eviction victim: the coldest evictable graph under LRU, or
    /// the least-frequent of the coldest [`EVICTION_SCAN`] candidates
    /// under TinyLFU.
    fn pick_victim(&self) -> Option<GraphKey> {
        let evictable = |key: GraphKey| {
            !self.protected.contains_key(&key) && self.graphs.get(&key).is_some_and(|e| e.pins == 0)
        };
        let mut cursor = self.lru.tail_idx();
        match self.config.admission {
            AdmissionPolicy::Lru => {
                while let Some(idx) = cursor {
                    let key = self.lru.key_at(idx);
                    if evictable(key) {
                        return Some(key);
                    }
                    cursor = self.lru.toward_head(idx);
                }
                None
            }
            AdmissionPolicy::TinyLfu => {
                let mut best: Option<(GraphKey, u32)> = None;
                let mut inspected = 0;
                while let Some(idx) = cursor {
                    if inspected >= EVICTION_SCAN && best.is_some() {
                        break;
                    }
                    let key = self.lru.key_at(idx);
                    if evictable(key) {
                        inspected += 1;
                        let freq = self.sketch.estimate(key);
                        if best.is_none_or(|(_, f)| freq < f) {
                            best = Some((key, freq));
                        }
                    }
                    cursor = self.lru.toward_head(idx);
                }
                best.map(|(key, _)| key)
            }
        }
    }

    /// Evicts `key` unconditionally (callers check pins/protection).
    fn evict_key(&mut self, key: GraphKey) {
        if let Some(entry) = self.graphs.remove(&key) {
            self.lru.remove(entry.node);
            self.resident_bytes -= entry.weight;
            self.evictions += 1;
        }
    }

    /// Verifies every announced key of `dataset` is resident and commits
    /// the ordered key list; idempotent per dataset id. Returns the
    /// dataset's length.
    pub fn commit(&mut self, dataset: &str) -> Result<usize, String> {
        let keys = match self.pending.remove(dataset) {
            Some(keys) => {
                self.unprotect(&keys);
                Arc::new(keys)
            }
            None => self
                .datasets
                .get(dataset)
                .cloned()
                .ok_or_else(|| format!("dataset '{dataset}' has no pending begin"))?,
        };
        for (i, key) in keys.iter().enumerate() {
            if !self.graphs.contains_key(key) {
                return Err(format!(
                    "dataset '{dataset}' commit with graph {i} never shipped"
                ));
            }
        }
        let len = keys.len();
        self.datasets.insert(dataset.to_string(), keys);
        Ok(len)
    }

    /// Materialises and pins `dataset` for tile evaluation: every graph is
    /// refcount-pinned against eviction until the matching
    /// [`GraphStore::unpin_dataset`]. `Err` carries the dataset indices of
    /// evicted graphs (a `store_miss` in wire terms); an unknown dataset id
    /// reports every index missing.
    pub fn pin_dataset(&mut self, dataset: &str) -> Result<Arc<Vec<Graph>>, Vec<usize>> {
        if let Some((graphs, pins)) = self.active.get_mut(dataset) {
            *pins += 1;
            return Ok(Arc::clone(graphs));
        }
        let Some(keys) = self.datasets.get(dataset).cloned() else {
            self.pin_misses += 1;
            return Err(Vec::new());
        };
        let missing: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| !self.graphs.contains_key(k))
            .map(|(i, _)| i)
            .collect();
        if !missing.is_empty() {
            self.pin_misses += 1;
            return Err(missing);
        }
        let mut graphs = Vec::with_capacity(keys.len());
        for key in keys.iter() {
            let entry = self.graphs.get_mut(key).expect("checked resident above");
            entry.pins += 1;
            graphs.push(entry.graph.clone());
            let node = entry.node;
            self.lru.touch(node);
            self.sketch.record(*key);
        }
        let graphs = Arc::new(graphs);
        self.active
            .insert(dataset.to_string(), (Arc::clone(&graphs), 1));
        Ok(graphs)
    }

    /// Releases one [`GraphStore::pin_dataset`]; at zero the dataset's
    /// graphs become evictable again.
    pub fn unpin_dataset(&mut self, dataset: &str) {
        let Some((_, pins)) = self.active.get_mut(dataset) else {
            return;
        };
        *pins -= 1;
        if *pins > 0 {
            return;
        }
        self.active.remove(dataset);
        if let Some(keys) = self.datasets.get(dataset).cloned() {
            for key in keys.iter() {
                if let Some(entry) = self.graphs.get_mut(key) {
                    entry.pins = entry.pins.saturating_sub(1);
                }
            }
        }
        self.enforce_budget();
    }

    /// Chaos hook: evicts one unpinned, unprotected graph of `dataset` and
    /// returns its dataset index — the worker then answers a genuine
    /// `store_miss` exercising the real recovery path. `None` when nothing
    /// is evictable (the chaos draw falls through to no fault).
    pub fn forget_one(&mut self, dataset: &str) -> Option<usize> {
        let keys = self.datasets.get(dataset).cloned()?;
        let (index, key) = keys.iter().enumerate().find(|(_, k)| {
            !self.protected.contains_key(k) && self.graphs.get(k).is_some_and(|e| e.pins == 0)
        })?;
        let key = *key;
        self.evict_key(key);
        Some(index)
    }

    /// Whether `dataset` has been committed (its graphs may still have
    /// been evicted since — [`GraphStore::pin_dataset`] is the check that
    /// matters for tiles).
    pub fn knows_dataset(&self, dataset: &str) -> bool {
        self.datasets.contains_key(dataset)
    }

    /// Distinct graphs resident in the store.
    pub fn num_graphs(&self) -> usize {
        self.graphs.len()
    }

    /// Committed datasets.
    pub fn num_datasets(&self) -> usize {
        self.datasets.len()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            num_graphs: self.graphs.len(),
            num_datasets: self.datasets.len(),
            resident_bytes: self.resident_bytes,
            evictions: self.evictions,
            pin_misses: self.pin_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    fn ship(store: &mut GraphStore, graphs: &[Graph]) -> String {
        let keys = dataset_keys(graphs);
        let id = dataset_id(&keys);
        let missing = store.begin(&id, keys);
        let shipped: Vec<Graph> = missing.iter().map(|&i| graphs[i].clone()).collect();
        store.insert_graphs(&id, &missing, shipped).unwrap();
        store.commit(&id).unwrap();
        id
    }

    #[test]
    fn dataset_id_is_order_sensitive_and_stable() {
        let a = dataset_keys(&[path_graph(4), cycle_graph(5)]);
        let b = dataset_keys(&[cycle_graph(5), path_graph(4)]);
        assert_eq!(dataset_id(&a), dataset_id(&a));
        assert_ne!(dataset_id(&a), dataset_id(&b));
        assert_eq!(dataset_id(&a).len(), 32);
    }

    #[test]
    fn shipping_dedups_and_verifies() {
        let graphs = vec![path_graph(4), cycle_graph(5), star_graph(6)];
        let keys = dataset_keys(&graphs);
        let id = dataset_id(&keys);
        let mut store = GraphStore::default();

        assert_eq!(store.begin(&id, keys.clone()), vec![0, 1, 2]);
        store
            .insert_graphs(&id, &[0, 1, 2], graphs.clone())
            .unwrap();
        assert_eq!(store.commit(&id).unwrap(), 3);
        let pinned = store.pin_dataset(&id).unwrap();
        assert_eq!(pinned.as_slice(), graphs.as_slice());
        store.unpin_dataset(&id);

        // A second dataset sharing two graphs only needs the new one.
        let graphs2 = vec![cycle_graph(5), star_graph(6), path_graph(9)];
        let keys2 = dataset_keys(&graphs2);
        let id2 = dataset_id(&keys2);
        assert_eq!(store.begin(&id2, keys2), vec![2]);
        store
            .insert_graphs(&id2, &[2], vec![path_graph(9)])
            .unwrap();
        assert_eq!(store.commit(&id2).unwrap(), 3);
        assert_eq!(
            store.pin_dataset(&id2).unwrap().as_slice(),
            graphs2.as_slice()
        );
        store.unpin_dataset(&id2);
        assert_eq!(store.num_graphs(), 4);
        assert_eq!(store.num_datasets(), 2);

        // Re-beginning a committed dataset ships nothing.
        let keys = dataset_keys(&graphs);
        assert_eq!(store.begin(&id, keys), Vec::<usize>::new());
        assert!(store.commit(&id).is_ok());
    }

    #[test]
    fn mismatched_graphs_are_rejected() {
        let graphs = vec![path_graph(4), cycle_graph(5)];
        let keys = dataset_keys(&graphs);
        let id = dataset_id(&keys);
        let mut store = GraphStore::default();
        store.begin(&id, keys);
        // Shipping the wrong graph for index 0 must fail loudly.
        let err = store
            .insert_graphs(&id, &[0], vec![star_graph(7)])
            .unwrap_err();
        assert!(err.contains("hashes to"), "{err}");
        // Committing with a hole must fail too.
        assert!(store.commit(&id).is_err());
    }

    #[test]
    fn budget_evicts_cold_graphs_but_commits_still_succeed() {
        let mut store = GraphStore::new(StoreConfig {
            budget_bytes: Some(2048),
            admission: AdmissionPolicy::Lru,
        });
        // Ship several datasets; the tiny budget forces evictions, but
        // each in-flight shipment is protected so its commit succeeds.
        let mut ids = Vec::new();
        for n in 4..12 {
            ids.push(ship(&mut store, &[path_graph(n), cycle_graph(n + 1)]));
        }
        let stats = store.stats();
        assert!(stats.evictions > 0, "budget never bit: {stats:?}");
        assert!(stats.num_datasets == ids.len());
        // The latest dataset can still pin; the earliest cannot (evicted)
        // and reports which indices to re-ship.
        assert!(store.pin_dataset(ids.last().unwrap()).is_ok());
        store.unpin_dataset(ids.last().unwrap());
        let missing = store.pin_dataset(&ids[0]).unwrap_err();
        assert!(!missing.is_empty());
        assert!(store.stats().pin_misses >= 1);
        // Re-shipping exactly the missing graphs repairs the dataset.
        let graphs = [path_graph(4), cycle_graph(5)];
        let keys = dataset_keys(&graphs);
        let reship = store.begin(&ids[0], keys);
        assert_eq!(reship, missing);
        let shipped: Vec<Graph> = reship.iter().map(|&i| graphs[i].clone()).collect();
        store.insert_graphs(&ids[0], &reship, shipped).unwrap();
        store.commit(&ids[0]).unwrap();
        assert_eq!(
            store.pin_dataset(&ids[0]).unwrap().as_slice(),
            graphs.as_slice()
        );
        store.unpin_dataset(&ids[0]);
    }

    #[test]
    fn pinned_datasets_survive_budget_pressure() {
        let mut store = GraphStore::new(StoreConfig {
            budget_bytes: Some(1), // everything is over budget
            admission: AdmissionPolicy::Lru,
        });
        let graphs = [path_graph(5), star_graph(6)];
        let id = ship(&mut store, &graphs);
        let pinned = store.pin_dataset(&id).unwrap();
        // Budget pressure from another shipment cannot evict pinned graphs.
        ship(&mut store, &[cycle_graph(8)]);
        assert_eq!(pinned.as_slice(), graphs.as_slice());
        assert!(store.pin_dataset(&id).is_ok());
        store.unpin_dataset(&id);
        store.unpin_dataset(&id);
        // Once unpinned, the budget reclaims them.
        assert!(store.pin_dataset(&id).is_err());
    }

    #[test]
    fn forget_one_fakes_a_recoverable_miss() {
        let mut store = GraphStore::default();
        let graphs = [path_graph(4), cycle_graph(5)];
        let id = ship(&mut store, &graphs);
        let index = store.forget_one(&id).unwrap();
        let missing = store.pin_dataset(&id).unwrap_err();
        assert_eq!(missing, vec![index]);
        // Pinned graphs cannot be forgotten.
        let id2 = ship(&mut store, &[star_graph(6)]);
        let _pinned = store.pin_dataset(&id2).unwrap();
        assert_eq!(store.forget_one(&id2), None);
        store.unpin_dataset(&id2);
    }

    #[test]
    fn tinylfu_keeps_hot_graphs_over_cold_ones() {
        let mut store = GraphStore::new(StoreConfig {
            budget_bytes: Some(1600),
            admission: AdmissionPolicy::TinyLfu,
        });
        // A hot graph shared by many datasets accumulates frequency.
        let hot = path_graph(6);
        let mut hot_id = String::new();
        for n in 4..10 {
            hot_id = ship(&mut store, &[hot.clone(), cycle_graph(n)]);
        }
        // Under pressure the cold cycle graphs go first; the hot graph's
        // latest dataset stays pinnable.
        assert!(store.pin_dataset(&hot_id).is_ok());
        store.unpin_dataset(&hot_id);
        assert!(store.stats().evictions > 0);
    }

    #[test]
    fn store_config_reads_env_syntax() {
        // parse_byte_size integration, not env mutation (process-global).
        assert_eq!(parse_byte_size("64k"), Some(64 << 10));
        let config = StoreConfig::default();
        assert_eq!(config.budget_bytes, None);
        assert_eq!(config.admission, AdmissionPolicy::Lru);
    }
}
