//! Property-based tests for the graph substrate.

use haqjsk_graph::generators::{barabasi_albert, erdos_renyi, random_tree};
use haqjsk_graph::shortest_paths::{all_pairs_shortest_paths, diameter, INFINITE_DISTANCE};
use haqjsk_graph::subgraph::{depth_based_traces, expansion_subgraph};
use haqjsk_graph::{analysis, io, Graph};
use proptest::prelude::*;

fn random_graph_strategy() -> impl Strategy<Value = Graph> {
    (3usize..20, 0.05f64..0.8, 0u64..1000).prop_map(|(n, p, seed)| erdos_renyi(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Laplacian rows always sum to zero and the matrix is symmetric PSD-shaped.
    #[test]
    fn laplacian_row_sums_zero(g in random_graph_strategy()) {
        let l = g.laplacian();
        prop_assert!(l.is_symmetric(1e-12));
        for i in 0..g.num_vertices() {
            let s: f64 = (0..g.num_vertices()).map(|j| l[(i, j)]).sum();
            prop_assert!(s.abs() < 1e-12);
        }
    }

    /// Sum of degrees equals twice the number of edges.
    #[test]
    fn handshake_lemma(g in random_graph_strategy()) {
        let total: usize = g.degrees().iter().sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    /// Shortest path distances satisfy the triangle inequality and symmetry.
    #[test]
    fn shortest_paths_metric(g in random_graph_strategy()) {
        let d = all_pairs_shortest_paths(&g);
        let n = g.num_vertices();
        for i in 0..n {
            prop_assert_eq!(d[i][i], 0);
            for j in 0..n {
                prop_assert_eq!(d[i][j], d[j][i]);
                if d[i][j] != INFINITE_DISTANCE {
                    for k in 0..n {
                        if d[i][k] != INFINITE_DISTANCE && d[k][j] != INFINITE_DISTANCE {
                            prop_assert!(d[i][j] <= d[i][k] + d[k][j]);
                        }
                    }
                }
            }
        }
    }

    /// Permuting a graph preserves degree multiset, edge count and diameter.
    #[test]
    fn permutation_invariants(g in random_graph_strategy(), seed in 0u64..100) {
        let n = g.num_vertices();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed + 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let p = g.permute(&perm).unwrap();
        prop_assert_eq!(p.num_edges(), g.num_edges());
        let mut d1 = g.degrees();
        let mut d2 = p.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(diameter(&p), diameter(&g));
    }

    /// Expansion subgraphs are monotone in the layer parameter.
    #[test]
    fn expansion_subgraphs_monotone(g in random_graph_strategy(), root_frac in 0.0f64..1.0) {
        let root = ((g.num_vertices() - 1) as f64 * root_frac) as usize;
        let mut prev_vertices = 0usize;
        let mut prev_edges = 0usize;
        for k in 1..=4 {
            let (sub, verts) = expansion_subgraph(&g, root, k);
            prop_assert!(verts.len() >= prev_vertices);
            prop_assert!(sub.num_edges() >= prev_edges);
            prop_assert!(verts.contains(&root));
            prev_vertices = verts.len();
            prev_edges = sub.num_edges();
        }
    }

    /// Depth-based traces have the requested dimensionality and are finite
    /// and non-negative.
    #[test]
    fn depth_based_traces_shape(g in random_graph_strategy()) {
        let traces = depth_based_traces(&g, 4);
        prop_assert_eq!(traces.len(), g.num_vertices());
        for t in &traces {
            prop_assert_eq!(t.len(), 4);
            for &x in t {
                prop_assert!(x.is_finite());
                prop_assert!(x >= 0.0);
            }
        }
    }

    /// Text serialisation round-trips exactly.
    #[test]
    fn io_roundtrip(g in random_graph_strategy()) {
        let text = io::graph_to_string(&g);
        let back = io::graph_from_string(&text).unwrap();
        prop_assert_eq!(back, g);
    }

    /// Random trees always have n-1 edges and are connected.
    #[test]
    fn random_trees_are_trees(n in 2usize..40, seed in 0u64..500) {
        let t = random_tree(n, seed);
        prop_assert_eq!(t.num_edges(), n - 1);
        prop_assert!(analysis::is_connected(&t));
    }

    /// Barabasi-Albert graphs are connected and have no more than n*m edges.
    #[test]
    fn ba_graphs_connected(n in 5usize..40, m in 1usize..4, seed in 0u64..200) {
        let g = barabasi_albert(n, m, seed);
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert!(analysis::is_connected(&g));
        prop_assert!(g.num_edges() <= n * m + (m * (m + 1)) / 2);
    }
}
