//! Random and deterministic graph generators.
//!
//! The benchmark datasets of the paper are not redistributable inside this
//! repository, so the dataset crate synthesises stand-ins whose per-class
//! structure differs. The generators here are the building blocks: classic
//! deterministic families (paths, cycles, stars, grids, complete graphs),
//! Erdős–Rényi / Barabási–Albert / Watts–Strogatz random models, stochastic
//! block models, random regular graphs and random trees, plus perturbation
//! helpers (edge rewiring / addition / deletion).

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Deterministic path graph `P_n`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i).expect("indices in range");
    }
    g
}

/// Deterministic cycle graph `C_n` (empty for `n < 3`).
pub fn cycle_graph(n: usize) -> Graph {
    let mut g = path_graph(n);
    if n >= 3 {
        g.add_edge(n - 1, 0).expect("indices in range");
    }
    g
}

/// Star graph `S_n`: vertex 0 connected to all others.
pub fn star_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(0, i).expect("indices in range");
    }
    g
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j).expect("indices in range");
        }
    }
    g
}

/// `rows x cols` grid graph.
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1)).expect("in range");
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c)).expect("in range");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` random graph.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(i, j).expect("indices in range");
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment graph: starts from a small clique
/// of `m + 1` vertices and attaches each new vertex to `m` existing vertices
/// chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    let m = m.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let core = (m + 1).min(n.max(1));
    let mut g = complete_graph(core);
    if n <= core {
        return g;
    }
    // Repeated-endpoint list gives degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::new();
    for (u, v) in g.edges() {
        endpoints.push(u);
        endpoints.push(v);
    }
    for _ in core..n {
        let new = g.add_vertex();
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m.min(new) && guard < 50 * m {
            guard += 1;
            let pick = if endpoints.is_empty() {
                rng.gen_range(0..new)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if pick != new {
                targets.insert(pick);
            }
        }
        for &t in &targets {
            g.add_edge(new, t).expect("indices in range");
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    g
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex is
/// joined to its `k` nearest neighbours (k rounded down to even), with each
/// edge rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    let half = (k / 2).max(1);
    for i in 0..n {
        for j in 1..=half {
            let v = (i + j) % n;
            if i != v {
                g.add_edge(i, v).expect("indices in range");
            }
        }
    }
    // Rewire each original lattice edge with probability beta.
    for i in 0..n {
        for j in 1..=half {
            let v = (i + j) % n;
            if i == v || !g.has_edge(i, v) {
                continue;
            }
            if rng.gen::<f64>() < beta {
                let mut guard = 0;
                loop {
                    guard += 1;
                    if guard > 20 {
                        break;
                    }
                    let w = rng.gen_range(0..n);
                    if w != i && !g.has_edge(i, w) {
                        g.remove_edge(i, v).expect("edge exists");
                        g.add_edge(i, w).expect("indices in range");
                        break;
                    }
                }
            }
        }
    }
    g
}

/// Stochastic block model: `block_sizes[b]` vertices per block, edge
/// probability `p_in` inside a block and `p_out` across blocks.
pub fn stochastic_block_model(block_sizes: &[usize], p_in: f64, p_out: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = block_sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (b, &size) in block_sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(b, size));
    }
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = if block_of[i] == block_of[j] {
                p_in
            } else {
                p_out
            };
            if rng.gen::<f64>() < p {
                g.add_edge(i, j).expect("indices in range");
            }
        }
    }
    g
}

/// Random `d`-regular-ish graph via the configuration model with rejection of
/// self-loops and duplicate edges (the result is close to regular; exact
/// regularity is not required by any consumer).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    if n < 2 || d == 0 {
        return g;
    }
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(&mut rng);
    let mut attempts = 0;
    while stubs.len() >= 2 && attempts < 20 * n * d {
        attempts += 1;
        let a = stubs.len() - 1;
        let b = rng.gen_range(0..a);
        let (u, v) = (stubs[a], stubs[b]);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("indices in range");
            stubs.swap_remove(a);
            stubs.swap_remove(b.min(stubs.len().saturating_sub(1)));
        } else {
            stubs.shuffle(&mut rng);
        }
    }
    g
}

/// Uniform random labelled tree on `n` vertices (random Prüfer sequence).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    if n < 2 {
        return g;
    }
    if n == 2 {
        g.add_edge(0, 1).expect("in range");
        return g;
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut ptr = 0usize;
    let mut leaf = usize::MAX;
    // Standard O(n) Prüfer decoding with a moving pointer.
    let mut deg = degree.clone();
    for &v in &prufer {
        let u = if leaf != usize::MAX {
            let u = leaf;
            leaf = usize::MAX;
            u
        } else {
            while deg[ptr] != 1 {
                ptr += 1;
            }
            let u = ptr;
            ptr += 1;
            u
        };
        g.add_edge(u, v).expect("indices in range");
        deg[u] -= 1;
        deg[v] -= 1;
        if deg[v] == 1 && v < ptr {
            leaf = v;
        }
    }
    // Connect the final two leaves.
    let mut last: Vec<usize> = (0..n).filter(|&v| deg[v] == 1).collect();
    if last.len() >= 2 {
        let b = last.pop().unwrap();
        let a = last.pop().unwrap();
        g.add_edge(a, b).expect("indices in range");
    }
    g
}

/// Randomly rewires `count` existing edges of the graph (each rewiring keeps
/// one endpoint and moves the other to a uniformly random non-neighbour).
pub fn rewire_edges(graph: &Graph, count: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = graph.clone();
    let n = g.num_vertices();
    if n < 3 {
        return g;
    }
    for _ in 0..count {
        let edges = g.edges();
        if edges.is_empty() {
            break;
        }
        let &(u, v) = &edges[rng.gen_range(0..edges.len())];
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 20 {
                break;
            }
            let w = rng.gen_range(0..n);
            if w != u && w != v && !g.has_edge(u, w) {
                g.remove_edge(u, v).expect("edge exists");
                g.add_edge(u, w).expect("indices in range");
                break;
            }
        }
    }
    g
}

/// Adds `count` random non-existing edges.
pub fn add_random_edges(graph: &Graph, count: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = graph.clone();
    let n = g.num_vertices();
    if n < 2 {
        return g;
    }
    let mut added = 0;
    let mut guard = 0;
    while added < count && guard < 50 * (count + 1) {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("indices in range");
            added += 1;
        }
    }
    g
}

/// Removes `count` random existing edges.
pub fn remove_random_edges(graph: &Graph, count: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = graph.clone();
    for _ in 0..count {
        let edges = g.edges();
        if edges.is_empty() {
            break;
        }
        let &(u, v) = &edges[rng.gen_range(0..edges.len())];
        g.remove_edge(u, v).expect("edge exists");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::is_connected;

    #[test]
    fn deterministic_families() {
        assert_eq!(path_graph(5).num_edges(), 4);
        assert_eq!(cycle_graph(5).num_edges(), 5);
        assert_eq!(cycle_graph(2).num_edges(), 1);
        assert_eq!(star_graph(6).num_edges(), 5);
        assert_eq!(star_graph(6).degree(0), 5);
        assert_eq!(complete_graph(5).num_edges(), 10);
        let grid = grid_graph(3, 4);
        assert_eq!(grid.num_vertices(), 12);
        assert_eq!(grid.num_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn erdos_renyi_extremes_and_determinism() {
        let empty = erdos_renyi(10, 0.0, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, 1);
        assert_eq!(full.num_edges(), 45);
        let a = erdos_renyi(20, 0.3, 7);
        let b = erdos_renyi(20, 0.3, 7);
        assert_eq!(a.edges(), b.edges());
        let c = erdos_renyi(20, 0.3, 8);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn barabasi_albert_sizes_and_hubs() {
        let g = barabasi_albert(50, 2, 3);
        assert_eq!(g.num_vertices(), 50);
        assert!(g.num_edges() >= 49); // at least a tree's worth of edges
        assert!(is_connected(&g));
        // Preferential attachment should create at least one hub.
        let max_deg = g.degrees().into_iter().max().unwrap();
        assert!(max_deg >= 5, "expected a hub, max degree {max_deg}");
        // Small n edge cases.
        assert_eq!(barabasi_albert(3, 5, 1).num_vertices(), 3);
        assert_eq!(barabasi_albert(1, 1, 1).num_vertices(), 1);
    }

    #[test]
    fn watts_strogatz_keeps_degree_mass() {
        let g = watts_strogatz(30, 4, 0.0, 5);
        // Without rewiring this is the ring lattice: 2-degree per half, so 30*2 edges.
        assert_eq!(g.num_edges(), 60);
        let h = watts_strogatz(30, 4, 0.5, 5);
        // Rewiring preserves the number of edges.
        assert_eq!(h.num_edges(), 60);
        assert_eq!(watts_strogatz(1, 2, 0.1, 1).num_edges(), 0);
    }

    #[test]
    fn sbm_has_denser_blocks() {
        let g = stochastic_block_model(&[20, 20], 0.8, 0.05, 11);
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if (u < 20) == (v < 20) {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > across, "within {within} across {across}");
    }

    #[test]
    fn random_regular_close_to_regular() {
        let g = random_regular(20, 3, 9);
        assert_eq!(g.num_vertices(), 20);
        let max_deg = g.degrees().into_iter().max().unwrap();
        assert!(max_deg <= 3);
        assert!(g.num_edges() > 20); // close to 30
        assert_eq!(random_regular(1, 3, 1).num_edges(), 0);
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..5 {
            let g = random_tree(12, seed);
            assert_eq!(g.num_edges(), 11);
            assert!(is_connected(&g));
        }
        assert_eq!(random_tree(2, 0).num_edges(), 1);
        assert_eq!(random_tree(1, 0).num_edges(), 0);
    }

    #[test]
    fn perturbations_preserve_or_change_edge_counts() {
        let g = cycle_graph(12);
        let rew = rewire_edges(&g, 3, 2);
        assert_eq!(rew.num_edges(), g.num_edges());
        let more = add_random_edges(&g, 4, 2);
        assert_eq!(more.num_edges(), g.num_edges() + 4);
        let fewer = remove_random_edges(&g, 4, 2);
        assert_eq!(fewer.num_edges(), g.num_edges() - 4);
        // Removing more edges than exist empties the graph without panicking.
        let none = remove_random_edges(&g, 100, 2);
        assert_eq!(none.num_edges(), 0);
    }
}
