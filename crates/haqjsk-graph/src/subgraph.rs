//! `k`-layer expansion subgraphs.
//!
//! The depth-based (DB) vertex representations of the paper (Sec. III-A,
//! following Bai & Hancock's "Depth-based complexity traces of graphs") are
//! built from the family of `k`-layer expansion subgraphs rooted at each
//! vertex: the induced subgraph on all vertices within `k` hops of the root.
//! This module provides those subgraphs plus the entropy measure evaluated on
//! them.

use crate::graph::Graph;
use crate::shortest_paths::{bfs_distances, INFINITE_DISTANCE};

/// The `k`-layer expansion subgraph rooted at `root`: the subgraph induced by
/// all vertices within `k` hops of the root. Returns the subgraph together
/// with the original indices of its vertices (ascending).
pub fn expansion_subgraph(graph: &Graph, root: usize, k: usize) -> (Graph, Vec<usize>) {
    let dist = bfs_distances(graph, root);
    let vertices: Vec<usize> = dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INFINITE_DISTANCE && d <= k)
        .map(|(v, _)| v)
        .collect();
    graph
        .induced_subgraph(&vertices)
        .expect("vertices come from the same graph")
}

/// Shannon entropy of the steady-state random-walk distribution (degree
/// distribution) of a graph. This is the entropy measure used to summarise
/// each expansion subgraph into one number of the DB complexity trace.
pub fn steady_state_entropy(graph: &Graph) -> f64 {
    let degs: Vec<f64> = graph.degrees().iter().map(|&d| d as f64).collect();
    haqjsk_linalg::vector::shannon_entropy(&degs)
}

/// The depth-based complexity trace of a single vertex: for each layer
/// `k = 1..=max_k`, the Shannon entropy of the `k`-layer expansion subgraph
/// rooted at that vertex. The resulting `max_k`-dimensional vector is the
/// vectorial vertex representation `R^k(v)` aligned by the HAQJSK kernels.
pub fn depth_based_trace(graph: &Graph, root: usize, max_k: usize) -> Vec<f64> {
    // One BFS suffices: grow the vertex set layer by layer.
    let dist = bfs_distances(graph, root);
    let mut trace = Vec::with_capacity(max_k);
    for k in 1..=max_k {
        let vertices: Vec<usize> = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != INFINITE_DISTANCE && d <= k)
            .map(|(v, _)| v)
            .collect();
        let (sub, _) = graph
            .induced_subgraph(&vertices)
            .expect("vertices come from the same graph");
        trace.push(steady_state_entropy(&sub));
    }
    trace
}

/// Depth-based complexity traces for every vertex of the graph, as an
/// `n x max_k` table (row per vertex).
pub fn depth_based_traces(graph: &Graph, max_k: usize) -> Vec<Vec<f64>> {
    (0..graph.num_vertices())
        .map(|v| depth_based_trace(graph, v, max_k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn expansion_layers_grow() {
        let g = path(6);
        let (s1, v1) = expansion_subgraph(&g, 0, 1);
        assert_eq!(v1, vec![0, 1]);
        assert_eq!(s1.num_edges(), 1);
        let (s3, v3) = expansion_subgraph(&g, 0, 3);
        assert_eq!(v3, vec![0, 1, 2, 3]);
        assert_eq!(s3.num_edges(), 3);
        // Layer larger than the diameter captures the whole component.
        let (s9, v9) = expansion_subgraph(&g, 0, 9);
        assert_eq!(v9.len(), 6);
        assert_eq!(s9.num_edges(), 5);
    }

    #[test]
    fn expansion_ignores_other_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (_, verts) = expansion_subgraph(&g, 0, 10);
        assert_eq!(verts, vec![0, 1, 2]);
    }

    #[test]
    fn entropy_of_regular_graph_is_log_n() {
        // Cycle C4 is 2-regular: uniform degree distribution, entropy ln 4.
        let c4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!((steady_state_entropy(&c4) - 4.0_f64.ln()).abs() < 1e-12);
        // Star graph is maximally non-uniform among trees on 4 vertices.
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert!(steady_state_entropy(&star) < steady_state_entropy(&c4));
        // Edgeless graph has zero entropy.
        assert_eq!(steady_state_entropy(&Graph::new(3)), 0.0);
    }

    #[test]
    fn trace_is_monotone_in_information_for_path_interior() {
        let g = path(7);
        let t = depth_based_trace(&g, 3, 3);
        assert_eq!(t.len(), 3);
        // As layers expand, the subgraph grows and so does its entropy.
        assert!(t[0] <= t[1] + 1e-12);
        assert!(t[1] <= t[2] + 1e-12);
    }

    #[test]
    fn traces_distinguish_endpoints_from_centres() {
        let g = path(7);
        let traces = depth_based_traces(&g, 3);
        assert_eq!(traces.len(), 7);
        assert_eq!(traces[0].len(), 3);
        // The centre vertex sees more structure at layer 2 than an endpoint.
        assert!(traces[3][1] > traces[0][1]);
        // Symmetric vertices have identical traces.
        for k in 0..3 {
            assert!((traces[0][k] - traces[6][k]).abs() < 1e-12);
            assert!((traces[1][k] - traces[5][k]).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_layers_gives_empty_trace() {
        let g = path(4);
        assert!(depth_based_trace(&g, 0, 0).is_empty());
    }
}
