//! Graph isomorphism testing for small graphs.
//!
//! A backtracking matcher in the spirit of VF2: vertices are matched one at a
//! time in an order that respects degree-based candidate pruning, and partial
//! mappings are extended only when they preserve adjacency (and vertex labels
//! when present). The kernels themselves never need isomorphism tests, but a
//! graph library does — and the test suites use it to assert that isomorphic
//! graphs receive identical kernel values and that the generators' perturbation
//! helpers really change the structure.
//!
//! Intended for the small graphs of this workspace (tens of vertices); the
//! worst case is exponential, as it must be.

use crate::graph::Graph;

/// Attempts to find a vertex bijection from `a` onto `b` that preserves
/// adjacency (and labels when both graphs carry them). Returns the mapping
/// `mapping[u_of_a] = v_of_b` if one exists.
pub fn find_isomorphism(a: &Graph, b: &Graph) -> Option<Vec<usize>> {
    let n = a.num_vertices();
    if n != b.num_vertices() || a.num_edges() != b.num_edges() {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }
    // Quick invariant check: sorted degree sequences must match.
    let mut deg_a = a.degrees();
    let mut deg_b = b.degrees();
    deg_a.sort_unstable();
    deg_b.sort_unstable();
    if deg_a != deg_b {
        return None;
    }
    // Labels are only constrained when both graphs are labelled.
    let labels_a = a.labels().map(<[usize]>::to_vec);
    let labels_b = b.labels().map(<[usize]>::to_vec);
    if let (Some(la), Some(lb)) = (&labels_a, &labels_b) {
        let mut sa = la.clone();
        let mut sb = lb.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        if sa != sb {
            return None;
        }
    }

    // Match vertices of `a` in descending degree order (most constrained
    // first keeps the search tree small).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(a.degree(v)));

    let mut mapping = vec![usize::MAX; n];
    let mut used_b = vec![false; n];

    fn consistent(
        a: &Graph,
        b: &Graph,
        labels_a: &Option<Vec<usize>>,
        labels_b: &Option<Vec<usize>>,
        mapping: &[usize],
        u: usize,
        v: usize,
    ) -> bool {
        if a.degree(u) != b.degree(v) {
            return false;
        }
        if let (Some(la), Some(lb)) = (labels_a, labels_b) {
            if la[u] != lb[v] {
                return false;
            }
        }
        // Every already-mapped neighbour relation must be preserved both ways.
        for (w, &mapped) in mapping.iter().enumerate() {
            if mapped == usize::MAX {
                continue;
            }
            if a.has_edge(u, w) != b.has_edge(v, mapped) {
                return false;
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        a: &Graph,
        b: &Graph,
        labels_a: &Option<Vec<usize>>,
        labels_b: &Option<Vec<usize>>,
        order: &[usize],
        depth: usize,
        mapping: &mut Vec<usize>,
        used_b: &mut Vec<bool>,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let u = order[depth];
        for v in 0..b.num_vertices() {
            if used_b[v] || !consistent(a, b, labels_a, labels_b, mapping, u, v) {
                continue;
            }
            mapping[u] = v;
            used_b[v] = true;
            if backtrack(a, b, labels_a, labels_b, order, depth + 1, mapping, used_b) {
                return true;
            }
            mapping[u] = usize::MAX;
            used_b[v] = false;
        }
        false
    }

    if backtrack(
        a,
        b,
        &labels_a,
        &labels_b,
        &order,
        0,
        &mut mapping,
        &mut used_b,
    ) {
        Some(mapping)
    } else {
        None
    }
}

/// Whether two graphs are isomorphic (label-respecting when both graphs carry
/// labels).
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    find_isomorphism(a, b).is_some()
}

/// Verifies that a candidate mapping is a valid isomorphism from `a` to `b`.
pub fn is_valid_isomorphism(a: &Graph, b: &Graph, mapping: &[usize]) -> bool {
    let n = a.num_vertices();
    if mapping.len() != n || b.num_vertices() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in mapping {
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    for u in 0..n {
        for w in 0..n {
            if a.has_edge(u, w) != b.has_edge(mapping[u], mapping[w]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, erdos_renyi, path_graph, star_graph};

    #[test]
    fn graph_is_isomorphic_to_its_own_permutation() {
        let g = erdos_renyi(9, 0.4, 3);
        let perm: Vec<usize> = (0..9).rev().collect();
        let h = g.permute(&perm).unwrap();
        let mapping = find_isomorphism(&g, &h).expect("isomorphic by construction");
        assert!(is_valid_isomorphism(&g, &h, &mapping));
        assert!(are_isomorphic(&g, &h));
    }

    #[test]
    fn non_isomorphic_graphs_are_rejected() {
        // Same vertex and edge counts, different structure: path P4 plus an
        // isolated edge vs a 6-cycle... use simpler: star vs path of the same
        // size (different degree sequences).
        assert!(!are_isomorphic(&star_graph(6), &path_graph(6)));
        // Same degree sequence (all 2-regular) but different component
        // structure: C6 vs two triangles.
        let c6 = cycle_graph(6);
        let mut two_triangles = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            two_triangles.add_edge(u, v).unwrap();
        }
        assert!(!are_isomorphic(&c6, &two_triangles));
        // Different sizes fail fast.
        assert!(!are_isomorphic(&cycle_graph(5), &cycle_graph(6)));
    }

    #[test]
    fn labels_constrain_the_matching() {
        let mut a = path_graph(3);
        let mut b = path_graph(3);
        a.set_labels(vec![1, 2, 1]).unwrap();
        b.set_labels(vec![1, 2, 1]).unwrap();
        assert!(are_isomorphic(&a, &b));
        // Incompatible label multiset: not isomorphic as labelled graphs.
        b.set_labels(vec![2, 1, 2]).unwrap();
        assert!(!are_isomorphic(&a, &b));
        // Same multiset but placed so no adjacency-preserving mapping exists:
        // centre label differs.
        let mut c = path_graph(3);
        c.set_labels(vec![2, 1, 1]).unwrap();
        assert!(!are_isomorphic(&a, &c));
    }

    #[test]
    fn empty_and_trivial_graphs() {
        assert!(are_isomorphic(&Graph::new(0), &Graph::new(0)));
        assert!(are_isomorphic(&Graph::new(3), &Graph::new(3)));
        assert!(!are_isomorphic(&Graph::new(3), &Graph::new(4)));
    }

    #[test]
    fn validity_checker_rejects_bad_mappings() {
        let g = cycle_graph(5);
        let h = cycle_graph(5);
        assert!(!is_valid_isomorphism(&g, &h, &[0, 0, 1, 2, 3]));
        assert!(!is_valid_isomorphism(&g, &h, &[0, 1, 2]));
        // Rotation is a valid automorphism of the cycle.
        assert!(is_valid_isomorphism(&g, &h, &[1, 2, 3, 4, 0]));
        // Swapping two non-adjacent vertices of a cycle is not.
        assert!(!is_valid_isomorphism(&g, &h, &[2, 1, 0, 3, 4]));
    }
}
