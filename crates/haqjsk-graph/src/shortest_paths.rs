//! Breadth-first and all-pairs shortest paths on unweighted graphs.
//!
//! Shortest-path structure enters the reproduction in three places: the
//! depth-based vertex representations expand `k`-layer subgraphs by hop
//! distance, the shortest-path baseline kernel (SPGK) counts path-length
//! co-occurrences, and the parameter `K` of the HAQJSK kernels is tied to the
//! greatest shortest-path length over the dataset.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Marker distance for vertex pairs in different connected components.
pub const INFINITE_DISTANCE: usize = usize::MAX;

/// Hop distances from `source` to every vertex (BFS). Unreachable vertices
/// get [`INFINITE_DISTANCE`].
pub fn bfs_distances(graph: &Graph, source: usize) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut dist = vec![INFINITE_DISTANCE; n];
    if source >= n {
        return dist;
    }
    dist[source] = 0;
    let mut queue = VecDeque::with_capacity(n);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in graph.neighbors(u) {
            if dist[v] == INFINITE_DISTANCE {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All-pairs shortest path distances as a dense `n x n` table of hop counts.
pub fn all_pairs_shortest_paths(graph: &Graph) -> Vec<Vec<usize>> {
    (0..graph.num_vertices())
        .map(|s| bfs_distances(graph, s))
        .collect()
}

/// The eccentricity of a vertex: the greatest finite distance from it, or 0
/// for an isolated vertex with no reachable peers.
pub fn eccentricity(graph: &Graph, vertex: usize) -> usize {
    bfs_distances(graph, vertex)
        .into_iter()
        .filter(|&d| d != INFINITE_DISTANCE)
        .max()
        .unwrap_or(0)
}

/// The diameter restricted to reachable pairs (the greatest finite shortest
/// path length in the graph). Returns 0 for edgeless graphs.
pub fn diameter(graph: &Graph) -> usize {
    (0..graph.num_vertices())
        .map(|v| eccentricity(graph, v))
        .max()
        .unwrap_or(0)
}

/// The greatest finite shortest-path length over a whole set of graphs. The
/// paper sets the largest expansion-subgraph layer `K` to this value.
pub fn greatest_shortest_path_length(graphs: &[Graph]) -> usize {
    graphs.iter().map(diameter).max().unwrap_or(0)
}

/// Vertices at exactly distance `k` from `source`.
pub fn vertices_at_distance(graph: &Graph, source: usize, k: usize) -> Vec<usize> {
    bfs_distances(graph, source)
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d == k)
        .map(|(v, _)| v)
        .collect()
}

/// Vertices within distance `k` of `source` (including the source itself).
pub fn vertices_within_distance(graph: &Graph, source: usize, k: usize) -> Vec<usize> {
    bfs_distances(graph, source)
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d != INFINITE_DISTANCE && d <= k)
        .map(|(v, _)| v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, 2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INFINITE_DISTANCE);
        assert_eq!(d[3], INFINITE_DISTANCE);
        // Out-of-range source yields all-infinite distances.
        let d_bad = bfs_distances(&g, 10);
        assert!(d_bad.iter().all(|&x| x == INFINITE_DISTANCE));
    }

    #[test]
    fn all_pairs_symmetry() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let d = all_pairs_shortest_paths(&g);
        for i in 0..4 {
            assert_eq!(d[i][i], 0);
            for j in 0..4 {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
        assert_eq!(d[0][2], 2);
    }

    #[test]
    fn eccentricity_and_diameter() {
        let g = path(5);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        assert_eq!(diameter(&g), 4);
        assert_eq!(diameter(&Graph::new(3)), 0);
        // Diameter ignores unreachable pairs but keeps the largest finite one.
        let disc = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(diameter(&disc), 2);
    }

    #[test]
    fn greatest_over_dataset() {
        let graphs = vec![path(3), path(6), path(2)];
        assert_eq!(greatest_shortest_path_length(&graphs), 5);
        assert_eq!(greatest_shortest_path_length(&[]), 0);
    }

    #[test]
    fn distance_shells() {
        let g = path(5);
        assert_eq!(vertices_at_distance(&g, 0, 2), vec![2]);
        assert_eq!(vertices_within_distance(&g, 0, 2), vec![0, 1, 2]);
        assert_eq!(vertices_at_distance(&g, 2, 1), vec![1, 3]);
        // The whole component is within a large radius.
        assert_eq!(vertices_within_distance(&g, 0, 100).len(), 5);
    }
}
