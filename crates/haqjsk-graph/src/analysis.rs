//! Structural analysis helpers: connectivity, components, degree statistics,
//! clustering coefficients and triangle counts.
//!
//! These are used by the dataset synthesiser (to report the Table II-style
//! statistics of the generated corpora) and by tests that sanity-check the
//! generators.

use crate::graph::Graph;
use crate::shortest_paths::{bfs_distances, INFINITE_DISTANCE};

/// Connected components as a vector of vertex lists (each sorted ascending).
pub fn connected_components(graph: &Graph) -> Vec<Vec<usize>> {
    let n = graph.num_vertices();
    let mut component = vec![usize::MAX; n];
    let mut components = Vec::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        component[start] = id;
        while let Some(u) = stack.pop() {
            members.push(u);
            for v in graph.neighbors(u) {
                if component[v] == usize::MAX {
                    component[v] = id;
                    stack.push(v);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// Whether the graph is connected (single component; the empty graph counts
/// as connected).
pub fn is_connected(graph: &Graph) -> bool {
    graph.num_vertices() == 0 || connected_components(graph).len() == 1
}

/// The largest connected component as an induced subgraph (with original
/// vertex indices).
pub fn largest_component(graph: &Graph) -> (Graph, Vec<usize>) {
    let components = connected_components(graph);
    let largest = components
        .into_iter()
        .max_by_key(|c| c.len())
        .unwrap_or_default();
    graph
        .induced_subgraph(&largest)
        .expect("component vertices are valid")
}

/// Number of triangles in the graph.
pub fn triangle_count(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    let mut count = 0usize;
    for u in 0..n {
        let neigh: Vec<usize> = graph.neighbors(u).filter(|&v| v > u).collect();
        for (i, &v) in neigh.iter().enumerate() {
            for &w in &neigh[i + 1..] {
                if graph.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Global clustering coefficient: `3 * triangles / open-and-closed wedges`.
/// Returns 0 when the graph has no wedges.
pub fn clustering_coefficient(graph: &Graph) -> f64 {
    let triangles = triangle_count(graph);
    let wedges: usize = graph
        .degrees()
        .iter()
        .map(|&d| if d >= 2 { d * (d - 1) / 2 } else { 0 })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Average degree of the graph; zero for the empty graph.
pub fn average_degree(graph: &Graph) -> f64 {
    if graph.num_vertices() == 0 {
        return 0.0;
    }
    2.0 * graph.num_edges() as f64 / graph.num_vertices() as f64
}

/// Average shortest-path length over reachable pairs; zero if no pair is
/// reachable.
pub fn average_path_length(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    let mut total = 0usize;
    let mut pairs = 0usize;
    for u in 0..n {
        for (v, d) in bfs_distances(graph, u).into_iter().enumerate() {
            if v != u && d != INFINITE_DISTANCE {
                total += d;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// Summary statistics of a collection of graphs, mirroring the columns of the
/// paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStatistics {
    /// Number of graphs.
    pub num_graphs: usize,
    /// Maximum vertex count over the corpus.
    pub max_vertices: usize,
    /// Mean vertex count.
    pub mean_vertices: f64,
    /// Mean edge count.
    pub mean_edges: f64,
}

/// Computes [`CorpusStatistics`] for a set of graphs.
pub fn corpus_statistics(graphs: &[Graph]) -> CorpusStatistics {
    let num_graphs = graphs.len();
    let max_vertices = graphs.iter().map(Graph::num_vertices).max().unwrap_or(0);
    let mean_vertices = if num_graphs == 0 {
        0.0
    } else {
        graphs.iter().map(|g| g.num_vertices() as f64).sum::<f64>() / num_graphs as f64
    };
    let mean_edges = if num_graphs == 0 {
        0.0
    } else {
        graphs.iter().map(|g| g.num_edges() as f64).sum::<f64>() / num_graphs as f64
    };
    CorpusStatistics {
        num_graphs,
        max_vertices,
        mean_vertices,
        mean_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path_graph(4)));
        assert!(is_connected(&Graph::new(0)));
        let (largest, idx) = largest_component(&g);
        assert_eq!(largest.num_vertices(), 3);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&complete_graph(4)), 4);
        assert_eq!(triangle_count(&cycle_graph(5)), 0);
        assert_eq!(triangle_count(&complete_graph(3)), 1);
        assert_eq!(triangle_count(&star_graph(5)), 0);
    }

    #[test]
    fn clustering_coefficients() {
        assert!((clustering_coefficient(&complete_graph(5)) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficient(&star_graph(5)), 0.0);
        assert_eq!(clustering_coefficient(&Graph::new(3)), 0.0);
    }

    #[test]
    fn degree_and_path_statistics() {
        let p = path_graph(4);
        assert!((average_degree(&p) - 1.5).abs() < 1e-12);
        assert_eq!(average_degree(&Graph::new(0)), 0.0);
        // P4 distances: pairs (1,2,3, 1,2, 1) * 2 directions / 12 pairs = 10/6
        assert!((average_path_length(&p) - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(average_path_length(&Graph::new(3)), 0.0);
    }

    #[test]
    fn corpus_statistics_match_hand_computation() {
        let graphs = vec![path_graph(3), complete_graph(5), cycle_graph(4)];
        let stats = corpus_statistics(&graphs);
        assert_eq!(stats.num_graphs, 3);
        assert_eq!(stats.max_vertices, 5);
        assert!((stats.mean_vertices - 4.0).abs() < 1e-12);
        assert!((stats.mean_edges - (2.0 + 10.0 + 4.0) / 3.0).abs() < 1e-12);
        let empty = corpus_statistics(&[]);
        assert_eq!(empty.num_graphs, 0);
        assert_eq!(empty.max_vertices, 0);
    }
}
