//! Error type for graph construction and manipulation.

use std::fmt;

/// Errors produced by graph construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A vertex index was outside `0..n`.
    VertexOutOfBounds {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// A self-loop was requested on a simple graph.
    SelfLoop(usize),
    /// Parsing a serialised graph failed.
    Parse(String),
    /// An argument was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of bounds for graph with {num_vertices} vertices"
            ),
            GraphError::SelfLoop(v) => write!(f, "self loop on vertex {v} is not allowed"),
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfBounds {
            vertex: 9,
            num_vertices: 3,
        };
        assert!(e.to_string().contains('9'));
        assert!(GraphError::SelfLoop(2).to_string().contains('2'));
        assert!(GraphError::Parse("bad".into()).to_string().contains("bad"));
        assert!(GraphError::InvalidArgument("x".into())
            .to_string()
            .contains('x'));
    }
}
