//! # haqjsk-graph
//!
//! Graph substrate for the HAQJSK reproduction.
//!
//! The paper works with un-attributed graphs (optionally carrying discrete
//! vertex labels, which the baseline Weisfeiler–Lehman and shortest-path
//! kernels can exploit). This crate provides:
//!
//! * the [`Graph`] type with adjacency / degree / Laplacian matrix views,
//! * breadth-first and all-pairs shortest paths ([`shortest_paths`]),
//! * `k`-layer expansion subgraphs rooted at a vertex ([`subgraph`]), the
//!   ingredient of the depth-based vertex representations,
//! * random graph generators used to synthesise the benchmark datasets
//!   ([`generators`]),
//! * structural analysis helpers (degree statistics, connectivity,
//!   diameter) ([`analysis`]),
//! * a simple text serialisation format ([`io`]).

pub mod analysis;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod isomorphism;
pub mod shortest_paths;
pub mod subgraph;

pub use error::GraphError;
pub use graph::Graph;
pub use isomorphism::{are_isomorphic, find_isomorphism};
pub use shortest_paths::{all_pairs_shortest_paths, bfs_distances, INFINITE_DISTANCE};

/// Convenience result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
