//! Plain-text serialisation of graphs and labelled graph collections.
//!
//! The format is intentionally simple and line-oriented so that generated
//! datasets can be dumped, inspected and re-loaded without any binary
//! tooling:
//!
//! ```text
//! graph <num_vertices>
//! labels <l0> <l1> ... <l_{n-1}>      # optional line
//! edge <u> <v>
//! edge <u> <v>
//! end
//! ```
//!
//! A dataset file is a sequence of `class <c>` + graph blocks.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::Result;
use std::fmt::Write as _;

/// Serialises a single graph to the text format.
pub fn graph_to_string(graph: &Graph) -> String {
    let mut out = String::new();
    writeln!(out, "graph {}", graph.num_vertices()).expect("writing to String cannot fail");
    if let Some(labels) = graph.labels() {
        let joined: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
        writeln!(out, "labels {}", joined.join(" ")).expect("writing to String cannot fail");
    }
    for (u, v) in graph.edges() {
        writeln!(out, "edge {u} {v}").expect("writing to String cannot fail");
    }
    out.push_str("end\n");
    out
}

/// Parses a single graph from the text format.
pub fn graph_from_string(text: &str) -> Result<Graph> {
    let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Parse("empty input".to_string()))?;
    let n: usize = header
        .strip_prefix("graph ")
        .ok_or_else(|| GraphError::Parse(format!("expected 'graph <n>', got '{header}'")))?
        .trim()
        .parse()
        .map_err(|e| GraphError::Parse(format!("bad vertex count: {e}")))?;
    let mut graph = Graph::new(n);
    for line in lines {
        if line == "end" {
            return Ok(graph);
        } else if let Some(rest) = line.strip_prefix("labels ") {
            let labels: std::result::Result<Vec<usize>, _> =
                rest.split_whitespace().map(str::parse).collect();
            let labels = labels.map_err(|e| GraphError::Parse(format!("bad label: {e}")))?;
            graph.set_labels(labels)?;
        } else if let Some(rest) = line.strip_prefix("edge ") {
            let mut parts = rest.split_whitespace();
            let u: usize = parts
                .next()
                .ok_or_else(|| GraphError::Parse("edge missing endpoints".to_string()))?
                .parse()
                .map_err(|e| GraphError::Parse(format!("bad edge endpoint: {e}")))?;
            let v: usize = parts
                .next()
                .ok_or_else(|| GraphError::Parse("edge missing second endpoint".to_string()))?
                .parse()
                .map_err(|e| GraphError::Parse(format!("bad edge endpoint: {e}")))?;
            graph.add_edge(u, v)?;
        } else {
            return Err(GraphError::Parse(format!("unrecognised line '{line}'")));
        }
    }
    Err(GraphError::Parse("missing 'end' terminator".to_string()))
}

/// Serialises a labelled collection of graphs (a classification dataset).
pub fn dataset_to_string(graphs: &[Graph], classes: &[usize]) -> Result<String> {
    if graphs.len() != classes.len() {
        return Err(GraphError::InvalidArgument(format!(
            "{} graphs but {} class labels",
            graphs.len(),
            classes.len()
        )));
    }
    let mut out = String::new();
    for (graph, class) in graphs.iter().zip(classes.iter()) {
        writeln!(out, "class {class}").expect("writing to String cannot fail");
        out.push_str(&graph_to_string(graph));
    }
    Ok(out)
}

/// Parses a labelled collection of graphs.
pub fn dataset_from_string(text: &str) -> Result<(Vec<Graph>, Vec<usize>)> {
    let mut graphs = Vec::new();
    let mut classes = Vec::new();
    let mut current_class: Option<usize> = None;
    let mut buffer = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("class ") {
            current_class = Some(
                rest.trim()
                    .parse()
                    .map_err(|e| GraphError::Parse(format!("bad class: {e}")))?,
            );
        } else {
            buffer.push_str(trimmed);
            buffer.push('\n');
            if trimmed == "end" {
                let class = current_class.ok_or_else(|| {
                    GraphError::Parse("graph block without preceding class".to_string())
                })?;
                graphs.push(graph_from_string(&buffer)?);
                classes.push(class);
                buffer.clear();
            }
        }
    }
    if !buffer.trim().is_empty() {
        return Err(GraphError::Parse("trailing unterminated graph".to_string()));
    }
    Ok((graphs, classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle_graph, path_graph};

    #[test]
    fn graph_roundtrip_without_labels() {
        let g = cycle_graph(5);
        let text = graph_to_string(&g);
        let back = graph_from_string(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn graph_roundtrip_with_labels() {
        let mut g = path_graph(4);
        g.set_labels(vec![3, 1, 4, 1]).unwrap();
        let text = graph_to_string(&g);
        assert!(text.contains("labels 3 1 4 1"));
        let back = graph_from_string(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(graph_from_string("").is_err());
        assert!(graph_from_string("graph x\nend\n").is_err());
        assert!(graph_from_string("graph 2\nedge 0\nend\n").is_err());
        assert!(graph_from_string("graph 2\nbogus line\nend\n").is_err());
        assert!(graph_from_string("graph 2\nedge 0 1\n").is_err());
        assert!(graph_from_string("nonsense 2\nend\n").is_err());
        // Edge referencing a missing vertex surfaces the graph error.
        assert!(graph_from_string("graph 2\nedge 0 5\nend\n").is_err());
    }

    #[test]
    fn dataset_roundtrip() {
        let graphs = vec![path_graph(3), cycle_graph(4), path_graph(2)];
        let classes = vec![0, 1, 0];
        let text = dataset_to_string(&graphs, &classes).unwrap();
        let (back_graphs, back_classes) = dataset_from_string(&text).unwrap();
        assert_eq!(back_graphs, graphs);
        assert_eq!(back_classes, classes);
    }

    #[test]
    fn dataset_errors() {
        assert!(dataset_to_string(&[path_graph(2)], &[0, 1]).is_err());
        assert!(dataset_from_string("graph 2\nedge 0 1\nend\n").is_err());
        assert!(dataset_from_string("class 1\ngraph 2\nedge 0 1\n").is_err());
    }
}
