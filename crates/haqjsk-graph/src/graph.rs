//! The core undirected graph type.
//!
//! Graphs in the paper are simple, undirected and un-attributed; several of
//! the baseline kernels (WLSK, SPGK) additionally consume discrete vertex
//! labels, and the paper substitutes vertex degrees when a dataset carries no
//! labels. [`Graph`] therefore stores an adjacency structure plus optional
//! integer labels per vertex, and exposes the matrix views (adjacency, degree,
//! Laplacian, transition) that the quantum-walk machinery consumes.

use crate::error::GraphError;
use crate::Result;
use haqjsk_linalg::Matrix;
use std::collections::BTreeSet;

/// A simple undirected graph with optional integer vertex labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_vertices: usize,
    /// Sorted adjacency sets, one per vertex.
    adjacency: Vec<BTreeSet<usize>>,
    /// Optional discrete vertex labels (e.g. atom types). When `None`, the
    /// degree of each vertex is used wherever a label is required, following
    /// the paper's convention for unlabelled datasets.
    labels: Option<Vec<usize>>,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            num_vertices: n,
            adjacency: vec![BTreeSet::new(); n],
            labels: None,
        }
    }

    /// Creates a graph from an edge list over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Creates a graph from a symmetric 0/1 adjacency matrix; any strictly
    /// positive entry is treated as an edge.
    pub fn from_adjacency_matrix(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(GraphError::InvalidArgument(format!(
                "adjacency matrix must be square, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut g = Graph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if a[(i, j)] > 0.0 || a[(j, i)] > 0.0 {
                    g.add_edge(i, j)?;
                }
            }
        }
        Ok(g)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Adds an undirected edge. Self-loops are rejected, duplicate edges are
    /// silently ignored (the graph is simple).
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.adjacency[u].insert(v);
        self.adjacency[v].insert(u);
        Ok(())
    }

    /// Removes an undirected edge if present; returns whether it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<bool> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let existed = self.adjacency[u].remove(&v);
        self.adjacency[v].remove(&u);
        Ok(existed)
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.num_vertices && v < self.num_vertices && self.adjacency[u].contains(&v)
    }

    /// Adds an extra isolated vertex, returning its index.
    pub fn add_vertex(&mut self) -> usize {
        self.adjacency.push(BTreeSet::new());
        if let Some(labels) = &mut self.labels {
            labels.push(0);
        }
        self.num_vertices += 1;
        self.num_vertices - 1
    }

    /// Neighbours of `u` in ascending order.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency[u].iter().copied()
    }

    /// Degree of vertex `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// Degrees of every vertex.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_vertices).map(|u| self.degree(u)).collect()
    }

    /// All edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices {
            for &v in &self.adjacency[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Sets the full vertex label vector. The length must match the number of
    /// vertices.
    pub fn set_labels(&mut self, labels: Vec<usize>) -> Result<()> {
        if labels.len() != self.num_vertices {
            return Err(GraphError::InvalidArgument(format!(
                "label vector length {} does not match {} vertices",
                labels.len(),
                self.num_vertices
            )));
        }
        self.labels = Some(labels);
        Ok(())
    }

    /// Returns the explicit vertex labels if present.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Returns vertex labels, substituting the degree for unlabelled graphs —
    /// the convention the paper uses for the unlabelled benchmark datasets.
    pub fn effective_labels(&self) -> Vec<usize> {
        match &self.labels {
            Some(l) => l.clone(),
            None => self.degrees(),
        }
    }

    /// Dense adjacency matrix `A`.
    pub fn adjacency_matrix(&self) -> Matrix {
        let n = self.num_vertices;
        let mut a = Matrix::zeros(n, n);
        for u in 0..n {
            for &v in &self.adjacency[u] {
                a[(u, v)] = 1.0;
            }
        }
        a
    }

    /// Diagonal degree matrix `D`.
    pub fn degree_matrix(&self) -> Matrix {
        let degs: Vec<f64> = self.degrees().iter().map(|&d| d as f64).collect();
        Matrix::from_diag(&degs)
    }

    /// Combinatorial Laplacian `L = D - A`, the Hamiltonian of the CTQW in
    /// the paper (Sec. II-A).
    pub fn laplacian(&self) -> Matrix {
        &self.degree_matrix() - &self.adjacency_matrix()
    }

    /// Symmetric normalised Laplacian `I - D^{-1/2} A D^{-1/2}` (isolated
    /// vertices contribute zero rows/columns in the normalised adjacency).
    pub fn normalized_laplacian(&self) -> Matrix {
        let n = self.num_vertices;
        let a = self.adjacency_matrix();
        let degs = self.degrees();
        let mut l = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                if a[(i, j)] > 0.0 && degs[i] > 0 && degs[j] > 0 {
                    let v = a[(i, j)] / ((degs[i] as f64).sqrt() * (degs[j] as f64).sqrt());
                    l[(i, j)] -= v;
                }
            }
        }
        l
    }

    /// Row-stochastic transition matrix of the classical random walk
    /// (`P = D^{-1} A`); rows of isolated vertices stay zero.
    pub fn transition_matrix(&self) -> Matrix {
        let n = self.num_vertices;
        let mut p = Matrix::zeros(n, n);
        for u in 0..n {
            let d = self.degree(u);
            if d == 0 {
                continue;
            }
            for &v in &self.adjacency[u] {
                p[(u, v)] = 1.0 / d as f64;
            }
        }
        p
    }

    /// The degree distribution normalised to a probability vector. This is
    /// the distribution whose square root initialises the CTQW amplitude
    /// vector in the paper (`α_u(0) ∝ sqrt(d_u)` after normalisation).
    pub fn degree_distribution(&self) -> Vec<f64> {
        let degs = self.degrees();
        let total: usize = degs.iter().sum();
        if total == 0 {
            // No edges at all: fall back to the uniform distribution so the
            // CTQW still has a valid initial state.
            return vec![1.0 / self.num_vertices.max(1) as f64; self.num_vertices];
        }
        degs.iter().map(|&d| d as f64 / total as f64).collect()
    }

    /// Returns a relabelled copy of the graph: vertex `i` of the new graph is
    /// vertex `perm[i]` of the old one. Labels are carried along.
    pub fn permute(&self, perm: &[usize]) -> Result<Graph> {
        if perm.len() != self.num_vertices {
            return Err(GraphError::InvalidArgument(format!(
                "permutation length {} does not match {} vertices",
                perm.len(),
                self.num_vertices
            )));
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(GraphError::InvalidArgument(
                    "not a valid permutation".to_string(),
                ));
            }
            seen[p] = true;
        }
        // inverse[old] = new index of old vertex
        let mut inverse = vec![0usize; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inverse[old] = new;
        }
        let mut g = Graph::new(self.num_vertices);
        for (u, v) in self.edges() {
            g.add_edge(inverse[u], inverse[v])?;
        }
        if let Some(labels) = &self.labels {
            let new_labels: Vec<usize> = perm.iter().map(|&old| labels[old]).collect();
            g.set_labels(new_labels)?;
        }
        Ok(g)
    }

    /// Returns the vertex-induced subgraph on `vertices` (indices into this
    /// graph), together with the mapping from new indices to old ones.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> Result<(Graph, Vec<usize>)> {
        for &v in vertices {
            self.check_vertex(v)?;
        }
        let mut sorted: Vec<usize> = vertices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let index_of = |v: usize| sorted.binary_search(&v).ok();
        let mut g = Graph::new(sorted.len());
        for (new_u, &old_u) in sorted.iter().enumerate() {
            for &old_v in &self.adjacency[old_u] {
                if let Some(new_v) = index_of(old_v) {
                    if new_u < new_v {
                        g.add_edge(new_u, new_v)?;
                    }
                }
            }
        }
        if let Some(labels) = &self.labels {
            g.set_labels(sorted.iter().map(|&v| labels[v]).collect())?;
        }
        Ok((g, sorted))
    }

    /// The complement graph (no self loops).
    pub fn complement(&self) -> Graph {
        let n = self.num_vertices;
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v).expect("indices are in range");
                }
            }
        }
        if let Some(labels) = &self.labels {
            g.set_labels(labels.clone()).expect("length matches");
        }
        g
    }

    /// Graph density `2m / (n (n-1))`; zero for graphs with fewer than two
    /// vertices.
    pub fn density(&self) -> f64 {
        let n = self.num_vertices;
        if n < 2 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / (n as f64 * (n as f64 - 1.0))
    }

    fn check_vertex(&self, v: usize) -> Result<()> {
        if v >= self.num_vertices {
            Err(GraphError::VertexOutOfBounds {
                vertex: v,
                num_vertices: self.num_vertices,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
    }

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degrees(), vec![1, 2, 1]);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 3).unwrap();
        // Duplicate edges are ignored.
        g.add_edge(3, 0).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(0, 3).unwrap());
        assert!(!g.remove_edge(0, 3).unwrap());
        assert_eq!(g.num_edges(), 0);
        assert!(g.add_edge(0, 0).is_err());
        assert!(g.add_edge(0, 9).is_err());
    }

    #[test]
    fn add_vertex_grows_graph() {
        let mut g = path3();
        g.set_labels(vec![1, 2, 3]).unwrap();
        let v = g.add_vertex();
        assert_eq!(v, 3);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.labels().unwrap().len(), 4);
    }

    #[test]
    fn matrices_of_path_graph() {
        let g = path3();
        let a = g.adjacency_matrix();
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(0, 2)], 0.0);
        assert!(a.is_symmetric(0.0));
        let d = g.degree_matrix();
        assert_eq!(d[(1, 1)], 2.0);
        let l = g.laplacian();
        assert_eq!(l[(1, 1)], 2.0);
        assert_eq!(l[(0, 1)], -1.0);
        // Laplacian rows sum to zero.
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| l[(i, j)]).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn normalized_laplacian_diagonal() {
        let g = triangle();
        let l = g.normalized_laplacian();
        for i in 0..3 {
            assert!((l[(i, i)] - 1.0).abs() < 1e-12);
        }
        assert!((l[(0, 1)] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn transition_matrix_rows_are_stochastic() {
        let g = path3();
        let p = g.transition_matrix();
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| p[(i, j)]).sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Isolated vertex keeps a zero row.
        let mut g2 = Graph::new(2);
        g2.add_edge(0, 1).unwrap();
        let g3 = {
            let mut g = Graph::new(3);
            g.add_edge(0, 1).unwrap();
            g
        };
        let p3 = g3.transition_matrix();
        let s: f64 = (0..3).map(|j| p3[(2, j)]).sum();
        assert_eq!(s, 0.0);
        let _ = g2;
    }

    #[test]
    fn degree_distribution_sums_to_one() {
        let g = path3();
        let p = g.degree_distribution();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
        // Edgeless graph falls back to uniform.
        let empty = Graph::new(4);
        let q = empty.degree_distribution();
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((q[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn labels_explicit_and_effective() {
        let mut g = path3();
        assert!(g.labels().is_none());
        assert_eq!(g.effective_labels(), vec![1, 2, 1]);
        g.set_labels(vec![7, 8, 9]).unwrap();
        assert_eq!(g.effective_labels(), vec![7, 8, 9]);
        assert!(g.set_labels(vec![1]).is_err());
    }

    #[test]
    fn from_adjacency_matrix_roundtrip() {
        let g = triangle();
        let back = Graph::from_adjacency_matrix(&g.adjacency_matrix()).unwrap();
        assert_eq!(back.edges(), g.edges());
        assert!(Graph::from_adjacency_matrix(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn permute_preserves_structure() {
        let mut g = path3();
        g.set_labels(vec![10, 20, 30]).unwrap();
        let p = g.permute(&[2, 1, 0]).unwrap();
        assert_eq!(p.num_edges(), 2);
        // Old vertex 2 (label 30, degree 1) is now vertex 0.
        assert_eq!(p.labels().unwrap()[0], 30);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(1), 2);
        assert!(g.permute(&[0, 0, 1]).is_err());
        assert!(g.permute(&[0, 1]).is_err());
    }

    #[test]
    fn induced_subgraph_extracts_edges_and_labels() {
        let mut g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        g.set_labels(vec![0, 1, 2, 3, 4]).unwrap();
        let (sub, mapping) = g.induced_subgraph(&[1, 2, 3]).unwrap();
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(mapping, vec![1, 2, 3]);
        assert_eq!(sub.labels().unwrap(), &[1, 2, 3]);
        assert!(g.induced_subgraph(&[99]).is_err());
    }

    #[test]
    fn complement_of_triangle_is_empty() {
        let g = triangle();
        let c = g.complement();
        assert_eq!(c.num_edges(), 0);
        let cc = c.complement();
        assert_eq!(cc.num_edges(), 3);
    }

    #[test]
    fn density_values() {
        assert_eq!(Graph::new(1).density(), 0.0);
        assert!((triangle().density() - 1.0).abs() < 1e-12);
        assert!((path3().density() - 2.0 / 3.0).abs() < 1e-12);
    }
}
