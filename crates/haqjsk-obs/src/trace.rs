//! The span tracer: causal trace contexts plus RAII guards writing records
//! into per-thread ring buffers.
//!
//! Every span belongs to a **trace**: [`span("name")`](span) opens a span
//! under the thread's current context — as a child of the innermost open
//! span, or as the root of a fresh trace when none is open — and dropping
//! the guard appends one `{name, trace, span, parent, start, duration,
//! thread}` record to the calling thread's ring buffer (fixed capacity,
//! oldest records dropped and metered as `haqjsk_trace_dropped_total`).
//! Rings register themselves in a global list on first use, so
//! [`drain_trace_jsonl`] collects every thread's records — sorted by start
//! time, rendered as JSON lines for flamegraph-style offline analysis —
//! and clears the buffers.
//!
//! Context crosses execution boundaries explicitly:
//!
//! * [`TraceContext::current`] captures the active context on one thread;
//! * [`TraceContext::attach`] adopts a captured (or wire-received) context
//!   on another thread, so spans opened there become children of the
//!   originating span — this is how engine pool jobs and distributed
//!   workers join the request's trace;
//! * [`take_trace_spans`] removes one trace's finished records (a worker
//!   returns them alongside its tile results) and [`merge_spans`] splices
//!   records received from a peer process into the local rings, tagged
//!   with their source address.
//!
//! IDs are random: 128-bit trace ids and 64-bit span ids, rendered as 32
//! and 16 lowercase hex digits on the wire (`span_id` 0 is reserved for
//! "no parent"). Merged records keep their origin's clock, so only
//! durations — not start offsets — are comparable across processes.
//!
//! Tracing is enabled by default and disabled when the `HAQJSK_TRACE`
//! environment variable is `0`, `false` or `off` (checked once, at first
//! use); a disabled span is two branch instructions.

use crate::metrics::{registry, Counter};
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Environment variable gating the tracer (`0`/`false`/`off` disable it).
pub const TRACE_ENV_VAR: &str = "HAQJSK_TRACE";

/// Records kept per thread before the ring drops its oldest.
const RING_CAPACITY: usize = 2048;

/// Whether tracing is enabled (cached after the first call).
pub fn trace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var(TRACE_ENV_VAR).as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Total ring-wrap drops, mirrored into `haqjsk_trace_dropped_total`.
fn dropped_counter() -> &'static Counter {
    static DROPPED: OnceLock<Counter> = OnceLock::new();
    DROPPED.get_or_init(|| {
        registry().counter(
            "haqjsk_trace_dropped_total",
            "Span records dropped by trace-ring wrap-around before any drain.",
            &[],
        )
    })
}

// ---------------------------------------------------------------------------
// IDs
// ---------------------------------------------------------------------------

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh, non-zero 64-bit id: a counter stream through `mix64`, seeded
/// from wall-clock nanos and the pid so concurrent processes (coordinator
/// and workers) draw from disjoint streams.
fn next_id64() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5bd1_e995);
        mix64(nanos ^ ((std::process::id() as u64).rotate_left(32)))
    });
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = mix64(seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if id != 0 {
            return id;
        }
    }
}

fn next_trace_id() -> u128 {
    ((next_id64() as u128) << 64) | next_id64() as u128
}

/// Renders a trace id as 32 lowercase hex digits (the wire format).
pub fn trace_id_hex(trace_id: u128) -> String {
    format!("{trace_id:032x}")
}

/// Renders a span id as 16 lowercase hex digits (the wire format).
pub fn span_id_hex(span_id: u64) -> String {
    format!("{span_id:016x}")
}

/// Parses a 32-hex-digit trace id.
pub fn trace_id_from_hex(raw: &str) -> Option<u128> {
    if raw.len() != 32 {
        return None;
    }
    u128::from_str_radix(raw, 16).ok()
}

/// Parses a 16-hex-digit span id.
pub fn span_id_from_hex(raw: &str) -> Option<u64> {
    if raw.len() != 16 {
        return None;
    }
    u64::from_str_radix(raw, 16).ok()
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

/// The causal coordinates of one span: which trace it belongs to, its own
/// id, and its parent's id (0 for a trace root). [`TraceContext::current`]
/// captures the innermost open span's coordinates for handoff to another
/// thread or process; [`TraceContext::attach`] adopts them there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span of one request.
    pub trace_id: u128,
    /// The span's own 64-bit id.
    pub span_id: u64,
    /// The parent span's id; 0 when the span is a trace root.
    pub parent_id: u64,
}

thread_local! {
    /// The stack of open span contexts on this thread; the top is the
    /// parent of the next span opened here.
    static CONTEXT_STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

impl TraceContext {
    /// The innermost open (or attached) span context on this thread, if
    /// any. Capture it before handing work to another thread, stamp it on
    /// a wire request, or store it for a deferred [`record_span`].
    pub fn current() -> Option<TraceContext> {
        if !trace_enabled() {
            return None;
        }
        CONTEXT_STACK.with(|stack| stack.borrow().last().copied())
    }

    /// Adopts a captured context on the calling thread for the guard's
    /// lifetime: spans opened while the guard lives become children of
    /// `ctx`'s span and share its trace. `None` (context captured with
    /// tracing disabled, or a wire request without trace fields) attaches
    /// nothing — the guard is then a no-op.
    pub fn attach(ctx: Option<TraceContext>) -> ContextGuard {
        let attached = match ctx {
            Some(ctx) if trace_enabled() => {
                CONTEXT_STACK.with(|stack| stack.borrow_mut().push(ctx));
                Some(ctx)
            }
            _ => None,
        };
        ContextGuard { attached }
    }

    /// The 32-hex-digit wire form of the trace id.
    pub fn trace_hex(&self) -> String {
        trace_id_hex(self.trace_id)
    }

    /// The 16-hex-digit wire form of the span id.
    pub fn span_hex(&self) -> String {
        span_id_hex(self.span_id)
    }
}

/// Removes the last stack frame matching `span_id` (normally the top; a
/// linear scan keeps mis-nested drops from corrupting unrelated frames).
fn pop_frame(span_id: u64) {
    CONTEXT_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(idx) = stack.iter().rposition(|f| f.span_id == span_id) {
            stack.remove(idx);
        }
    });
}

/// RAII guard for an attached [`TraceContext`]; detaches on drop.
pub struct ContextGuard {
    attached: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.attached {
            pop_frame(ctx.span_id);
        }
    }
}

// ---------------------------------------------------------------------------
// Records and rings
// ---------------------------------------------------------------------------

/// One finished span. Public so peers can re-serialize spans across
/// process boundaries (see [`take_trace_spans`] / [`merge_spans`]).
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (`Cow`: local spans borrow a static name, spans parsed
    /// off the wire own theirs).
    pub name: Cow<'static, str>,
    /// Trace the span belongs to.
    pub trace_id: u128,
    /// The span's own id.
    pub span_id: u64,
    /// Parent span id; 0 for a trace root.
    pub parent_id: u64,
    /// Start offset from the recording process's start, in nanoseconds
    /// (origin-local for merged records — only durations compare across
    /// processes).
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Recording thread's small id (origin-local for merged records).
    pub thread: u32,
    /// `None` for spans recorded in this process; the peer's address for
    /// records spliced in by [`merge_spans`].
    pub src: Option<String>,
}

struct Ring {
    records: VecDeque<SpanRecord>,
}

impl Ring {
    fn push(&mut self, record: SpanRecord) {
        if self.records.len() >= RING_CAPACITY {
            self.records.pop_front();
            dropped_counter().inc();
        }
        self.records.push_back(record);
    }
}

fn ring_registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn thread_ring() -> Arc<Mutex<Ring>> {
    thread_local! {
        static RING: Arc<Mutex<Ring>> = {
            let ring = Arc::new(Mutex::new(Ring {
                records: VecDeque::new(),
            }));
            ring_registry()
                .lock()
                .expect("trace ring registry poisoned")
                .push(Arc::clone(&ring));
            ring
        };
    }
    RING.with(Arc::clone)
}

fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static ID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

fn now_ns() -> u64 {
    process_start().elapsed().as_nanos() as u64
}

/// An open span; records itself into the thread's ring buffer on drop.
/// Obtained from [`span`]. A no-op when tracing is disabled.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    ctx: Option<TraceContext>,
}

/// Opens a span named `name` under the thread's current context: a child
/// of the innermost open span, or the root of a fresh trace.
pub fn span(name: &'static str) -> Span {
    if !trace_enabled() {
        return Span {
            name,
            start: None,
            ctx: None,
        };
    }
    // Pin the process epoch before the span starts so start offsets are
    // never negative.
    process_start();
    let ctx = CONTEXT_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let (trace_id, parent_id) = match stack.last() {
            Some(parent) => (parent.trace_id, parent.span_id),
            None => (next_trace_id(), 0),
        };
        let ctx = TraceContext {
            trace_id,
            span_id: next_id64(),
            parent_id,
        };
        stack.push(ctx);
        ctx
    });
    Span {
        name,
        start: Some(Instant::now()),
        ctx: Some(ctx),
    }
}

impl Span {
    /// The span's causal coordinates (`None` when tracing is disabled).
    /// Capture these to stamp the owning request's trace id on a flight
    /// record or a wire dispatch.
    pub fn context(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// The owning trace's id (`None` when tracing is disabled).
    pub fn trace_id(&self) -> Option<u128> {
        self.ctx.map(|ctx| ctx.trace_id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(start), Some(ctx)) = (self.start, self.ctx) else {
            return;
        };
        pop_frame(ctx.span_id);
        let record = SpanRecord {
            name: Cow::Borrowed(self.name),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            start_ns: start.duration_since(process_start()).as_nanos() as u64,
            duration_ns: start.elapsed().as_nanos() as u64,
            thread: thread_id(),
            src: None,
        };
        thread_ring()
            .lock()
            .expect("trace ring poisoned")
            .push(record);
    }
}

/// Records an already-finished span of known `duration` under the thread's
/// current context, without having held an RAII guard — for paths where
/// the interval is measured elsewhere (e.g. a pipelined RPC timed from
/// dispatch to commit). The start offset is back-dated by `duration`.
pub fn record_span(name: &'static str, duration: Duration) {
    if !trace_enabled() {
        return;
    }
    let (trace_id, parent_id) = match TraceContext::current() {
        Some(parent) => (parent.trace_id, parent.span_id),
        None => (next_trace_id(), 0),
    };
    let duration_ns = duration.as_nanos() as u64;
    let record = SpanRecord {
        name: Cow::Borrowed(name),
        trace_id,
        span_id: next_id64(),
        parent_id,
        start_ns: now_ns().saturating_sub(duration_ns),
        duration_ns,
        thread: thread_id(),
        src: None,
    };
    thread_ring()
        .lock()
        .expect("trace ring poisoned")
        .push(record);
}

/// Removes and returns every finished record of `trace_id` from all rings,
/// sorted by start time — a worker calls this after computing a tile to
/// return the request's spans alongside the result. Records of other
/// traces are untouched.
pub fn take_trace_spans(trace_id: u128) -> Vec<SpanRecord> {
    if !trace_enabled() {
        return Vec::new();
    }
    let mut taken = Vec::new();
    {
        let rings = ring_registry()
            .lock()
            .expect("trace ring registry poisoned");
        for ring in rings.iter() {
            let mut ring = ring.lock().expect("trace ring poisoned");
            let mut keep = VecDeque::with_capacity(ring.records.len());
            for record in ring.records.drain(..) {
                if record.trace_id == trace_id {
                    taken.push(record);
                } else {
                    keep.push_back(record);
                }
            }
            ring.records = keep;
        }
    }
    taken.sort_by_key(|r| r.start_ns);
    taken
}

/// Splices span records received from a peer process into the calling
/// thread's ring, tagging each with the peer's address (unless the record
/// already carries a source — a relayed record keeps its origin).
pub fn merge_spans(src: &str, spans: Vec<SpanRecord>) {
    if !trace_enabled() || spans.is_empty() {
        return;
    }
    let ring = thread_ring();
    let mut ring = ring.lock().expect("trace ring poisoned");
    for mut record in spans {
        if record.src.is_none() {
            record.src = Some(src.to_string());
        }
        ring.push(record);
    }
}

/// A drained trace buffer: the record count, the cumulative ring-drop
/// total, and the records as JSON lines.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Records in this dump.
    pub spans: usize,
    /// Total records ever lost to ring wrap-around in this process (the
    /// value of `haqjsk_trace_dropped_total` at drain time).
    pub dropped: u64,
    /// One JSON object per line, sorted by span start time.
    pub jsonl: String,
}

/// Minimal JSON string escaping for span names and source addresses.
fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one record as its JSONL object.
fn record_jsonl(r: &SpanRecord) -> String {
    let mut line = format!(
        "{{\"name\":\"{}\",\"trace\":\"{}\",\"span\":\"{}\"",
        escape_json(&r.name),
        trace_id_hex(r.trace_id),
        span_id_hex(r.span_id),
    );
    if r.parent_id != 0 {
        line.push_str(&format!(",\"parent\":\"{}\"", span_id_hex(r.parent_id)));
    }
    line.push_str(&format!(
        ",\"start_us\":{:.3},\"dur_us\":{:.3},\"thread\":{}",
        r.start_ns as f64 / 1000.0,
        r.duration_ns as f64 / 1000.0,
        r.thread
    ));
    if let Some(src) = &r.src {
        line.push_str(&format!(",\"src\":\"{}\"", escape_json(src)));
    }
    line.push('}');
    line
}

/// Drains every thread's ring buffer into a [`TraceDump`]: one JSON object
/// per line, sorted by span start time —
/// `{"name","trace","span","parent"?,"start_us","dur_us","thread","src"?}`.
/// Buffers are cleared; records lost to ring wrap-around are absent and
/// counted in [`TraceDump::dropped`].
pub fn drain_trace_jsonl() -> TraceDump {
    let mut all: Vec<SpanRecord> = Vec::new();
    {
        let rings = ring_registry()
            .lock()
            .expect("trace ring registry poisoned");
        for ring in rings.iter() {
            let mut ring = ring.lock().expect("trace ring poisoned");
            all.extend(ring.records.drain(..));
        }
    }
    all.sort_by_key(|r| r.start_ns);
    let mut jsonl = String::new();
    for r in &all {
        jsonl.push_str(&record_jsonl(r));
        jsonl.push('\n');
    }
    TraceDump {
        spans: all.len(),
        dropped: dropped_counter().value(),
        jsonl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rings are process-global, and `drain_trace_jsonl` takes everything:
    /// tests that drain or take must not interleave.
    fn ring_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn spans_record_and_drain() {
        // The env gate is cached process-wide; this test only asserts
        // behaviour when tracing is on (the default test environment).
        if !trace_enabled() {
            return;
        }
        let _guard = ring_lock();
        let _ = drain_trace_jsonl();
        {
            let _span = span("unit_test_span");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let handle = std::thread::spawn(|| {
            let _span = span("unit_test_span_other_thread");
        });
        handle.join().unwrap();
        let dump = drain_trace_jsonl();
        assert!(dump.spans >= 2, "expected both spans, got {}", dump.spans);
        assert!(dump.jsonl.contains("unit_test_span"));
        assert!(dump.jsonl.contains("unit_test_span_other_thread"));
        // Drained: a second drain is empty of these spans.
        assert_eq!(drain_trace_jsonl().spans, 0);
    }

    #[test]
    fn child_spans_share_the_trace_and_chain_parents() {
        if !trace_enabled() {
            return;
        }
        let _guard = ring_lock();
        let (root_ctx, child_ctx) = {
            let root = span("causal_test_root");
            let root_ctx = root.context().unwrap();
            let child = span("causal_test_child");
            let child_ctx = child.context().unwrap();
            (root_ctx, child_ctx)
        };
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        assert_eq!(child_ctx.parent_id, root_ctx.span_id);
        assert_eq!(root_ctx.parent_id, 0);
        let taken = take_trace_spans(root_ctx.trace_id);
        assert_eq!(taken.len(), 2);
    }

    #[test]
    fn attach_carries_context_across_threads() {
        if !trace_enabled() {
            return;
        }
        let _guard = ring_lock();
        let root = span("attach_test_root");
        let captured = root.context();
        let handle = std::thread::spawn(move || {
            let _guard = TraceContext::attach(captured);
            let child = span("attach_test_child");
            child.context().unwrap()
        });
        let child_ctx = handle.join().unwrap();
        let root_ctx = captured.unwrap();
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        assert_eq!(child_ctx.parent_id, root_ctx.span_id);
        drop(root);
        let taken = take_trace_spans(root_ctx.trace_id);
        assert_eq!(taken.len(), 2);
    }

    #[test]
    fn take_trace_spans_removes_only_the_requested_trace() {
        if !trace_enabled() {
            return;
        }
        let _guard = ring_lock();
        let wanted = {
            let s = span("take_test_wanted");
            s.trace_id().unwrap()
        };
        let other = {
            let s = span("take_test_other");
            s.trace_id().unwrap()
        };
        let taken = take_trace_spans(wanted);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].name, "take_test_wanted");
        let rest = take_trace_spans(other);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name, "take_test_other");
    }

    #[test]
    fn merged_spans_carry_their_source_and_survive_a_drain() {
        if !trace_enabled() {
            return;
        }
        let _guard = ring_lock();
        let trace_id = next_trace_id();
        merge_spans(
            "10.0.0.7:9000",
            vec![SpanRecord {
                name: Cow::Owned("merge_test_worker_tile".to_string()),
                trace_id,
                span_id: next_id64(),
                parent_id: 7,
                start_ns: 1,
                duration_ns: 2,
                thread: 0,
                src: None,
            }],
        );
        let taken = take_trace_spans(trace_id);
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].src.as_deref(), Some("10.0.0.7:9000"));
    }

    #[test]
    fn record_span_backdates_under_the_current_context() {
        if !trace_enabled() {
            return;
        }
        let _guard = ring_lock();
        let root = span("record_test_root");
        let root_ctx = root.context().unwrap();
        record_span("record_test_manual", Duration::from_millis(3));
        drop(root);
        let taken = take_trace_spans(root_ctx.trace_id);
        assert_eq!(taken.len(), 2);
        let manual = taken
            .iter()
            .find(|r| r.name == "record_test_manual")
            .unwrap();
        assert_eq!(manual.parent_id, root_ctx.span_id);
        assert!(manual.duration_ns >= 3_000_000);
    }

    #[test]
    fn ring_drops_oldest_and_meters_the_loss() {
        let mut ring = Ring {
            records: VecDeque::new(),
        };
        let before = dropped_counter().value();
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(SpanRecord {
                name: Cow::Borrowed("x"),
                trace_id: 1,
                span_id: i as u64 + 1,
                parent_id: 0,
                start_ns: i as u64,
                duration_ns: 1,
                thread: 0,
                src: None,
            });
        }
        assert_eq!(ring.records.len(), RING_CAPACITY);
        // The 10 oldest were dropped and metered.
        assert!(dropped_counter().value() >= before + 10);
        assert_eq!(ring.records.front().unwrap().start_ns, 10);
    }

    #[test]
    fn ids_render_and_parse_as_fixed_width_hex() {
        let trace = next_trace_id();
        let span_id = next_id64();
        assert_eq!(trace_id_from_hex(&trace_id_hex(trace)), Some(trace));
        assert_eq!(span_id_from_hex(&span_id_hex(span_id)), Some(span_id));
        assert_eq!(trace_id_from_hex("abc"), None);
        assert_eq!(span_id_from_hex("zzzzzzzzzzzzzzzz"), None);
    }
}
