//! The span tracer: RAII guards writing fixed-size records into per-thread
//! ring buffers.
//!
//! [`span("name")`](span) returns a [`Span`] guard; dropping it appends one
//! `{name, start, duration, thread}` record to the calling thread's ring
//! buffer (fixed capacity, oldest records overwritten). Rings register
//! themselves in a global list on first use, so [`drain_trace_jsonl`]
//! collects every thread's records — sorted by start time, rendered as JSON
//! lines for flamegraph-style offline analysis — and clears the buffers.
//!
//! Tracing is enabled by default and disabled when the `HAQJSK_TRACE`
//! environment variable is `0`, `false` or `off` (checked once, at first
//! use); a disabled span is two branch instructions.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable gating the tracer (`0`/`false`/`off` disable it).
pub const TRACE_ENV_VAR: &str = "HAQJSK_TRACE";

/// Records kept per thread before the ring wraps.
const RING_CAPACITY: usize = 2048;

/// Whether tracing is enabled (cached after the first call).
pub fn trace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var(TRACE_ENV_VAR).as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

#[derive(Clone, Copy)]
struct SpanRecord {
    name: &'static str,
    start_ns: u64,
    duration_ns: u64,
    thread: u32,
}

struct Ring {
    records: Vec<SpanRecord>,
    next: usize,
    /// Total records ever written (so wrap-around losses are reported).
    written: u64,
}

impl Ring {
    fn push(&mut self, record: SpanRecord) {
        if self.records.len() < RING_CAPACITY {
            self.records.push(record);
        } else {
            self.records[self.next] = record;
        }
        self.next = (self.next + 1) % RING_CAPACITY;
        self.written += 1;
    }
}

fn ring_registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn thread_ring() -> Arc<Mutex<Ring>> {
    thread_local! {
        static RING: Arc<Mutex<Ring>> = {
            let ring = Arc::new(Mutex::new(Ring {
                records: Vec::new(),
                next: 0,
                written: 0,
            }));
            ring_registry()
                .lock()
                .expect("trace ring registry poisoned")
                .push(Arc::clone(&ring));
            ring
        };
    }
    RING.with(Arc::clone)
}

fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static ID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// An open span; records itself into the thread's ring buffer on drop.
/// Obtained from [`span`]. A no-op when tracing is disabled.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a span named `name`.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: trace_enabled().then(|| {
            // Pin the process epoch before the span starts so start offsets
            // are never negative.
            process_start();
            Instant::now()
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let record = SpanRecord {
            name: self.name,
            start_ns: start.duration_since(process_start()).as_nanos() as u64,
            duration_ns: start.elapsed().as_nanos() as u64,
            thread: thread_id(),
        };
        thread_ring()
            .lock()
            .expect("trace ring poisoned")
            .push(record);
    }
}

/// Drains every thread's ring buffer: returns `(records, jsonl)` where
/// `jsonl` holds one JSON object per line, sorted by span start time:
/// `{"name":...,"start_us":...,"dur_us":...,"thread":...}`. Buffers are
/// cleared; records lost to ring wrap-around are simply absent.
pub fn drain_trace_jsonl() -> (usize, String) {
    let mut all: Vec<SpanRecord> = Vec::new();
    {
        let rings = ring_registry()
            .lock()
            .expect("trace ring registry poisoned");
        for ring in rings.iter() {
            let mut ring = ring.lock().expect("trace ring poisoned");
            all.append(&mut ring.records);
            ring.next = 0;
        }
    }
    all.sort_by_key(|r| r.start_ns);
    let mut out = String::new();
    for r in &all {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"start_us\":{:.3},\"dur_us\":{:.3},\"thread\":{}}}\n",
            r.name,
            r.start_ns as f64 / 1000.0,
            r.duration_ns as f64 / 1000.0,
            r.thread
        ));
    }
    (all.len(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_drain() {
        // The env gate is cached process-wide; this test only asserts
        // behaviour when tracing is on (the default test environment).
        if !trace_enabled() {
            return;
        }
        let _ = drain_trace_jsonl();
        {
            let _span = span("unit_test_span");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let handle = std::thread::spawn(|| {
            let _span = span("unit_test_span_other_thread");
        });
        handle.join().unwrap();
        let (count, jsonl) = drain_trace_jsonl();
        assert!(count >= 2, "expected both spans, got {count}");
        assert!(jsonl.contains("unit_test_span"));
        assert!(jsonl.contains("unit_test_span_other_thread"));
        // Drained: a second drain is empty of these spans.
        let (count, _) = drain_trace_jsonl();
        assert_eq!(count, 0);
    }

    #[test]
    fn ring_wraps_without_growing() {
        let mut ring = Ring {
            records: Vec::new(),
            next: 0,
            written: 0,
        };
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(SpanRecord {
                name: "x",
                start_ns: i as u64,
                duration_ns: 1,
                thread: 0,
            });
        }
        assert_eq!(ring.records.len(), RING_CAPACITY);
        assert_eq!(ring.written as usize, RING_CAPACITY + 10);
    }
}
