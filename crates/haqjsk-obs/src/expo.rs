//! Prometheus text exposition: rendering a registry [`Snapshot`] and
//! parsing/validating such text.
//!
//! The renderer emits the classic text format (version 0.0.4): `# HELP` /
//! `# TYPE` per family, one sample line per instance, and for histograms
//! the cumulative `_bucket{le=...}` series plus `_sum` / `_count`. Empty
//! buckets are elided (the cumulative value is unchanged there and
//! Prometheus permits any bound subset as long as `+Inf` is present),
//! keeping scrapes compact despite the fine log-linear grid.
//!
//! The parser is the other half of the contract: the CI scrape check and
//! the serve loopback tests feed rendered text back through
//! [`parse_exposition`], which rejects malformed lines, duplicate or
//! conflicting `# TYPE` declarations (a metric registered twice), untyped
//! samples, and non-monotone histogram bucket series.

use crate::metrics::{bucket_upper_bound, MetricValue, Snapshot};
use std::collections::BTreeMap;

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the text format: backslash and newline only
/// (quotes are not special outside label values).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot in the Prometheus text format.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut current_family: Option<&str> = None;
    for entry in &snapshot.entries {
        if current_family != Some(entry.name.as_str()) {
            current_family = Some(entry.name.as_str());
            out.push_str(&format!(
                "# HELP {} {}\n",
                entry.name,
                escape_help(&entry.help)
            ));
            out.push_str(&format!("# TYPE {} {}\n", entry.name, entry.kind.as_str()));
        }
        match &entry.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    entry.name,
                    label_block(&entry.labels, None)
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    entry.name,
                    label_block(&entry.labels, None),
                    format_value(*v)
                ));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, &count) in h.buckets.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    cumulative += count;
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        entry.name,
                        label_block(
                            &entry.labels,
                            Some(("le", &format_value(bucket_upper_bound(i))))
                        )
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    entry.name,
                    label_block(&entry.labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    entry.name,
                    label_block(&entry.labels, None),
                    format_value(h.sum)
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    entry.name,
                    label_block(&entry.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as written (histogram series keep their `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Labels in file order.
    pub labels: Vec<(String, String)>,
    /// Parsed value.
    pub value: f64,
}

/// A parsed and validated exposition.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations by family name.
    pub types: BTreeMap<String, String>,
    /// All sample lines, in file order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of sample `name{labels}` (exact label-set match, order
    /// insensitive).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut wanted: Vec<(&str, &str)> = labels.to_vec();
        wanted.sort();
        self.samples
            .iter()
            .find(|s| {
                if s.name != name || s.labels.len() != wanted.len() {
                    return false;
                }
                let mut have: Vec<(&str, &str)> = s
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                have.sort();
                have == wanted
            })
            .map(|s| s.value)
    }

    /// Whether family `name` has a `# TYPE` declaration.
    pub fn has_family(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }
}

/// Splits a sample line into its `name{labels}` head and value tail. The
/// label block ends at the first `}` *outside* a quoted label value — a
/// `}` (or whitespace) inside quotes, e.g. `c{path="a}b"} 1`, belongs to
/// the value and must not end the block.
fn split_sample_line(line: &str, line_no: usize) -> Result<(&str, &str), String> {
    let open = line.find('{');
    // `{` starts a label block only when it precedes any whitespace;
    // otherwise the name stands alone and the tail is the value.
    if open.is_none_or(|open| line[..open].contains(char::is_whitespace)) {
        let mut split = line.splitn(2, char::is_whitespace);
        let name = split.next().unwrap_or("");
        return Ok((name, split.next().unwrap_or("").trim_start()));
    }
    let open = open.expect("checked above");
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for i in (open + 1)..bytes.len() {
        let c = bytes[i];
        if escaped {
            escaped = false;
        } else if in_quotes {
            match c {
                b'\\' => escaped = true,
                b'"' => in_quotes = false,
                _ => {}
            }
        } else {
            match c {
                b'"' => in_quotes = true,
                b'}' => return Ok((&line[..=i], line[i + 1..].trim_start())),
                _ => {}
            }
        }
    }
    Err(format!("line {line_no}: unterminated label block"))
}

fn parse_label_block(raw: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = raw.chars().peekable();
    loop {
        // Label name up to '='.
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || key.is_empty() {
            return Err(format!("line {line_no}: malformed label name"));
        }
        if chars.next() != Some('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(format!("line {line_no}: bad escape in label value")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("line {line_no}: unterminated label value")),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => return Ok(labels),
            Some(c) => return Err(format!("line {line_no}: unexpected '{c}' after label")),
        }
    }
}

fn parse_sample_value(raw: &str, line_no: usize) -> Result<f64, String> {
    match raw {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: unparseable value '{other}'")),
    }
}

/// The family a sample belongs to: the name itself, or — when the stripped
/// base name is declared a histogram — the base of a `_bucket`/`_sum`/
/// `_count` series.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Parses Prometheus text exposition, validating structure:
///
/// * every non-comment line must be `name[{labels}] value [timestamp]`,
/// * `# TYPE` may appear at most once per family (a duplicate — even with
///   the same type — means a metric was registered twice),
/// * every sample must belong to a `# TYPE`-declared family,
/// * counter samples must be finite and non-negative,
/// * histogram `_bucket` series must be cumulative (non-decreasing in
///   ascending `le`), contain an `+Inf` bucket, and agree with `_count`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                return Err(format!("line {line_no}: malformed TYPE line"));
            };
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("line {line_no}: unknown metric type '{kind}'"));
            }
            if let Some(previous) = expo.types.get(name) {
                return Err(if previous == kind {
                    format!("line {line_no}: metric '{name}' declared twice as {kind}")
                } else {
                    format!("line {line_no}: metric '{name}' declared both {previous} and {kind}")
                });
            }
            expo.types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let (name_and_labels, value_part) = split_sample_line(line, line_no)?;
        let (name, labels) = match name_and_labels.find('{') {
            Some(open) => {
                if !name_and_labels.ends_with('}') {
                    return Err(format!("line {line_no}: unterminated label block"));
                }
                let inner = &name_and_labels[open + 1..name_and_labels.len() - 1];
                let labels = if inner.is_empty() {
                    Vec::new()
                } else {
                    parse_label_block(inner, line_no)?
                };
                (&name_and_labels[..open], labels)
            }
            None => (name_and_labels, Vec::new()),
        };
        if name.is_empty() {
            return Err(format!("line {line_no}: sample without a name"));
        }
        let mut value_tokens = value_part.split_whitespace();
        let Some(value_raw) = value_tokens.next() else {
            return Err(format!("line {line_no}: sample without a value"));
        };
        // An optional trailing timestamp is permitted by the format.
        if value_tokens.clone().count() > 1 {
            return Err(format!("line {line_no}: trailing garbage after value"));
        }
        if let Some(ts) = value_tokens.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {line_no}: malformed timestamp '{ts}'"));
            }
        }
        let value = parse_sample_value(value_raw, line_no)?;

        let family = family_of(name, &expo.types);
        let Some(kind) = expo.types.get(family) else {
            return Err(format!(
                "line {line_no}: sample '{name}' has no TYPE declaration"
            ));
        };
        if kind == "counter" && !(value.is_finite() && value >= 0.0) {
            return Err(format!(
                "line {line_no}: counter '{name}' has non-monotonic-capable value {value_raw}"
            ));
        }
        expo.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    validate_histograms(&expo)?;
    Ok(expo)
}

/// Per-histogram-instance structural checks on the parsed samples.
fn validate_histograms(expo: &Exposition) -> Result<(), String> {
    for (family, kind) in &expo.types {
        if kind != "histogram" {
            continue;
        }
        // Group bucket samples by their labels-minus-le: each entry maps a
        // label set to its `(le, cumulative count)` pairs.
        type BucketSeries = BTreeMap<Vec<(String, String)>, Vec<(f64, f64)>>;
        let mut series: BucketSeries = BTreeMap::new();
        for sample in &expo.samples {
            if sample.name != format!("{family}_bucket") {
                continue;
            }
            let mut le = None;
            let mut rest: Vec<(String, String)> = Vec::new();
            for (k, v) in &sample.labels {
                if k == "le" {
                    le =
                        Some(parse_sample_value(v, 0).map_err(|_| {
                            format!("histogram '{family}' has unparseable le '{v}'")
                        })?);
                } else {
                    rest.push((k.clone(), v.clone()));
                }
            }
            let Some(le) = le else {
                return Err(format!("histogram '{family}' has a bucket without 'le'"));
            };
            rest.sort();
            series.entry(rest).or_default().push((le, sample.value));
        }
        for (labels, mut buckets) in series {
            buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut previous = -1.0;
            for &(le, cumulative) in &buckets {
                if cumulative < previous {
                    return Err(format!(
                        "histogram '{family}' bucket series is not cumulative at le={le}"
                    ));
                }
                previous = cumulative;
            }
            let Some(&(last_le, inf_count)) = buckets.last() else {
                continue;
            };
            if last_le != f64::INFINITY {
                return Err(format!("histogram '{family}' is missing its +Inf bucket"));
            }
            let label_refs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            if let Some(count) = expo.value(&format!("{family}_count"), &label_refs) {
                if count != inf_count {
                    return Err(format!(
                        "histogram '{family}' +Inf bucket ({inf_count}) disagrees with _count ({count})"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::default();
        r.counter("requests_total", "Requests.", &[("op", "ping")])
            .add(3);
        r.counter("requests_total", "Requests.", &[("op", "fit")])
            .inc();
        r.gauge("inflight", "In-flight requests.", &[]).set(2.0);
        let h = r.histogram("latency_seconds", "Latency.", &[("op", "ping")]);
        h.observe(0.001);
        h.observe(0.002);
        h.observe(0.1);
        r
    }

    #[test]
    fn rendered_output_round_trips_through_the_parser() {
        let r = sample_registry();
        let text = r.render_prometheus();
        let expo = parse_exposition(&text).expect("rendered text parses");
        assert_eq!(
            expo.types.get("requests_total").map(String::as_str),
            Some("counter")
        );
        assert_eq!(expo.value("requests_total", &[("op", "ping")]), Some(3.0));
        assert_eq!(expo.value("requests_total", &[("op", "fit")]), Some(1.0));
        assert_eq!(expo.value("inflight", &[]), Some(2.0));
        assert_eq!(
            expo.value("latency_seconds_count", &[("op", "ping")]),
            Some(3.0)
        );
        assert_eq!(
            expo.value("latency_seconds_bucket", &[("op", "ping"), ("le", "+Inf")]),
            Some(3.0)
        );
    }

    #[test]
    fn parser_rejects_structural_problems() {
        assert!(parse_exposition("no_type_metric 1\n").is_err());
        assert!(parse_exposition("# TYPE a counter\n# TYPE a gauge\na 1\n").is_err());
        assert!(parse_exposition("# TYPE a counter\n# TYPE a counter\na 1\n").is_err());
        assert!(parse_exposition("# TYPE a counter\na -1\n").is_err());
        assert!(parse_exposition("# TYPE a counter\na notanumber\n").is_err());
        assert!(parse_exposition("# TYPE a histogram\na_bucket{le=\"1\"} 5\na_bucket{le=\"2\"} 3\na_bucket{le=\"+Inf\"} 5\n").is_err());
        assert!(parse_exposition("# TYPE a histogram\na_bucket{le=\"1\"} 2\n").is_err());
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let r = Registry::default();
        r.counter("c_total", "h", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.render_prometheus();
        let expo = parse_exposition(&text).unwrap();
        assert_eq!(expo.value("c_total", &[("path", "a\"b\\c\nd")]), Some(1.0));
    }

    #[test]
    fn braces_inside_quoted_label_values_round_trip() {
        // A `}` inside a quoted value must not end the label block.
        let text = "# TYPE c_total counter\nc_total{path=\"a}b\"} 1\n";
        let expo = parse_exposition(text).unwrap();
        assert_eq!(expo.value("c_total", &[("path", "a}b")]), Some(1.0));
        // And through the renderer, including `{`, `,`, `=` and spaces.
        let r = Registry::default();
        let value = "GET /x?a={1,2} = \"q\"";
        r.counter("c_total", "h", &[("path", value)]).inc();
        let rendered = r.render_prometheus();
        let expo = parse_exposition(&rendered).unwrap();
        assert_eq!(expo.value("c_total", &[("path", value)]), Some(1.0));
        // Truly unterminated blocks are still rejected.
        assert!(parse_exposition("# TYPE c counter\nc{path=\"a}b\" 1\n").is_err());
    }

    #[test]
    fn help_text_newlines_and_backslashes_are_escaped() {
        let r = Registry::default();
        r.counter("c_total", "line one\nline two \\ backslash", &[])
            .inc();
        let text = r.render_prometheus();
        // The help must stay on one physical line, escaped.
        assert!(text.contains("# HELP c_total line one\\nline two \\\\ backslash\n"));
        let expo = parse_exposition(&text).unwrap();
        assert_eq!(expo.value("c_total", &[]), Some(1.0));
    }
}
