//! The metrics registry: counters, gauges and log-linear histograms with
//! sharded-atomic hot paths.
//!
//! Metrics are owned by the process-global [`Registry`] (see [`registry`])
//! and keyed by `(name, label set)`. Registration (`counter` / `gauge` /
//! `histogram`) takes a lock and returns a cheap cloneable handle;
//! recording through a handle is lock-free — a counter increment or
//! histogram observation touches one cache-line-padded shard selected by
//! the calling thread, so concurrent writers on different threads never
//! contend. Reads ([`Registry::snapshot`]) merge the shards.
//!
//! Histograms use log-linear buckets: four linear sub-buckets per power of
//! two, spanning `2^-20` (≈1 µs when values are seconds) to `2^12`
//! (≈68 min), plus underflow/overflow buckets. Bucket selection is a pure
//! bit decomposition of the `f64` (exponent + top mantissa bits) — no
//! search, no `log` call — and the relative quantile error is bounded by
//! the 25% sub-bucket width.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shards per counter/histogram. Eight covers the pool sizes the engine
/// uses without making snapshot merges expensive.
const SHARDS: usize = 8;

/// One atomic on its own cache line, so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Stable per-thread shard index (threads are striped round-robin).
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// Lock-free `f64` accumulate into an `AtomicU64` holding the value's bits.
fn f64_add(cell: &AtomicU64, v: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + v).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

/// Lock-free `f64` min/max update (`ordering` picks which).
fn f64_extreme(cell: &AtomicU64, v: f64, keep_current: impl Fn(f64, f64) -> bool) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        if keep_current(f64::from_bits(current), v) {
            return;
        }
        match cell.compare_exchange_weak(current, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing counter, sharded across threads.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            shards: Arc::new(Default::default()),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the counter with an externally maintained total — the
    /// re-export path for subsystems that already keep their own atomic
    /// counters (collectors call this at snapshot time). Do not mix with
    /// [`Counter::inc`] on the same counter.
    pub fn store(&self, total: u64) {
        for shard in self.shards.iter().skip(1) {
            shard.0.store(0, Ordering::Relaxed);
        }
        self.shards[0].0.store(total, Ordering::Relaxed);
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A settable `f64` value (queue depths, in-flight requests, rates).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        f64_add(&self.bits, delta);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Linear sub-buckets per power of two, as a bit count (`2` → 4
/// sub-buckets, 25% relative bucket width).
const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS;
/// Smallest resolved exponent: values below `2^MIN_EXP` collapse into the
/// underflow bucket.
const MIN_EXP: i32 = -20;
/// Largest resolved exponent: values `>= 2^MAX_EXP` land in the overflow
/// bucket.
const MAX_EXP: i32 = 12;
/// Total bucket count: underflow + resolved range + overflow.
pub const NUM_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUB + 2;

fn min_resolved() -> f64 {
    (MIN_EXP as f64).exp2()
}

fn max_resolved() -> f64 {
    (MAX_EXP as f64).exp2()
}

/// Bucket index of a value — pure `f64` bit decomposition, no search.
pub fn bucket_index(v: f64) -> usize {
    // Non-positive, NaN and sub-range values share the underflow bucket.
    if v.is_nan() || v < min_resolved() {
        return 0;
    }
    if v >= max_resolved() {
        return NUM_BUCKETS - 1;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUB + sub
}

/// Inclusive upper bound of bucket `i` (`+Inf` for the overflow bucket) —
/// strictly increasing in `i`, which the exposition's `le=` labels and the
/// quantile estimator both rely on.
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i == 0 {
        return min_resolved();
    }
    if i >= NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let k = i - 1;
    let exp = MIN_EXP + (k / SUB) as i32;
    (exp as f64).exp2() * (1.0 + (k % SUB + 1) as f64 / SUB as f64)
}

struct HistShard {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// A latency/size histogram with log-linear buckets, sharded across
/// threads.
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<Vec<HistShard>>,
}

impl Histogram {
    /// A standalone histogram detached from any registry (property tests
    /// use this; production code registers through [`Registry::histogram`]).
    pub fn new() -> Histogram {
        Histogram {
            shards: Arc::new((0..SHARDS).map(|_| HistShard::new()).collect()),
        }
    }

    /// Records one observation on the calling thread's shard.
    pub fn observe(&self, v: f64) {
        self.observe_shard(thread_shard(), v);
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Records into an explicit shard (`shard` is taken modulo the shard
    /// count). Exposed so the shard-merge property tests can drive a known
    /// shard layout; production code uses [`Histogram::observe`].
    pub fn observe_shard(&self, shard: usize, v: f64) {
        let s = &self.shards[shard % SHARDS];
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        f64_add(&s.sum_bits, v);
        f64_extreme(&s.min_bits, v, |current, new| current <= new);
        f64_extreme(&s.max_bits, v, |current, new| current >= new);
    }

    /// Merged view across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for s in self.shards.iter() {
            out.count += s.count.load(Ordering::Relaxed);
            out.sum += f64::from_bits(s.sum_bits.load(Ordering::Relaxed));
            out.min = out
                .min
                .min(f64::from_bits(s.min_bits.load(Ordering::Relaxed)));
            out.max = out
                .max
                .max(f64::from_bits(s.max_bits.load(Ordering::Relaxed)));
            for (acc, bucket) in out.buckets.iter_mut().zip(&s.buckets) {
                *acc += bucket.load(Ordering::Relaxed);
            }
        }
        out
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Point-in-time merged state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`+Inf` when empty).
    pub min: f64,
    /// Largest observed value (`-Inf` when empty).
    pub max: f64,
    /// Per-bucket (non-cumulative) observation counts; bucket `i` covers
    /// `[bucket_upper_bound(i-1), bucket_upper_bound(i))` — the bit
    /// decomposition puts exact bucket-boundary values (powers of two and
    /// sub-bucket edges) at the inclusive lower edge.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the bucket
    /// holding the target rank, clamped into the exactly-tracked
    /// `[min, max]` range. `NaN` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean observed value (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Discriminates the three instrument types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Settable point-in-time value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

type LabelSet = Vec<(String, String)>;

struct Family {
    kind: MetricKind,
    help: String,
    instances: BTreeMap<LabelSet, Instrument>,
}

type Collector = Box<dyn Fn() + Send + Sync>;

/// The metric store: families keyed by name, instances keyed by label set,
/// plus the collectors run before every snapshot.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
    collectors: Mutex<Vec<Collector>>,
}

/// The process-global registry every subsystem reports through.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

impl Registry {
    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        kind: MetricKind,
    ) -> Instrument {
        assert!(valid_name(name), "invalid metric name '{name}'");
        for (key, _) in labels {
            assert!(valid_name(key), "invalid label name '{key}' on '{name}'");
        }
        let mut label_set: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        label_set.sort();
        let mut families = self.families.lock().expect("metric registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            instances: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric '{name}' already registered as a {}, cannot re-register as a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .instances
            .entry(label_set)
            .or_insert_with(make)
            .clone()
    }

    /// Registers (or retrieves) the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind, or on
    /// a malformed metric/label name — both are programming errors.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(
            name,
            help,
            labels,
            || Instrument::Counter(Counter::new()),
            MetricKind::Counter,
        ) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Registers (or retrieves) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(
            name,
            help,
            labels,
            || Instrument::Gauge(Gauge::new()),
            MetricKind::Gauge,
        ) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Registers (or retrieves) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.instrument(
            name,
            help,
            labels,
            || Instrument::Histogram(Histogram::new()),
            MetricKind::Histogram,
        ) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Registers a collector: a closure run before every snapshot, used to
    /// re-export externally maintained counters into registry metrics
    /// (typically via [`Counter::store`] / [`Gauge::set`]). Collectors may
    /// register metrics but must not register further collectors.
    pub fn register_collector(&self, f: impl Fn() + Send + Sync + 'static) {
        self.collectors
            .lock()
            .expect("collector list poisoned")
            .push(Box::new(f));
    }

    /// Runs the collectors, then captures every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        {
            let collectors = self.collectors.lock().expect("collector list poisoned");
            for collector in collectors.iter() {
                collector();
            }
        }
        let families = self.families.lock().expect("metric registry poisoned");
        let mut entries = Vec::new();
        for (name, family) in families.iter() {
            for (labels, instrument) in &family.instances {
                entries.push(MetricEntry {
                    name: name.clone(),
                    kind: instrument.kind(),
                    help: family.help.clone(),
                    labels: labels.clone(),
                    value: match instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.value()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.value()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                });
            }
        }
        Snapshot { entries }
    }

    /// Convenience: snapshot + Prometheus text render.
    pub fn render_prometheus(&self) -> String {
        crate::expo::render_prometheus(&self.snapshot())
    }
}

/// One metric instance inside a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Family name.
    pub name: String,
    /// Instrument type.
    pub kind: MetricKind,
    /// Help text.
    pub help: String,
    /// Sorted label set.
    pub labels: Vec<(String, String)>,
    /// Captured value.
    pub value: MetricValue,
}

/// A captured metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Merged histogram state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time capture of the whole registry, sorted by name then
/// label set.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All metric instances.
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricEntry> {
        let mut wanted: Vec<(&str, &str)> = labels.to_vec();
        wanted.sort();
        self.entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == wanted.len()
                && e.labels
                    .iter()
                    .zip(&wanted)
                    .all(|((k, v), (wk, wv))| k == wk && v == wv)
        })
    }

    /// The counter `name{labels}`, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match &self.find(name, labels)?.value {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name{labels}`, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match &self.find(name, labels)?.value {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name{labels}`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// All entries of family `name`.
    pub fn family(&self, name: &str) -> Vec<&MetricEntry> {
        self.entries.iter().filter(|e| e.name == name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let c = Counter::new();
        for shard in 0..SHARDS {
            // Exercise every shard through the raw cells.
            c.shards[shard]
                .0
                .fetch_add(shard as u64 + 1, Ordering::Relaxed);
        }
        assert_eq!(c.value(), (1..=SHARDS as u64).sum::<u64>());
        c.store(7);
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.0);
        g.add(-0.5);
        assert_eq!(g.value(), 3.0);
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for i in 1..NUM_BUCKETS {
            assert!(
                bucket_upper_bound(i) > bucket_upper_bound(i - 1),
                "bounds must increase at bucket {i}"
            );
        }
    }

    #[test]
    fn bucket_index_brackets_the_value() {
        for &v in &[1e-9, 1e-6, 0.001, 0.25, 1.0, 1.5, 3.99, 4.0, 1234.5, 1e9] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} above bucket {i} bound");
            if i > 0 {
                assert!(
                    v >= bucket_upper_bound(i - 1) || i == NUM_BUCKETS - 1,
                    "v={v} below bucket {i} lower bound"
                );
            }
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_and_stats() {
        let h = Histogram::new();
        for i in 1..=100 {
            h.observe(i as f64 / 1000.0); // 1ms..100ms
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert!((snap.sum - 5.05).abs() < 1e-9);
        assert_eq!(snap.min, 0.001);
        assert_eq!(snap.max, 0.1);
        let p50 = snap.quantile(0.5);
        // Log-linear buckets have 25% relative width.
        assert!((0.04..=0.07).contains(&p50), "p50={p50}");
        assert!(snap.quantile(1.0) <= snap.max + 1e-12);
        assert!(snap.quantile(0.0) >= snap.min - 1e-12);
    }

    #[test]
    fn registry_reuses_instances_and_rejects_kind_conflicts() {
        let r = Registry::default();
        let a = r.counter("test_total", "help", &[("k", "x")]);
        let b = r.counter("test_total", "help", &[("k", "x")]);
        a.inc();
        b.inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("test_total", &[("k", "x")]), Some(2));
        let conflict = std::panic::catch_unwind(|| r.gauge("test_total", "help", &[]));
        assert!(conflict.is_err(), "kind conflict must panic");
    }

    #[test]
    fn collectors_run_at_snapshot_time() {
        let r = Arc::new(Registry::default());
        let source = Arc::new(AtomicU64::new(41));
        let gauge = r.gauge("collected", "help", &[]);
        let collector_source = Arc::clone(&source);
        r.register_collector(move || gauge.set(collector_source.load(Ordering::Relaxed) as f64));
        source.store(42, Ordering::Relaxed);
        assert_eq!(r.snapshot().gauge_value("collected", &[]), Some(42.0));
    }
}
