//! # haqjsk-obs
//!
//! The process-wide observability substrate of the workspace: one metrics
//! registry every layer reports through, a low-overhead span tracer, and
//! exposition of both as Prometheus text.
//!
//! Built on `std` only (like the rest of the workspace) with three pieces:
//!
//! * **Metrics** ([`metrics`]) — counters, gauges and log-linear-bucket
//!   latency histograms, registered once by `(name, labels)` and recorded
//!   through cheap cloneable handles. The hot path is sharded atomics: a
//!   `Counter::inc` or `Histogram::observe` touches a per-thread shard and
//!   never takes a lock, so instrumenting a Gram tile loop or an RPC path
//!   costs nanoseconds. Subsystems that already maintain their own atomic
//!   counters (the feature caches, the batched eigensolver, the distributed
//!   coordinator) re-export them through registry *collectors* — closures
//!   run at snapshot time — so one scrape covers every layer.
//! * **Tracing** ([`trace`]) — causal [`Span`] guards writing fixed-size
//!   records into per-thread ring buffers, drained as JSON lines for
//!   flamegraph-style offline analysis. Every span carries a
//!   [`TraceContext`] (trace id, span id, parent id); contexts are
//!   captured/attached across threads and processes so one trace follows
//!   a request through pool jobs and distributed workers. Disabled
//!   (near-zero cost) when the `HAQJSK_TRACE` environment variable is
//!   `0`.
//! * **Flight recorder** ([`flight`]) — an always-on bounded ring of
//!   recent request summaries plus a sticky slow-log
//!   (`HAQJSK_SLOW_REQUEST_MS`), so the last requests before an incident
//!   are always recoverable.
//! * **Exposition** ([`expo`]) — renders a registry [`Snapshot`] in the
//!   Prometheus text format, and parses/validates such text (the CI scrape
//!   check and the loopback tests share the validator).
//!
//! The crate deliberately knows nothing about the engine's `Json` value or
//! any other workspace type; the engine layers its own JSON conversion on
//! top of [`Snapshot`].

pub mod expo;
pub mod flight;
pub mod metrics;
pub mod trace;

pub use expo::{parse_exposition, render_prometheus, Exposition};
pub use flight::{
    flight_jsonl, flight_snapshot, record_request, slow_threshold, FlightDump, RequestRecord,
    SLOW_REQUEST_ENV_VAR,
};
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricKind, MetricValue,
    Registry, Snapshot,
};
pub use trace::{
    drain_trace_jsonl, merge_spans, record_span, span, span_id_from_hex, span_id_hex,
    take_trace_spans, trace_enabled, trace_id_from_hex, trace_id_hex, ContextGuard, Span,
    SpanRecord, TraceContext, TraceDump, TRACE_ENV_VAR,
};
