//! # haqjsk-obs
//!
//! The process-wide observability substrate of the workspace: one metrics
//! registry every layer reports through, a low-overhead span tracer, and
//! exposition of both as Prometheus text.
//!
//! Built on `std` only (like the rest of the workspace) with three pieces:
//!
//! * **Metrics** ([`metrics`]) — counters, gauges and log-linear-bucket
//!   latency histograms, registered once by `(name, labels)` and recorded
//!   through cheap cloneable handles. The hot path is sharded atomics: a
//!   `Counter::inc` or `Histogram::observe` touches a per-thread shard and
//!   never takes a lock, so instrumenting a Gram tile loop or an RPC path
//!   costs nanoseconds. Subsystems that already maintain their own atomic
//!   counters (the feature caches, the batched eigensolver, the distributed
//!   coordinator) re-export them through registry *collectors* — closures
//!   run at snapshot time — so one scrape covers every layer.
//! * **Tracing** ([`trace`]) — RAII [`Span`] guards writing fixed-size
//!   records into per-thread ring buffers, drained as JSON lines for
//!   flamegraph-style offline analysis. Disabled (near-zero cost) when the
//!   `HAQJSK_TRACE` environment variable is `0`.
//! * **Exposition** ([`expo`]) — renders a registry [`Snapshot`] in the
//!   Prometheus text format, and parses/validates such text (the CI scrape
//!   check and the loopback tests share the validator).
//!
//! The crate deliberately knows nothing about the engine's `Json` value or
//! any other workspace type; the engine layers its own JSON conversion on
//! top of [`Snapshot`].

pub mod expo;
pub mod metrics;
pub mod trace;

pub use expo::{parse_exposition, render_prometheus, Exposition};
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricKind, MetricValue,
    Registry, Snapshot,
};
pub use trace::{drain_trace_jsonl, span, trace_enabled, Span, TRACE_ENV_VAR};
