//! The flight recorder: an always-on bounded ring of recent request
//! summaries plus a sticky slow-log.
//!
//! Every served request — including rejected and panicked ones — appends
//! one [`RequestRecord`] (op, trace id, duration, status, rejection
//! marker) to a process-global ring of the most recent
//! [`RECENT_CAPACITY`] requests. Requests that were slow (duration at or
//! above `HAQJSK_SLOW_REQUEST_MS`, default 500), errored, or rejected are
//! *promoted* to a second, sticky slow-log ring that fast requests never
//! overwrite — so the interesting requests before an incident survive
//! long after the recent ring has churned past them.
//!
//! Unlike the span tracer this recorder has no off switch and
//! [`flight_snapshot`] does not consume: it is the post-incident record
//! of last resort, exposed over HTTP as `/debug/requests` and dumped to
//! stderr on graceful drain. Promotions are metered as
//! `haqjsk_slow_requests_total`.

use crate::metrics::{registry, Counter};
use crate::trace::trace_id_hex;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Environment variable: duration threshold (ms) promoting a request to
/// the sticky slow-log.
pub const SLOW_REQUEST_ENV_VAR: &str = "HAQJSK_SLOW_REQUEST_MS";

/// Default slow-request threshold when the env var is unset.
const DEFAULT_SLOW_MS: u64 = 500;

/// Requests kept in the recent ring.
const RECENT_CAPACITY: usize = 256;

/// Requests kept in the sticky slow-log.
const SLOW_CAPACITY: usize = 64;

/// The promotion threshold (cached after the first call; an unparseable
/// value falls back to the default).
pub fn slow_threshold() -> Duration {
    static THRESHOLD: OnceLock<Duration> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        let ms = std::env::var(SLOW_REQUEST_ENV_VAR)
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SLOW_MS);
        Duration::from_millis(ms)
    })
}

fn slow_counter() -> &'static Counter {
    static SLOW: OnceLock<Counter> = OnceLock::new();
    SLOW.get_or_init(|| {
        registry().counter(
            "haqjsk_slow_requests_total",
            "Requests promoted to the flight recorder's sticky slow-log \
             (slow, errored or rejected).",
            &[],
        )
    })
}

/// One request summary in the flight recorder.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Monotonic sequence number (process-wide, starting at 1).
    pub seq: u64,
    /// The request's sanitized op name.
    pub op: String,
    /// The request's trace id (`None` when tracing is disabled).
    pub trace_id: Option<u128>,
    /// Wall time the request finished, ms since the Unix epoch.
    pub unix_ms: u64,
    /// Request duration in nanoseconds.
    pub duration_ns: u64,
    /// Whether the response was `ok:true`.
    pub ok: bool,
    /// Admission-control marker (`overloaded`, `deadline_exceeded`) when
    /// the request was shed rather than served.
    pub rejected: Option<String>,
    /// The response's error message, if any (truncated).
    pub error: Option<String>,
}

struct FlightState {
    recent: VecDeque<RequestRecord>,
    slow: VecDeque<RequestRecord>,
    seq: u64,
    recorded: u64,
}

fn flight_state() -> &'static Mutex<FlightState> {
    static STATE: OnceLock<Mutex<FlightState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(FlightState {
            recent: VecDeque::with_capacity(RECENT_CAPACITY),
            slow: VecDeque::with_capacity(SLOW_CAPACITY),
            seq: 0,
            recorded: 0,
        })
    })
}

/// Error messages are summaries, not payload dumps.
const ERROR_TRUNCATE: usize = 200;

fn truncate_error(error: &str) -> String {
    if error.len() <= ERROR_TRUNCATE {
        return error.to_string();
    }
    let mut cut = ERROR_TRUNCATE;
    while !error.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &error[..cut])
}

/// Records one finished request. `rejected` is the admission-control
/// marker from the response (`overloaded` / `deadline_exceeded`), `error`
/// the response's error message. Always on; called once per request from
/// the serving layer.
pub fn record_request(
    op: &str,
    trace_id: Option<u128>,
    duration: Duration,
    ok: bool,
    rejected: Option<&str>,
    error: Option<&str>,
) {
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let promote = duration >= slow_threshold() || !ok || rejected.is_some();
    {
        let mut state = flight_state().lock().expect("flight recorder poisoned");
        state.seq += 1;
        state.recorded += 1;
        let record = RequestRecord {
            seq: state.seq,
            op: op.to_string(),
            trace_id,
            unix_ms,
            duration_ns: duration.as_nanos() as u64,
            ok,
            rejected: rejected.map(str::to_string),
            error: error.map(truncate_error),
        };
        if promote {
            if state.slow.len() >= SLOW_CAPACITY {
                state.slow.pop_front();
            }
            state.slow.push_back(record.clone());
        }
        push_recent(&mut state, record);
    }
    if promote {
        slow_counter().inc();
    }
}

fn push_recent(state: &mut FlightState, record: RequestRecord) {
    if state.recent.len() >= RECENT_CAPACITY {
        state.recent.pop_front();
    }
    state.recent.push_back(record);
}

/// A point-in-time, non-consuming view of the flight recorder.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// The most recent requests, oldest first.
    pub recent: Vec<RequestRecord>,
    /// The sticky slow-log (slow/errored/rejected requests), oldest first.
    pub slow: Vec<RequestRecord>,
    /// The active promotion threshold in milliseconds.
    pub slow_threshold_ms: u64,
    /// Requests recorded since process start.
    pub recorded: u64,
}

/// Snapshots the flight recorder without consuming it.
pub fn flight_snapshot() -> FlightDump {
    let state = flight_state().lock().expect("flight recorder poisoned");
    FlightDump {
        recent: state.recent.iter().cloned().collect(),
        slow: state.slow.iter().cloned().collect(),
        slow_threshold_ms: slow_threshold().as_millis() as u64,
        recorded: state.recorded,
    }
}

fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn record_jsonl(kind: &str, r: &RequestRecord) -> String {
    let mut line = format!(
        "{{\"kind\":\"{kind}\",\"seq\":{},\"op\":\"{}\"",
        r.seq,
        escape_json(&r.op)
    );
    if let Some(trace_id) = r.trace_id {
        line.push_str(&format!(",\"trace\":\"{}\"", trace_id_hex(trace_id)));
    }
    line.push_str(&format!(
        ",\"unix_ms\":{},\"dur_us\":{:.3},\"ok\":{}",
        r.unix_ms,
        r.duration_ns as f64 / 1000.0,
        r.ok
    ));
    if let Some(rejected) = &r.rejected {
        line.push_str(&format!(",\"rejected\":\"{}\"", escape_json(rejected)));
    }
    if let Some(error) = &r.error {
        line.push_str(&format!(",\"error\":\"{}\"", escape_json(error)));
    }
    line.push('}');
    line
}

impl FlightDump {
    /// Renders the dump as JSON lines: one `meta` line, then the slow-log
    /// (`kind:"slow"`), then the recent ring (`kind:"recent"`), each
    /// oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"kind\":\"meta\",\"recorded\":{},\"slow_threshold_ms\":{},\"slow\":{},\"recent\":{}}}\n",
            self.recorded,
            self.slow_threshold_ms,
            self.slow.len(),
            self.recent.len()
        );
        for r in &self.slow {
            out.push_str(&record_jsonl("slow", r));
            out.push('\n');
        }
        for r in &self.recent {
            out.push_str(&record_jsonl("recent", r));
            out.push('\n');
        }
        out
    }
}

/// Snapshots the recorder and renders it as JSON lines (the
/// `/debug/requests` body and the on-drain stderr dump).
pub fn flight_jsonl() -> String {
    flight_snapshot().to_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_record_and_slow_errored_rejected_promote() {
        let before = flight_snapshot();
        record_request(
            "flight_test_fast",
            Some(0xabc),
            Duration::from_micros(50),
            true,
            None,
            None,
        );
        record_request(
            "flight_test_error",
            None,
            Duration::from_micros(50),
            false,
            None,
            Some("boom"),
        );
        record_request(
            "flight_test_shed",
            Some(1),
            Duration::from_micros(10),
            false,
            Some("overloaded"),
            None,
        );
        record_request(
            "flight_test_slow",
            Some(2),
            slow_threshold() + Duration::from_millis(1),
            true,
            None,
            None,
        );
        let dump = flight_snapshot();
        assert_eq!(dump.recorded, before.recorded + 4);
        let ops: Vec<&str> = dump.recent.iter().map(|r| r.op.as_str()).collect();
        assert!(ops.contains(&"flight_test_fast"));
        let slow_ops: Vec<&str> = dump.slow.iter().map(|r| r.op.as_str()).collect();
        assert!(slow_ops.contains(&"flight_test_error"));
        assert!(slow_ops.contains(&"flight_test_shed"));
        assert!(slow_ops.contains(&"flight_test_slow"));
        assert!(!slow_ops.contains(&"flight_test_fast"));
        // JSONL carries the markers and the trace id.
        let jsonl = dump.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"meta\""));
        assert!(jsonl.contains("\"rejected\":\"overloaded\""));
        assert!(jsonl.contains("\"error\":\"boom\""));
        assert!(jsonl.contains(&trace_id_hex(0xabc)));
        // Snapshots do not consume.
        assert_eq!(flight_snapshot().recorded, dump.recorded);
    }

    #[test]
    fn rings_stay_bounded() {
        for i in 0..(RECENT_CAPACITY + SLOW_CAPACITY + 32) {
            record_request(
                "flight_test_bound",
                None,
                Duration::from_micros(1),
                i % 2 == 0,
                None,
                None,
            );
        }
        let dump = flight_snapshot();
        assert!(dump.recent.len() <= RECENT_CAPACITY);
        assert!(dump.slow.len() <= SLOW_CAPACITY);
    }
}
