//! Property tests for the log-linear histogram (the ISSUE's three
//! contracts):
//!
//! * **bucket monotonicity** — bucket upper bounds strictly increase, every
//!   value lands in the bucket that brackets it, and the rendered
//!   Prometheus `_bucket` series is cumulative;
//! * **quantile bounds** — any quantile of a non-empty histogram lies
//!   within the recorded `[min, max]`;
//! * **shard merging** — observing a value set spread across shards
//!   produces the same snapshot as observing it all on one shard.

use haqjsk_obs::metrics::{bucket_index, bucket_upper_bound, Histogram, NUM_BUCKETS};
use haqjsk_obs::{parse_exposition, Registry};
use proptest::prelude::*;

/// Positive values spanning the resolved range and both overflow ends.
fn observation() -> impl Strategy<Value = f64> {
    // exponent ~ [-24, 14] covers underflow and overflow buckets too.
    (-24.0f64..14.0, 1.0f64..2.0).prop_map(|(e, m)| m * e.exp2())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bucket_bounds_bracket_every_value(v in observation()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i), "v={v} above bucket {i} bound");
        if i > 0 && i < NUM_BUCKETS - 1 {
            prop_assert!(
                v >= bucket_upper_bound(i - 1),
                "v={v} below bucket {i} lower bound"
            );
        }
    }

    #[test]
    fn rendered_bucket_series_is_cumulative(values in proptest::collection::vec(observation(), 1..200)) {
        // A fresh registry per case: the rendered text must parse and the
        // parser itself enforces cumulative buckets and +Inf == _count.
        let registry = Registry::default();
        let h = registry.histogram("prop_seconds", "Property-test histogram.", &[]);
        for &v in &values {
            h.observe(v);
        }
        let text = registry.render_prometheus();
        let expo = parse_exposition(&text);
        prop_assert!(expo.is_ok(), "rendered text failed to parse: {:?}\n{text}", expo.err());
        let expo = expo.unwrap();
        prop_assert_eq!(
            expo.value("prop_seconds_count", &[]),
            Some(values.len() as f64)
        );
    }

    #[test]
    fn quantiles_stay_within_min_max(
        values in proptest::collection::vec(observation(), 1..200),
        q in 0.0f64..1.001,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        let estimate = snap.quantile(q);
        prop_assert!(
            estimate >= snap.min && estimate <= snap.max,
            "quantile({q})={estimate} outside [{}, {}]",
            snap.min,
            snap.max
        );
    }

    #[test]
    fn merged_shards_match_single_shard(
        values in proptest::collection::vec((observation(), 0usize..64), 1..200),
    ) {
        let spread = Histogram::new();
        let single = Histogram::new();
        for &(v, shard) in &values {
            spread.observe_shard(shard, v);
            single.observe_shard(0, v);
        }
        let a = spread.snapshot();
        let b = single.snapshot();
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(&a.buckets, &b.buckets);
        prop_assert_eq!(a.min, b.min);
        prop_assert_eq!(a.max, b.max);
        // Sums are f64 accumulations in different orders; they agree to
        // rounding.
        prop_assert!(
            (a.sum - b.sum).abs() <= 1e-9 * b.sum.abs().max(1.0),
            "sums diverge: {} vs {}",
            a.sum,
            b.sum
        );
    }
}
