//! Property test for Prometheus exposition escaping: any label value —
//! including backslashes, quotes, newlines and braces — must survive a
//! render → parse round trip byte-for-byte.

use haqjsk_obs::{parse_exposition, Registry};
use proptest::prelude::*;

/// Characters biased towards everything structural in the text format.
const PALETTE: &[char] = &[
    '\\', '"', '\n', '{', '}', ',', '=', ' ', 'a', 'b', 'Z', '0', '_', '/', ':', '?', 'é', '✓',
];

fn label_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PALETTE.len(), 0..24)
        .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn label_values_round_trip_through_the_exposition(
        path in label_value(),
        worker in label_value(),
    ) {
        let registry = Registry::default();
        registry
            .counter(
                "prop_escape_total",
                "Escaping property-test counter.",
                &[("path", &path), ("worker", &worker)],
            )
            .add(7);
        let text = registry.render_prometheus();
        let expo = parse_exposition(&text);
        prop_assert!(
            expo.is_ok(),
            "rendered text failed to parse: {:?}\n{text}",
            expo.err()
        );
        let expo = expo.unwrap();
        prop_assert_eq!(
            expo.value(
                "prop_escape_total",
                &[("path", path.as_str()), ("worker", worker.as_str())]
            ),
            Some(7.0),
            "value lost for path={:?} worker={:?}\n{}",
            path,
            worker,
            text
        );
    }
}
