//! CI regression guard for the per-pair latency trajectory.
//!
//! Compares a freshly measured `pairwise --json` report against the
//! committed baseline (`BENCH_pairwise.json` at the repo root) and fails
//! when any kernel row's **warm** per-pair time regressed by more than the
//! threshold. Rows are matched on `(kernel, node_size)` — the warm column
//! is per-pair-normalised, so a smoke run (fewer graphs) is comparable to
//! the committed full sweep wherever the node sizes overlap; rows without
//! a baseline counterpart are reported and skipped.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin pairwise_check -- \
//!     <current.json> <baseline.json> [--threshold 1.25]
//! ```
//!
//! **Machine normalisation.** Raw wall-clock is machine-relative, and the
//! committed baseline is rarely produced on the exact CI runner. When both
//! rows carry a `before_ms_per_pair` column (the legacy per-pair algorithm,
//! measured in the same process) the guard therefore compares the
//! **warm/before ratio** — the legacy loop acts as a same-machine speed
//! anchor, so a uniformly slower runner cancels out while a regression in
//! the fast path (which is what this guard protects) still moves the
//! ratio. Rows missing the anchor fall back to absolute warm times. The
//! trade: a change that slows the shared primitives (anchor and fast path
//! alike) is invisible here — that is the job of the committed baseline
//! refresh on perf-relevant PRs, not of a cross-machine CI gate.
//!
//! Exit codes: 0 = all matched rows within threshold, 1 = regression (or
//! nothing matched — a guard that compares nothing must not pass), 2 =
//! usage/parse error. `PAIRWISE_CHECK_THRESHOLD` overrides the default
//! threshold; `--threshold` wins over both.

use haqjsk_engine::Json;

struct RowRef<'a> {
    kernel: &'a str,
    node_size: usize,
    warm_ms: f64,
    /// The legacy-algorithm column, used as the same-machine speed anchor.
    before_ms: Option<f64>,
}

impl RowRef<'_> {
    /// Warm time normalised by the in-run anchor, when present.
    fn anchored(&self) -> Option<f64> {
        match self.before_ms {
            Some(before) if before > 0.0 => Some(self.warm_ms / before),
            _ => None,
        }
    }
}

fn rows(report: &Json) -> Vec<RowRef<'_>> {
    let Some(Json::Arr(results)) = report.get("results") else {
        return Vec::new();
    };
    results
        .iter()
        .filter_map(|row| {
            Some(RowRef {
                kernel: row.get("kernel")?.as_str()?,
                node_size: row.get("node_size")?.as_usize()?,
                warm_ms: row.get("after_warm_ms_per_pair")?.as_f64()?,
                before_ms: row.get("before_ms_per_pair").and_then(Json::as_f64),
            })
        })
        .collect()
}

fn load(path: &str) -> Json {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|err| {
        eprintln!("error: cannot read {path}: {err}");
        std::process::exit(2);
    });
    Json::parse(&raw).unwrap_or_else(|err| {
        eprintln!("error: cannot parse {path}: {err}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    // `PAIRWISE_CHECK_THRESHOLD` lets an operator loosen/tighten the guard
    // (e.g. for a known-slower runner class) without editing the workflow;
    // `--threshold` still wins.
    let mut threshold = std::env::var("PAIRWISE_CHECK_THRESHOLD")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(1.25_f64);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            threshold = iter
                .next()
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("error: --threshold requires a numeric argument");
                    std::process::exit(2);
                });
        } else {
            paths.push(arg);
        }
    }
    let [current_path, baseline_path] = paths[..] else {
        eprintln!("usage: pairwise_check <current.json> <baseline.json> [--threshold 1.25]");
        std::process::exit(2);
    };

    let current = load(current_path);
    let baseline = load(baseline_path);
    let current_rows = rows(&current);
    let baseline_rows = rows(&baseline);

    let mut compared = 0usize;
    let mut regressions = 0usize;
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>8} {:>9}  verdict (threshold {threshold:.2}x)",
        "kernel", "nodes", "current ms", "baseline ms", "ratio", "mode"
    );
    for row in &current_rows {
        let Some(base) = baseline_rows
            .iter()
            .find(|b| b.kernel == row.kernel && b.node_size == row.node_size)
        else {
            println!(
                "{:<18} {:>6} {:>12.4} {:>12} {:>8} {:>9}  skipped (no baseline row)",
                row.kernel, row.node_size, row.warm_ms, "-", "-", "-"
            );
            continue;
        };
        compared += 1;
        // Prefer the anchor-normalised comparison (machine-portable); fall
        // back to absolute warm times when either report lacks the anchor.
        let (ratio, mode) = match (row.anchored(), base.anchored()) {
            (Some(cur), Some(bas)) => (cur / bas.max(1e-12), "anchored"),
            _ => (row.warm_ms / base.warm_ms.max(1e-12), "absolute"),
        };
        let regressed = ratio > threshold;
        if regressed {
            regressions += 1;
        }
        println!(
            "{:<18} {:>6} {:>12.4} {:>12.4} {:>7.2}x {:>9}  {}",
            row.kernel,
            row.node_size,
            row.warm_ms,
            base.warm_ms,
            ratio,
            mode,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }

    if compared == 0 {
        eprintln!(
            "error: no rows of {current_path} matched the baseline — the guard compared nothing"
        );
        std::process::exit(1);
    }
    if regressions > 0 {
        eprintln!(
            "error: {regressions} kernel row(s) regressed beyond {threshold:.2}x of the committed baseline"
        );
        std::process::exit(1);
    }
    println!("all {compared} matched rows within {threshold:.2}x of the baseline");
}
