//! Regenerates Table I of the paper: the qualitative property matrix of the
//! kernel families (positive definiteness, tottering, alignment,
//! local/global information, hierarchy).
//!
//! ```text
//! cargo run -p haqjsk-bench --bin table1_properties
//! ```

use haqjsk_kernels::properties::table1_kernel_family_properties;

fn main() {
    println!("Table I — properties of the kernel families\n");
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>12} {:>8} {:>8} {:>14}",
        "Kernel family",
        "PD",
        "Tottering",
        "Struct.align",
        "Trans.align",
        "Local",
        "Global",
        "Hierarchical"
    );
    for row in table1_kernel_family_properties() {
        println!(
            "{:<24} {:>10} {:>10} {:>12} {:>12} {:>8} {:>8} {:>14}",
            row.family,
            row.positive_definite.symbol(),
            row.reduce_tottering.symbol(),
            row.structural_alignment.symbol(),
            row.transitive_alignment.symbol(),
            row.local_information.symbol(),
            row.global_information.symbol(),
            row.hierarchical_alignment.symbol(),
        );
    }
    println!(
        "\n(The PD and transitivity claims are verified empirically by the psd_check binary.)"
    );
}
