//! Quantitative version of the paper's Sec. II-A remark: the CTQW
//! discriminates global graph structure that the classical CTRW forgets.
//!
//! For pairs of non-isomorphic graphs with identical degree sequences, the
//! binary compares (a) the distance between their long-horizon CTRW averaged
//! kernels and (b) the QJSD between their CTQW density matrices.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin ctqw_vs_ctrw
//! ```

use haqjsk_graph::generators::{cycle_graph, path_graph, random_regular, watts_strogatz};
use haqjsk_graph::Graph;
use haqjsk_quantum::ctrw::ctrw_average_kernel;
use haqjsk_quantum::{ctqw_density_infinite, qjsd_padded};

fn pair_report(name: &str, a: &Graph, b: &Graph) {
    let rho_a = ctqw_density_infinite(a).unwrap();
    let rho_b = ctqw_density_infinite(b).unwrap();
    let quantum = qjsd_padded(&rho_a, &rho_b).unwrap();

    let horizon = 50.0;
    let ka = ctrw_average_kernel(a, horizon, 64).unwrap();
    let kb = ctrw_average_kernel(b, horizon, 64).unwrap();
    let n = ka.rows().max(kb.rows());
    let classical =
        (&ka.zero_pad(n, n).unwrap() - &kb.zero_pad(n, n).unwrap()).frobenius_norm() / n as f64;

    println!("{:<34} {:>16.6} {:>20.6}", name, quantum, classical);
}

fn main() {
    println!("CTQW vs CTRW discrimination of structurally different graphs\n");
    println!(
        "{:<34} {:>16} {:>20}",
        "graph pair", "CTQW QJSD", "CTRW avg-kernel gap"
    );
    pair_report("cycle C12  vs  path P12", &cycle_graph(12), &path_graph(12));
    pair_report(
        "2-regular C12  vs  random 2-regular",
        &cycle_graph(12),
        &random_regular(12, 2, 3),
    );
    pair_report(
        "ring lattice vs rewired small world",
        &watts_strogatz(16, 4, 0.0, 1),
        &watts_strogatz(16, 4, 0.4, 1),
    );
    pair_report("same graph (control)", &cycle_graph(12), &cycle_graph(12));
    println!("\nLarger CTQW divergences for structurally different pairs (and zero for the control) show the quantum walk retaining discriminative information; the long-horizon CTRW kernels converge towards each other on regular structures.");
}
