//! Ablation: effect of the 1-level prototype count `M = |P^{1,k}|` on
//! classification accuracy and runtime (the paper fixes `M = 256` because it
//! exceeds the mean graph size of most datasets).
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin ablation_prototypes [--medium|--full]
//! ```

use haqjsk_bench::{evaluate_haqjsk, RunScale};
use haqjsk_core::{HaqjskConfig, HaqjskVariant};
use haqjsk_datasets::generate_by_name;
use std::time::Instant;

fn main() {
    let scale = RunScale::from_args();
    println!("Ablation — prototype count M ({})\n", scale.describe());
    let dataset = generate_by_name("PTC(MR)", scale.graph_divisor(), scale.size_divisor(), 42)
        .expect("PTC(MR) is a known dataset");
    let cv = scale.cv_config();
    let base = scale.haqjsk_config();

    let grid: &[usize] = match scale {
        RunScale::Quick => &[4, 8, 16, 32],
        RunScale::Medium => &[8, 16, 32, 64, 128],
        RunScale::Full => &[16, 32, 64, 128, 256],
    };

    println!(
        "{:<6} {:>22} {:>22} {:>12}",
        "M", "HAQJSK(A) accuracy", "HAQJSK(D) accuracy", "seconds"
    );
    for &m in grid {
        let config = HaqjskConfig {
            num_prototypes: m,
            ..base.clone()
        };
        let start = Instant::now();
        let a = evaluate_haqjsk(HaqjskVariant::AlignedAdjacency, &config, &dataset, &cv)
            .expect("evaluation succeeds");
        let d = evaluate_haqjsk(HaqjskVariant::AlignedDensity, &config, &dataset, &cv)
            .expect("evaluation succeeds");
        println!(
            "{:<6} {:>22} {:>22} {:>12.1}",
            m,
            a.accuracy,
            d.accuracy,
            start.elapsed().as_secs_f64()
        );
    }
}
