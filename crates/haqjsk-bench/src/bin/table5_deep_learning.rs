//! Regenerates Table V of the paper: the HAQJSK kernels against graph
//! deep-learning models on the MUTAG, PTC(MR), IMDB-B, IMDB-M, RED-B and
//! COLLAB stand-ins. The published baselines (DGCNN, PSGCNN, DCNN, DGK, AWE)
//! are represented by two from-scratch, WL-bounded message-passing models: a
//! GCN and a WL-feature MLP (see DESIGN.md for the substitution note).
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin table5_deep_learning [--medium|--full]
//! ```

use haqjsk_bench::{evaluate_haqjsk, print_accuracy_table, AccuracyRow, RunScale};
use haqjsk_core::HaqjskVariant;
use haqjsk_datasets::generate_by_name;
use haqjsk_graph::Graph;
use haqjsk_linalg::stats;
use haqjsk_ml::cross_validation::stratified_folds;
use haqjsk_ml::gcn::{GcnClassifier, GcnConfig};
use haqjsk_ml::mlp::{WlMlpClassifier, WlMlpConfig};

/// k-fold cross-validated accuracy of a train/predict closure.
fn cross_validate_model<F>(
    graphs: &[Graph],
    labels: &[usize],
    folds: usize,
    train_predict: F,
) -> AccuracyRow
where
    F: Fn(&[Graph], &[usize], &[Graph]) -> Vec<usize>,
{
    let assignment = stratified_folds(labels, folds, 7);
    let mut accuracies = Vec::new();
    for fold in 0..folds {
        let train_idx: Vec<usize> = (0..labels.len())
            .filter(|&i| assignment[i] != fold)
            .collect();
        let test_idx: Vec<usize> = (0..labels.len())
            .filter(|&i| assignment[i] == fold)
            .collect();
        if train_idx.is_empty() || test_idx.is_empty() {
            continue;
        }
        let train_graphs: Vec<Graph> = train_idx.iter().map(|&i| graphs[i].clone()).collect();
        let train_labels: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let test_graphs: Vec<Graph> = test_idx.iter().map(|&i| graphs[i].clone()).collect();
        let test_labels: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
        let predictions = train_predict(&train_graphs, &train_labels, &test_graphs);
        accuracies.push(haqjsk_ml::accuracy(&predictions, &test_labels));
    }
    let percents: Vec<f64> = accuracies.iter().map(|a| a * 100.0).collect();
    AccuracyRow {
        method: String::new(),
        accuracy: format!(
            "{:.2} ± {:.2}",
            stats::mean(&percents),
            stats::standard_error(&percents)
        ),
        mean_percent: stats::mean(&percents),
    }
}

fn main() {
    let scale = RunScale::from_args();
    println!(
        "Table V — HAQJSK kernels vs graph deep-learning stand-ins, {}",
        scale.describe()
    );
    let datasets = ["MUTAG", "PTC(MR)", "IMDB-B", "IMDB-M", "RED-B", "COLLAB"];
    // RED-B / COLLAB are huge; at quick scale we shrink them harder.
    let cv = scale.cv_config();
    let haqjsk_config = scale.haqjsk_config();
    let folds = if scale == RunScale::Quick { 3 } else { 5 };

    for name in datasets {
        let extra = if matches!(name, "RED-B" | "COLLAB") {
            4
        } else {
            1
        };
        let Some(dataset) = generate_by_name(
            name,
            scale.graph_divisor() * extra,
            scale.size_divisor() * extra,
            42,
        ) else {
            continue;
        };
        let mut rows = Vec::new();
        for variant in [
            HaqjskVariant::AlignedAdjacency,
            HaqjskVariant::AlignedDensity,
        ] {
            match evaluate_haqjsk(variant, &haqjsk_config, &dataset, &cv) {
                Ok(row) => rows.push(row),
                Err(err) => eprintln!("{} failed on {name}: {err}", variant.label()),
            }
        }

        let mut gcn_row =
            cross_validate_model(&dataset.graphs, &dataset.classes, folds, |tg, tl, test| {
                let model = GcnClassifier::train(
                    tg,
                    tl,
                    GcnConfig {
                        hidden_dim: 16,
                        epochs: 80,
                        ..Default::default()
                    },
                );
                test.iter().map(|g| model.predict(g)).collect()
            });
        gcn_row.method = "GCN (DGCNN/DCNN stand-in)".to_string();
        rows.push(gcn_row);

        let mut mlp_row =
            cross_validate_model(&dataset.graphs, &dataset.classes, folds, |tg, tl, test| {
                let model = WlMlpClassifier::train(
                    tg,
                    tl,
                    WlMlpConfig {
                        hidden_dim: 24,
                        epochs: 100,
                        ..Default::default()
                    },
                );
                test.iter().map(|g| model.predict(g)).collect()
            });
        mlp_row.method = "WL-MLP (DGK stand-in)".to_string();
        rows.push(mlp_row);

        print_accuracy_table(
            &format!(
                "{name} ({} graphs, {} classes)",
                dataset.len(),
                dataset.num_classes()
            ),
            &rows,
        );
    }

    println!("\nThe published DGCNN/PSGCNN/DCNN/DGK/AWE numbers in the paper are quoted from their original papers; here the comparison is against from-scratch WL-bounded models trained on the same synthetic data (see DESIGN.md).");
}
