//! Empirical check of the complexity analysis of Sec. III-D: the per-graph
//! cost of the HAQJSK pipeline is dominated by the `O(n^3)` CTQW
//! eigendecomposition, and the Gram-matrix cost grows as `O(N^2)` in the
//! number of graphs.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin scaling [--json <path>] [--metrics]
//! ```
//!
//! `--json` writes the measured sections as a machine-readable report so
//! the perf trajectory can be tracked across PRs; `--metrics` dumps the
//! process metrics registry as Prometheus text after the run. The
//! distributed section doubles as an integration check of the dist
//! observability: it asserts the per-worker RPC round-trip histograms were
//! populated by the two-worker run.

use haqjsk_bench::{dump_metrics_if_requested, engine_banner, json_output_path, write_json_report};
use haqjsk_core::{HaqjskConfig, HaqjskModel, HaqjskVariant};
use haqjsk_engine::{graph_key, BackendKind, CacheConfig, Engine, FeatureCache, Json};
use haqjsk_graph::generators::erdos_renyi;
use haqjsk_graph::Graph;
use haqjsk_kernels::{cached_ctqw_densities, GraphKernel, QjskUnaligned};
use haqjsk_quantum::{ctqw_density_infinite, DensityMatrix};
use std::time::Instant;

fn main() {
    let json_path = json_output_path();
    let mut ctqw_rows: Vec<Json> = Vec::new();
    let mut gram_rows: Vec<Json> = Vec::new();
    let mut engine_rows: Vec<Json> = Vec::new();
    let mut sweep_rows: Vec<Json> = Vec::new();
    println!("{}\n", engine_banner());
    println!("Scaling — CTQW density matrix cost vs graph size n\n");
    println!("{:>6} {:>14}", "n", "milliseconds");
    for n in [16usize, 32, 64, 128, 256] {
        let g = erdos_renyi(n, 0.2, 1);
        let start = Instant::now();
        let reps = if n <= 64 { 20 } else { 5 };
        for _ in 0..reps {
            let _ = ctqw_density_infinite(&g).unwrap();
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        println!("{:>6} {:>14.2}", n, ms);
        ctqw_rows.push(Json::obj([
            ("n", Json::Num(n as f64)),
            ("wall_ms", Json::Num(ms)),
        ]));
    }

    println!("\nScaling — HAQJSK(A) Gram-matrix cost vs number of graphs N\n");
    println!("{:>6} {:>14}", "N", "seconds");
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 16,
        layer_cap: 3,
        ..HaqjskConfig::small()
    };
    for n_graphs in [8usize, 16, 32, 64] {
        let graphs: Vec<Graph> = (0..n_graphs)
            .map(|i| erdos_renyi(20 + i % 10, 0.25, i as u64))
            .collect();
        let start = Instant::now();
        let model = HaqjskModel::fit(&graphs, config.clone(), HaqjskVariant::AlignedAdjacency)
            .expect("fit succeeds");
        let _ = model.gram_matrix(&graphs).expect("gram succeeds");
        let seconds = start.elapsed().as_secs_f64();
        println!("{:>6} {:>14.2}", n_graphs, seconds);
        gram_rows.push(Json::obj([
            ("n_graphs", Json::Num(n_graphs as f64)),
            ("wall_ms", Json::Num(seconds * 1000.0)),
        ]));
    }

    println!("\nEngine — tiled parallel Gram vs serial, and the feature cache\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "N", "serial s", "tiled s", "warm s"
    );
    for n_graphs in [16usize, 32, 64] {
        let graphs: Vec<Graph> = (0..n_graphs)
            .map(|i| erdos_renyi(24 + i % 8, 0.25, i as u64))
            .collect();
        let kernel = QjskUnaligned::default();
        haqjsk_kernels::features::clear_density_cache();

        // Serial reference: per-graph densities once, pairs on one thread.
        let start = Instant::now();
        let densities = cached_ctqw_densities(&graphs);
        let _ = Engine::gram_serial(n_graphs, |i, j| {
            let d = haqjsk_quantum::qjsd_padded(&densities[i], &densities[j]).unwrap();
            (-d).exp()
        });
        let serial = start.elapsed().as_secs_f64();

        // Cold tiled run (cache cleared), then a warm run hitting the cache.
        haqjsk_kernels::features::clear_density_cache();
        let start = Instant::now();
        let _ = kernel.gram_matrix(&graphs);
        let tiled = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let _ = kernel.gram_matrix(&graphs);
        let warm = start.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12.3}",
            n_graphs, serial, tiled, warm
        );
        engine_rows.push(Json::obj([
            ("n_graphs", Json::Num(n_graphs as f64)),
            ("serial_ms", Json::Num(serial * 1000.0)),
            ("tiled_ms", Json::Num(tiled * 1000.0)),
            ("warm_ms", Json::Num(warm * 1000.0)),
        ]));
    }
    println!("\nBackend x shard sweep — QJSK Gram on 32 graphs, per-configuration cache\n");
    println!(
        "{:>8} {:>7} {:>10} {:>10} {:>9} {:>10}",
        "backend", "shards", "cold s", "warm s", "hit rate", "evictions"
    );
    let sweep_graphs: Vec<Graph> = (0..32)
        .map(|i| erdos_renyi(20 + i % 8, 0.25, 1000 + i as u64))
        .collect();
    let n = sweep_graphs.len();
    // A budget sized to roughly half the working set, so the sweep also
    // exercises LRU eviction under each shard count.
    let one_density = (28usize * 28 * 8) + 64;
    let budget = one_density * n / 2;
    for backend in BackendKind::ALL {
        for shards in [1usize, 4, 16] {
            let cache: FeatureCache<DensityMatrix> = FeatureCache::with_config(CacheConfig {
                shards,
                budget_bytes: Some(budget),
                ..CacheConfig::default()
            });
            let density = |i: usize| {
                cache.get_or_compute(graph_key(&sweep_graphs[i]), || {
                    ctqw_density_infinite(&sweep_graphs[i]).expect("non-empty graph")
                })
            };
            let entry = |i: usize, j: usize| {
                let d = haqjsk_quantum::qjsd_padded(&density(i), &density(j)).unwrap();
                (-d).exp()
            };
            let run = || {
                let start = Instant::now();
                let _ = Engine::global().gram_prefetched(
                    Some(backend),
                    n,
                    |i| {
                        let _ = density(i);
                    },
                    entry,
                );
                start.elapsed().as_secs_f64()
            };
            let cold = run();
            let warm = run();
            let stats = cache.stats();
            println!(
                "{:>8} {:>7} {:>10.3} {:>10.3} {:>8.1}% {:>10}",
                backend.label(),
                shards,
                cold,
                warm,
                stats.hit_rate() * 100.0,
                stats.evictions
            );
            sweep_rows.push(Json::obj([
                ("backend", Json::Str(backend.label().to_string())),
                ("shards", Json::Num(shards as f64)),
                ("cold_ms", Json::Num(cold * 1000.0)),
                ("warm_ms", Json::Num(warm * 1000.0)),
                ("cache_hit_rate", Json::Num(stats.hit_rate())),
                ("evictions", Json::Num(stats.evictions as f64)),
            ]));
        }
    }

    let dist_rows = distributed_section();

    if let Some(path) = json_path {
        let report = Json::obj([
            ("bench", Json::Str("scaling".to_string())),
            // Which eigensolver SIMD path produced these timings.
            (
                "simd_path",
                Json::Str(haqjsk_linalg::active_simd_label().to_string()),
            ),
            ("ctqw_density", Json::Arr(ctqw_rows)),
            ("haqjsk_gram", Json::Arr(gram_rows)),
            ("engine_gram", Json::Arr(engine_rows)),
            ("backend_shard_sweep", Json::Arr(sweep_rows)),
            ("distributed", Json::Arr(dist_rows)),
        ]);
        write_json_report(&path, &report);
    }

    println!("\n{}", engine_banner());

    println!("\nPer-graph cost is cubic in n (eigendecomposition); Gram cost is quadratic in N — matching the O(N^2 n^3) analysis of Sec. III-D.");

    dump_metrics_if_requested();
}

/// A worker process spawned next to this benchmark binary, killed on drop.
struct BenchWorker {
    child: std::process::Child,
    addr: String,
}

impl Drop for BenchWorker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `haqjsk-worker` (built into the same target directory by the
/// workspace build) with `threads` engine workers; `None` when the binary
/// is not present.
fn spawn_bench_worker(threads: usize) -> Option<BenchWorker> {
    use std::io::BufRead;
    let bin = std::env::current_exe()
        .ok()?
        .parent()?
        .join("haqjsk-worker");
    if !bin.exists() {
        return None;
    }
    let mut child = std::process::Command::new(bin)
        .arg("127.0.0.1:0")
        .env("HAQJSK_THREADS", threads.to_string())
        .env_remove("HAQJSK_BACKEND")
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .ok()?;
    let stdout = child.stdout.take()?;
    let mut line = String::new();
    std::io::BufReader::new(stdout).read_line(&mut line).ok()?;
    let addr = line.trim().rsplit(' ').next()?.to_string();
    addr.contains(':').then_some(BenchWorker { child, addr })
}

/// Distributed vs single-process execution on a 64-graph warm Gram: two
/// worker processes whose thread counts sum to the driver's `TiledPool`
/// thread count (same total compute threads; the coordinator threads only
/// do IO), plus the distributed-pool counters the ROADMAP asks the bench
/// to surface.
fn distributed_section() -> Vec<Json> {
    use haqjsk_dist::{Coordinator, DistConfig, WorkerOptions, WorkerServer};

    let n_graphs = 64usize;
    // Graphs big enough that the per-pair mixture eigensolves dominate the
    // wire/scheduling overhead — the regime distribution is for.
    let graphs: Vec<Graph> = (0..n_graphs)
        .map(|i| erdos_renyi(34 + i % 8, 0.3, 4000 + i as u64))
        .collect();
    let kernel = QjskUnaligned::default();
    let threads = Engine::global().threads();
    let per_worker = threads.div_ceil(2).max(1);
    let mut rows = Vec::new();

    println!(
        "\nDistributed — 2 workers x {per_worker} threads vs single-process tiled x {threads} threads, {n_graphs}-graph Gram\n"
    );
    println!("{:>10} {:>10} {:>10}", "backend", "cold s", "warm s");

    let timed = |backend: BackendKind| {
        let cold = {
            let start = Instant::now();
            let _ = kernel.gram_matrix_on(&graphs, Some(backend));
            start.elapsed().as_secs_f64()
        };
        // Warm: everything cacheable is resident (local feature caches,
        // worker stores and caches); min over repeats for guard stability.
        let warm = (0..3)
            .map(|_| {
                let start = Instant::now();
                let _ = kernel.gram_matrix_on(&graphs, Some(backend));
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        (cold, warm)
    };

    haqjsk_kernels::features::clear_density_cache();
    let (local_cold, local_warm) = timed(BackendKind::TiledPool);
    println!("{:>10} {:>10.3} {:>10.3}", "tiled", local_cold, local_warm);
    rows.push(Json::obj([
        ("backend", Json::Str("tiled".to_string())),
        ("threads", Json::Num(threads as f64)),
        ("cold_ms", Json::Num(local_cold * 1000.0)),
        ("warm_ms", Json::Num(local_warm * 1000.0)),
    ]));

    // Prefer real worker processes (the acceptance configuration); fall
    // back to in-process workers when the binary is absent (e.g. running
    // the bench from a partial build).
    let processes: Vec<BenchWorker> = (0..2)
        .filter_map(|_| spawn_bench_worker(per_worker))
        .collect();
    let mut in_process: Vec<WorkerServer> = Vec::new();
    let addrs: Vec<String> = if processes.len() == 2 {
        processes.iter().map(|w| w.addr.clone()).collect()
    } else {
        println!("(haqjsk-worker binary not found; using in-process workers)");
        in_process = (0..2)
            .map(|_| {
                WorkerServer::spawn("127.0.0.1:0", WorkerOptions::default())
                    .expect("bind in-process worker")
            })
            .collect();
        in_process
            .iter()
            .map(|s| s.local_addr().to_string())
            .collect()
    };
    let mode = if processes.len() == 2 {
        "processes"
    } else {
        "in-process"
    };

    let coordinator = match Coordinator::connect(&addrs, DistConfig::from_env()) {
        Ok(c) => std::sync::Arc::new(c),
        Err(e) => {
            println!("(distributed section skipped: {e})");
            return rows;
        }
    };
    haqjsk_dist::set_coordinator(Some(std::sync::Arc::clone(&coordinator)));
    let (dist_cold, dist_warm) = timed(BackendKind::Distributed);
    println!("{:>10} {:>10.3} {:>10.3}", "dist", dist_cold, dist_warm);
    println!(
        "\n  warm dist/tiled: {:.2}x ({mode}); dataset dedup hit rate {:.1}%",
        dist_warm / local_warm,
        coordinator.stats().dedup_hit_rate() * 100.0
    );
    println!(
        "  {:>22} {:>11} {:>10} {:>12} {:>13}",
        "worker", "dispatched", "completed", "redispatched", "bytes shipped"
    );
    let stats = coordinator.stats();
    for w in &stats.workers {
        println!(
            "  {:>22} {:>11} {:>10} {:>12} {:>13}",
            w.addr, w.tiles_dispatched, w.tiles_completed, w.tiles_redispatched, w.bytes_shipped
        );
    }
    // The two-worker run must have fed the per-worker RPC round-trip
    // histograms (dataset shipping alone touches every worker), so this
    // section doubles as an integration check of the dist observability.
    let snapshot = haqjsk_obs::registry().snapshot();
    for w in &stats.workers {
        let histogram = snapshot
            .histogram("haqjsk_dist_rpc_seconds", &[("worker", w.addr.as_str())])
            .unwrap_or_else(|| panic!("no RPC round-trip histogram for worker {}", w.addr));
        assert!(
            histogram.count > 0,
            "RPC round-trip histogram for worker {} is empty",
            w.addr
        );
        println!(
            "  {:>22} rpc round trips: {} (p50 {:.1} ms, p99 {:.1} ms)",
            w.addr,
            histogram.count,
            histogram.quantile(0.5) * 1000.0,
            histogram.quantile(0.99) * 1000.0
        );
    }
    rows.push(Json::obj([
        ("backend", Json::Str("dist".to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("workers", Json::Num(2.0)),
        ("threads_per_worker", Json::Num(per_worker as f64)),
        ("cold_ms", Json::Num(dist_cold * 1000.0)),
        ("warm_ms", Json::Num(dist_warm * 1000.0)),
        ("dedup_hit_rate", Json::Num(stats.dedup_hit_rate())),
        (
            "workers_detail",
            Json::Arr(
                stats
                    .workers
                    .iter()
                    .map(|w| {
                        Json::obj([
                            ("addr", Json::Str(w.addr.clone())),
                            ("tiles_dispatched", Json::Num(w.tiles_dispatched as f64)),
                            ("tiles_completed", Json::Num(w.tiles_completed as f64)),
                            ("tiles_redispatched", Json::Num(w.tiles_redispatched as f64)),
                            ("bytes_shipped", Json::Num(w.bytes_shipped as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]));
    haqjsk_dist::set_coordinator(None);
    drop(in_process);
    rows
}
