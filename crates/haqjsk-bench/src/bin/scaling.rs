//! Empirical check of the complexity analysis of Sec. III-D: the per-graph
//! cost of the HAQJSK pipeline is dominated by the `O(n^3)` CTQW
//! eigendecomposition, and the Gram-matrix cost grows as `O(N^2)` in the
//! number of graphs.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin scaling [--json <path>]
//! ```
//!
//! `--json` writes the measured sections as a machine-readable report so
//! the perf trajectory can be tracked across PRs.

use haqjsk_bench::{engine_banner, json_output_path, write_json_report};
use haqjsk_core::{HaqjskConfig, HaqjskModel, HaqjskVariant};
use haqjsk_engine::{graph_key, BackendKind, CacheConfig, Engine, FeatureCache, Json};
use haqjsk_graph::generators::erdos_renyi;
use haqjsk_graph::Graph;
use haqjsk_kernels::{cached_ctqw_densities, GraphKernel, QjskUnaligned};
use haqjsk_quantum::{ctqw_density_infinite, DensityMatrix};
use std::time::Instant;

fn main() {
    let json_path = json_output_path();
    let mut ctqw_rows: Vec<Json> = Vec::new();
    let mut gram_rows: Vec<Json> = Vec::new();
    let mut engine_rows: Vec<Json> = Vec::new();
    let mut sweep_rows: Vec<Json> = Vec::new();
    println!("{}\n", engine_banner());
    println!("Scaling — CTQW density matrix cost vs graph size n\n");
    println!("{:>6} {:>14}", "n", "milliseconds");
    for n in [16usize, 32, 64, 128, 256] {
        let g = erdos_renyi(n, 0.2, 1);
        let start = Instant::now();
        let reps = if n <= 64 { 20 } else { 5 };
        for _ in 0..reps {
            let _ = ctqw_density_infinite(&g).unwrap();
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        println!("{:>6} {:>14.2}", n, ms);
        ctqw_rows.push(Json::obj([
            ("n", Json::Num(n as f64)),
            ("wall_ms", Json::Num(ms)),
        ]));
    }

    println!("\nScaling — HAQJSK(A) Gram-matrix cost vs number of graphs N\n");
    println!("{:>6} {:>14}", "N", "seconds");
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 16,
        layer_cap: 3,
        ..HaqjskConfig::small()
    };
    for n_graphs in [8usize, 16, 32, 64] {
        let graphs: Vec<Graph> = (0..n_graphs)
            .map(|i| erdos_renyi(20 + i % 10, 0.25, i as u64))
            .collect();
        let start = Instant::now();
        let model = HaqjskModel::fit(&graphs, config.clone(), HaqjskVariant::AlignedAdjacency)
            .expect("fit succeeds");
        let _ = model.gram_matrix(&graphs).expect("gram succeeds");
        let seconds = start.elapsed().as_secs_f64();
        println!("{:>6} {:>14.2}", n_graphs, seconds);
        gram_rows.push(Json::obj([
            ("n_graphs", Json::Num(n_graphs as f64)),
            ("wall_ms", Json::Num(seconds * 1000.0)),
        ]));
    }

    println!("\nEngine — tiled parallel Gram vs serial, and the feature cache\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "N", "serial s", "tiled s", "warm s"
    );
    for n_graphs in [16usize, 32, 64] {
        let graphs: Vec<Graph> = (0..n_graphs)
            .map(|i| erdos_renyi(24 + i % 8, 0.25, i as u64))
            .collect();
        let kernel = QjskUnaligned::default();
        haqjsk_kernels::features::clear_density_cache();

        // Serial reference: per-graph densities once, pairs on one thread.
        let start = Instant::now();
        let densities = cached_ctqw_densities(&graphs);
        let _ = Engine::gram_serial(n_graphs, |i, j| {
            let d = haqjsk_quantum::qjsd_padded(&densities[i], &densities[j]).unwrap();
            (-d).exp()
        });
        let serial = start.elapsed().as_secs_f64();

        // Cold tiled run (cache cleared), then a warm run hitting the cache.
        haqjsk_kernels::features::clear_density_cache();
        let start = Instant::now();
        let _ = kernel.gram_matrix(&graphs);
        let tiled = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let _ = kernel.gram_matrix(&graphs);
        let warm = start.elapsed().as_secs_f64();
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12.3}",
            n_graphs, serial, tiled, warm
        );
        engine_rows.push(Json::obj([
            ("n_graphs", Json::Num(n_graphs as f64)),
            ("serial_ms", Json::Num(serial * 1000.0)),
            ("tiled_ms", Json::Num(tiled * 1000.0)),
            ("warm_ms", Json::Num(warm * 1000.0)),
        ]));
    }
    println!("\nBackend x shard sweep — QJSK Gram on 32 graphs, per-configuration cache\n");
    println!(
        "{:>8} {:>7} {:>10} {:>10} {:>9} {:>10}",
        "backend", "shards", "cold s", "warm s", "hit rate", "evictions"
    );
    let sweep_graphs: Vec<Graph> = (0..32)
        .map(|i| erdos_renyi(20 + i % 8, 0.25, 1000 + i as u64))
        .collect();
    let n = sweep_graphs.len();
    // A budget sized to roughly half the working set, so the sweep also
    // exercises LRU eviction under each shard count.
    let one_density = (28usize * 28 * 8) + 64;
    let budget = one_density * n / 2;
    for backend in BackendKind::ALL {
        for shards in [1usize, 4, 16] {
            let cache: FeatureCache<DensityMatrix> = FeatureCache::with_config(CacheConfig {
                shards,
                budget_bytes: Some(budget),
            });
            let density = |i: usize| {
                cache.get_or_compute(graph_key(&sweep_graphs[i]), || {
                    ctqw_density_infinite(&sweep_graphs[i]).expect("non-empty graph")
                })
            };
            let entry = |i: usize, j: usize| {
                let d = haqjsk_quantum::qjsd_padded(&density(i), &density(j)).unwrap();
                (-d).exp()
            };
            let run = || {
                let start = Instant::now();
                let _ = Engine::global().gram_prefetched(
                    Some(backend),
                    n,
                    |i| {
                        let _ = density(i);
                    },
                    entry,
                );
                start.elapsed().as_secs_f64()
            };
            let cold = run();
            let warm = run();
            let stats = cache.stats();
            println!(
                "{:>8} {:>7} {:>10.3} {:>10.3} {:>8.1}% {:>10}",
                backend.label(),
                shards,
                cold,
                warm,
                stats.hit_rate() * 100.0,
                stats.evictions
            );
            sweep_rows.push(Json::obj([
                ("backend", Json::Str(backend.label().to_string())),
                ("shards", Json::Num(shards as f64)),
                ("cold_ms", Json::Num(cold * 1000.0)),
                ("warm_ms", Json::Num(warm * 1000.0)),
                ("cache_hit_rate", Json::Num(stats.hit_rate())),
                ("evictions", Json::Num(stats.evictions as f64)),
            ]));
        }
    }

    if let Some(path) = json_path {
        let report = Json::obj([
            ("bench", Json::Str("scaling".to_string())),
            ("ctqw_density", Json::Arr(ctqw_rows)),
            ("haqjsk_gram", Json::Arr(gram_rows)),
            ("engine_gram", Json::Arr(engine_rows)),
            ("backend_shard_sweep", Json::Arr(sweep_rows)),
        ]);
        write_json_report(&path, &report);
    }

    println!("\n{}", engine_banner());

    println!("\nPer-graph cost is cubic in n (eigendecomposition); Gram cost is quadratic in N — matching the O(N^2 n^3) analysis of Sec. III-D.");
}
