//! Regenerates Table II of the paper: dataset statistics (max/mean vertex
//! counts, mean edge counts, graph counts, class counts, domain), both the
//! target statistics from the paper and the measured statistics of the
//! synthetic stand-ins generated at the requested scale.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin table2_datasets [--medium|--full]
//! ```

use haqjsk_bench::RunScale;
use haqjsk_datasets::{all_dataset_names, generate_by_name, TABLE2_SPECS};
use haqjsk_graph::analysis::corpus_statistics;

fn main() {
    let scale = RunScale::from_args();
    println!("Table II — dataset statistics ({})\n", scale.describe());
    println!(
        "{:<11} {:>8} {:>9} {:>11} {:>11} {:>9} {:>7} {:>5} || {:>9} {:>11} {:>11} {:>9}",
        "dataset",
        "graphs",
        "classes",
        "max |V|",
        "mean |V|",
        "mean |E|",
        "labels",
        "dom",
        "gen #",
        "gen max|V|",
        "gen mn|V|",
        "gen mn|E|"
    );
    for spec in TABLE2_SPECS {
        let generated =
            generate_by_name(spec.name, scale.graph_divisor(), scale.size_divisor(), 42)
                .expect("spec names are valid");
        let stats = corpus_statistics(&generated.graphs);
        println!(
            "{:<11} {:>8} {:>9} {:>11} {:>11.2} {:>9.2} {:>7} {:>5} || {:>9} {:>11} {:>11.2} {:>9.2}",
            spec.name,
            spec.num_graphs,
            spec.num_classes,
            spec.max_vertices,
            spec.mean_vertices,
            spec.mean_edges,
            if spec.has_vertex_labels { "yes" } else { "-" },
            spec.domain.tag(),
            stats.num_graphs,
            stats.max_vertices,
            stats.mean_vertices,
            stats.mean_edges,
        );
    }
    println!(
        "\nLeft block: the paper's Table II targets. Right block: measured statistics of the synthetic stand-ins ({} datasets).",
        all_dataset_names().len()
    );
}
