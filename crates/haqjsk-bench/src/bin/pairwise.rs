//! Per-pair latency micro-benchmark for the quantum kernels.
//!
//! The QJSD core (Eq. 6–9) is evaluated O(N²) times per Gram matrix, so the
//! per-pair cost of the inner loop is the single biggest wall-clock lever in
//! the codebase. This binary measures it directly, before and after the
//! spectral-caching refactor:
//!
//! * **before** — the pre-refactor *algorithm*: densities cached, but
//!   every pair recomputes both endpoint entropies from scratch and (for
//!   the aligned variant) eigendecomposes both padded densities for the
//!   Umeyama matching — up to five eigensolves per pair. It executes on
//!   today's primitives, so its entropy solves already benefit from the
//!   values-only driver; the reported speedups are therefore a
//!   **conservative lower bound** on the improvement over the actual
//!   pre-refactor build.
//! * **after** — the shipped fast path: per-graph spectral artifacts
//!   (entropies, alignment bases, WL histograms) hoisted out of the loop,
//!   and the tile-batched pipeline solving each tile's values-only mixture
//!   eigenproblems as one lane-parallel SoA batch. The `batch` column
//!   reports the mean number of mixtures per batched solve during the warm
//!   run.
//!
//! Both columns run serially so the numbers are honest per-pair latencies,
//! not parallel throughput. Every timed column is the minimum over enough
//! repeats to accumulate ~0.2 s of wall-clock, so the printed speedups
//! compare like statistics and the CI regression guard (`pairwise_check`)
//! diffs stable numbers.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin pairwise [--smoke] [--json <path>] [--metrics]
//! ```
//!
//! `--smoke` shrinks the sweep to seconds (CI keeps the binary executable
//! with it); `--json` writes `BENCH_pairwise.json`-style machine-readable
//! results for the perf trajectory; `--metrics` dumps the process metrics
//! registry as Prometheus text after the run.

use haqjsk_bench::{dump_metrics_if_requested, engine_banner, json_output_path, write_json_report};
use haqjsk_engine::{BackendKind, Json};
use haqjsk_graph::generators::erdos_renyi;
use haqjsk_graph::Graph;
use haqjsk_kernels::jtqk::jensen_tsallis_difference;
use haqjsk_kernels::{
    clear_density_cache, density_cache_stats, GraphKernel, JensenTsallisKernel, QjskAligned,
    QjskUnaligned,
};
use haqjsk_quantum::{ctqw_density_infinite, qjsd, DensityMatrix};
use std::time::Instant;

/// One benchmarked configuration.
struct Row {
    kernel: &'static str,
    node_size: usize,
    n_graphs: usize,
    pairs: usize,
    /// Pre-refactor pair loop (densities precomputed, everything else per
    /// pair).
    before_ms: f64,
    /// Fast-path Gram from cold caches — includes the hoisted per-graph
    /// artifact extraction.
    after_cold_ms: f64,
    /// Fast-path Gram with per-graph artifacts already cached — the
    /// steady-state per-pair latency, apples-to-apples with `before_ms`.
    after_warm_ms: f64,
    hit_rate: f64,
    /// Mean mixtures per batched eigensolve during the warm run (0 when
    /// the kernel never reached the batched path).
    eigen_batch: f64,
}

fn dataset(node_size: usize, n_graphs: usize) -> Vec<Graph> {
    (0..n_graphs)
        // Slight size jitter so the zero-padding paths are exercised.
        .map(|i| erdos_renyi(node_size + i % 3, 0.3, (node_size * 1000 + i) as u64))
        .collect()
}

/// Pre-refactor per-pair evaluations, replicated through public APIs.
mod legacy {
    use super::*;

    pub fn unaligned(mu: f64, a: &DensityMatrix, b: &DensityMatrix) -> f64 {
        let n = a.dim().max(b.dim());
        let pa = a.zero_pad(n).unwrap();
        let pb = b.zero_pad(n).unwrap();
        (-mu * qjsd(&pa, &pb).unwrap()).exp()
    }

    pub fn aligned(mu: f64, a: &DensityMatrix, b: &DensityMatrix) -> f64 {
        let n = a.dim().max(b.dim());
        let pa = a.zero_pad(n).unwrap();
        let pb = b.zero_pad(n).unwrap();
        let perm = QjskAligned::umeyama_match(pa.matrix(), pb.matrix());
        let aligned_b = pb.permute(&perm).unwrap();
        (-mu * qjsd(&pa, &aligned_b).unwrap()).exp()
    }

    pub fn jtqk(
        kernel: &JensenTsallisKernel,
        ga: &Graph,
        gb: &Graph,
        a: &DensityMatrix,
        b: &DensityMatrix,
    ) -> f64 {
        let n = a.dim().max(b.dim());
        let pa = a.zero_pad(n).unwrap();
        let pb = b.zero_pad(n).unwrap();
        (-jensen_tsallis_difference(&pa, &pb, kernel.q)).exp() * kernel.local_factor(ga, gb)
    }
}

/// Times a serial loop over all unordered pairs; returns total seconds.
fn time_pairs(n: usize, mut f: impl FnMut(usize, usize)) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        for j in i..n {
            f(i, j);
        }
    }
    start.elapsed().as_secs_f64()
}

/// Minimum over enough repeats of `measure` to accumulate ~0.2 s of
/// wall-clock (starting from the already-taken `first` sample) — every
/// column uses this, so the printed ratios compare like statistics and
/// even sub-millisecond smoke rows get a stable minimum. The repeat cap
/// only backstops a pathologically fast clock.
fn min_over_repeats(first: f64, mut measure: impl FnMut() -> f64) -> f64 {
    const BUDGET_S: f64 = 0.2;
    const MAX_REPEATS: usize = 20_000;
    let mut best = first;
    let mut spent = first;
    let mut repeats = 0;
    while spent < BUDGET_S && repeats < MAX_REPEATS {
        let sample = measure();
        best = best.min(sample);
        spent += sample;
        repeats += 1;
    }
    best
}

fn bench_kernel(
    name: &'static str,
    node_size: usize,
    graphs: &[Graph],
    mut legacy_pair: impl FnMut(usize, usize),
    kernel: &dyn GraphKernel,
) -> Row {
    let n = graphs.len();
    let pairs = n * (n + 1) / 2;

    // Before: densities precomputed (the pre-refactor code cached those
    // too), everything else recomputed inside the pair loop.
    let first = time_pairs(n, &mut legacy_pair);
    let before_s = min_over_repeats(first, || time_pairs(n, &mut legacy_pair));

    // After, cold: caches dropped, so the run pays the hoisted per-graph
    // artifact extraction too — the end-to-end cost of one Gram matrix.
    clear_density_cache();
    let stats_before = density_cache_stats();
    let start = Instant::now();
    let _ = kernel.gram_matrix_on(graphs, Some(BackendKind::Serial));
    let first_cold_s = start.elapsed().as_secs_f64();
    let stats_after = density_cache_stats();
    let hits = stats_after.hits - stats_before.hits;
    let misses = stats_after.misses - stats_before.misses;
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    let after_cold_s = min_over_repeats(first_cold_s, || {
        clear_density_cache();
        let start = Instant::now();
        let _ = kernel.gram_matrix_on(graphs, Some(BackendKind::Serial));
        start.elapsed().as_secs_f64()
    });

    // After, warm: per-graph artifacts resident, so this is the
    // steady-state per-pair latency — the apples-to-apples counterpart of
    // the `before` column, which also had its per-graph state precomputed.
    let batch_before = haqjsk_linalg::batch_solve_stats();
    let start = Instant::now();
    let _ = kernel.gram_matrix_on(graphs, Some(BackendKind::Serial));
    let first_warm_s = start.elapsed().as_secs_f64();
    let batch_after = haqjsk_linalg::batch_solve_stats();
    let after_warm_s = min_over_repeats(first_warm_s, || {
        let start = Instant::now();
        let _ = kernel.gram_matrix_on(graphs, Some(BackendKind::Serial));
        start.elapsed().as_secs_f64()
    });
    let batched_calls = batch_after.batched_calls - batch_before.batched_calls;
    let batched_matrices = batch_after.batched_matrices - batch_before.batched_matrices;
    let eigen_batch = if batched_calls == 0 {
        0.0
    } else {
        batched_matrices as f64 / batched_calls as f64
    };

    Row {
        kernel: name,
        node_size,
        n_graphs: n,
        pairs,
        before_ms: before_s * 1000.0 / pairs as f64,
        after_cold_ms: after_cold_s * 1000.0 / pairs as f64,
        after_warm_ms: after_warm_s * 1000.0 / pairs as f64,
        hit_rate,
        eigen_batch,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_path = json_output_path();
    // The smoke sweep keeps the full sweep's graph count so its node-8 row
    // is directly comparable (same pair count, same tile/batch utilisation)
    // to the committed baseline the `pairwise_check` CI guard diffs against.
    let (node_sizes, n_graphs): (&[usize], usize) = if smoke {
        (&[6, 8], 12)
    } else {
        (&[8, 16, 32], 12)
    };

    println!("{}\n", engine_banner());
    println!(
        "Per-pair latency — before (pre-refactor per-pair eigensolves) vs after (per-graph spectral caching)\n"
    );
    println!(
        "{:<18} {:>6} {:>8} {:>7} {:>11} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "kernel",
        "nodes",
        "graphs",
        "pairs",
        "before ms",
        "cold ms",
        "warm ms",
        "speedup",
        "hit rate",
        "batch"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &node_size in node_sizes {
        let graphs = dataset(node_size, n_graphs);
        let rhos: Vec<DensityMatrix> = graphs
            .iter()
            .map(|g| ctqw_density_infinite(g).expect("non-empty graph"))
            .collect();

        let unaligned = QjskUnaligned::default();
        rows.push(bench_kernel(
            "QJSK (unaligned)",
            node_size,
            &graphs,
            |i, j| {
                let _ = legacy::unaligned(unaligned.mu, &rhos[i], &rhos[j]);
            },
            &unaligned,
        ));

        let aligned = QjskAligned::default();
        rows.push(bench_kernel(
            "QJSK (aligned)",
            node_size,
            &graphs,
            |i, j| {
                let _ = legacy::aligned(aligned.mu, &rhos[i], &rhos[j]);
            },
            &aligned,
        ));

        let jtqk = JensenTsallisKernel::default();
        rows.push(bench_kernel(
            "JTQK",
            node_size,
            &graphs,
            |i, j| {
                let _ = legacy::jtqk(&jtqk, &graphs[i], &graphs[j], &rhos[i], &rhos[j]);
            },
            &jtqk,
        ));

        for row in rows.iter().skip(rows.len() - 3) {
            println!(
                "{:<18} {:>6} {:>8} {:>7} {:>11.4} {:>9.4} {:>9.4} {:>8.2}x {:>8.1}% {:>7.2}",
                row.kernel,
                row.node_size,
                row.n_graphs,
                row.pairs,
                row.before_ms,
                row.after_cold_ms,
                row.after_warm_ms,
                row.before_ms / row.after_warm_ms.max(1e-12),
                row.hit_rate * 100.0,
                row.eigen_batch
            );
        }
    }

    if let Some(path) = json_path {
        let results: Vec<Json> = rows
            .iter()
            .map(|row| {
                Json::obj([
                    ("kernel", Json::Str(row.kernel.to_string())),
                    ("node_size", Json::Num(row.node_size as f64)),
                    ("n_graphs", Json::Num(row.n_graphs as f64)),
                    ("pairs", Json::Num(row.pairs as f64)),
                    ("before_ms_per_pair", Json::Num(row.before_ms)),
                    ("after_cold_ms_per_pair", Json::Num(row.after_cold_ms)),
                    ("after_warm_ms_per_pair", Json::Num(row.after_warm_ms)),
                    (
                        "speedup",
                        Json::Num(row.before_ms / row.after_warm_ms.max(1e-12)),
                    ),
                    ("cache_hit_rate", Json::Num(row.hit_rate)),
                    ("eigen_batch_mean", Json::Num(row.eigen_batch)),
                ])
            })
            .collect();
        let report = Json::obj([
            ("bench", Json::Str("pairwise".to_string())),
            ("smoke", Json::Bool(smoke)),
            // Which eigensolver SIMD path produced these timings; recorded
            // runs from different machines (or forced `HAQJSK_SIMD` legs)
            // must be comparable.
            (
                "simd_path",
                Json::Str(haqjsk_linalg::active_simd_label().to_string()),
            ),
            ("results", Json::Arr(results)),
        ]);
        write_json_report(&path, &report);
    }

    println!(
        "\nThe aligned QJSK drops from five per-pair eigensolves (two full Umeyama decompositions, \
         three entropy decompositions) to one values-only mixture solve; unaligned QJSK and JTQK \
         drop from three to one. The warm path additionally batches each scheduling tile's mixture \
         solves through the lane-parallel SoA eigensolver ('batch' column = mean mixtures per \
         batched solve) and evaluates JTQK's WL factor as a cached sparse dot."
    );

    dump_metrics_if_requested();
}
