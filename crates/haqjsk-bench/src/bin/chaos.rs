//! Deterministic chaos soak of the self-healing distributed backend.
//!
//! Spawns **real** `haqjsk-worker` processes with a seeded
//! [`ChaosPlan`](haqjsk_dist::ChaosPlan) in their environment, then drives
//! hundreds of Gram computations through a coordinator while the workers
//! inject connection kills, mid-stream hangups, bounded delays and
//! transient `store_miss` replies — all drawn from a fixed seed, so a
//! failing run replays bit-for-bit. Mid-soak the harness **joins** a third
//! worker to the running coordinator and later **drains** one of the
//! originals, exercising elastic membership under fire.
//!
//! Every Gram is byte-compared against the serial backend, and the run
//! ends by asserting the self-healing invariants from the metrics
//! registry:
//!
//! * zero lost tiles — `tiles_scheduled == tiles_committed + local_fallback_tiles`,
//! * at least one reconnect-after-probation and one observed death,
//! * at least one `store_miss` repaired by targeted re-shipping,
//! * the joiner completed tiles, and the membership epoch moved.
//!
//! ```text
//! cargo build --release            # builds the haqjsk-worker binary too
//! HAQJSK_CHAOS=seed:42,kill:25,hang:15,delay:40:30,miss:25 \
//!     cargo run --release -p haqjsk-bench --bin chaos -- --grams 200
//! ```
//!
//! Flags: `--grams N` (default 200), `--chaos PLAN` (overrides the
//! `HAQJSK_CHAOS` environment variable; worker `i` runs with `seed+i` so
//! the three fault schedules differ), `--store-budget BYTES` (optional:
//! byte-budgets the worker graph stores so evictions and re-shipping join
//! the chaos mix). Exits non-zero on any divergence or failed invariant.

use haqjsk_dist::{ChaosPlan, Coordinator, DistConfig, CHAOS_ENV_VAR};
use haqjsk_engine::BackendKind;
use haqjsk_graph::generators::{barabasi_albert, cycle_graph, erdos_renyi, star_graph};
use haqjsk_graph::Graph;
use haqjsk_kernels::{GraphKernel, QjskUnaligned};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A spawned `haqjsk-worker` process with its bound address.
struct WorkerProcess {
    child: Child,
    addr: String,
}

impl WorkerProcess {
    /// Spawns the worker binary on an ephemeral port with the given chaos
    /// plan (and optional store budget) in its environment, parsing the
    /// bound address from the startup banner.
    fn spawn(binary: &PathBuf, plan: &ChaosPlan, store_budget: Option<u64>) -> WorkerProcess {
        let mut command = Command::new(binary);
        command
            .arg("127.0.0.1:0")
            .env("HAQJSK_THREADS", "2")
            .env(CHAOS_ENV_VAR, plan.to_env_string())
            // The child must not try to join a distributed pool itself.
            .env_remove("HAQJSK_BACKEND")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match store_budget {
            Some(bytes) => {
                command.env(haqjsk_dist::WORKER_STORE_BUDGET_ENV_VAR, bytes.to_string());
            }
            None => {
                command.env_remove(haqjsk_dist::WORKER_STORE_BUDGET_ENV_VAR);
            }
        }
        let mut child = command.spawn().expect("spawn haqjsk-worker");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read worker banner");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("banner ends with the address")
            .to_string();
        assert!(addr.contains(':'), "unexpected worker banner: {line:?}");
        WorkerProcess { child, addr }
    }
}

impl Drop for WorkerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The `haqjsk-worker` binary next to this one (`cargo build` puts every
/// workspace binary in the same `target/<profile>/` directory).
fn worker_binary() -> PathBuf {
    let mut path = std::env::current_exe().expect("locate current executable");
    path.pop();
    path.push(format!("haqjsk-worker{}", std::env::consts::EXE_SUFFIX));
    assert!(
        path.exists(),
        "worker binary not found at {} — run `cargo build` for the whole \
         workspace first so the haqjsk-worker binary exists",
        path.display()
    );
    path
}

/// Four small rotating datasets with mixed families and sizes, so dedup
/// shipping, zero-padding and dimension-class chunking all stay exercised.
fn datasets() -> Vec<Vec<Graph>> {
    (0..4u64)
        .map(|d| {
            let mut graphs = Vec::new();
            for i in 0..3usize {
                graphs.push(cycle_graph(5 + i + d as usize));
                graphs.push(star_graph(5 + i + d as usize));
                graphs.push(erdos_renyi(6 + i, 0.35, d * 17 + i as u64));
                graphs.push(barabasi_albert(7 + i, 2, 100 + d * 17 + i as u64));
            }
            graphs
        })
        .collect()
}

fn parse_args() -> (usize, ChaosPlan, Option<u64>) {
    let mut grams = 200usize;
    let mut plan_text = std::env::var(CHAOS_ENV_VAR)
        .ok()
        .filter(|raw| !raw.trim().is_empty())
        .unwrap_or_else(|| "seed:42,kill:25,hang:15,delay:40:30,miss:25".to_string());
    let mut store_budget = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--grams" => grams = value("--grams").parse().expect("--grams takes an integer"),
            "--chaos" => plan_text = value("--chaos"),
            "--store-budget" => {
                store_budget = Some(
                    value("--store-budget")
                        .parse()
                        .expect("--store-budget takes bytes"),
                )
            }
            other => {
                panic!("unknown flag {other:?} (--grams N | --chaos PLAN | --store-budget BYTES)")
            }
        }
    }
    let plan = ChaosPlan::parse(&plan_text).expect("chaos plan");
    (grams, plan, store_budget)
}

/// The plan for worker `index`: same rates, shifted seed, so the three
/// workers inject different (but individually deterministic) schedules.
fn worker_plan(base: &ChaosPlan, index: u64) -> ChaosPlan {
    ChaosPlan {
        seed: base.seed + index,
        ..*base
    }
}

fn assert_bytes_equal(gram: usize, distributed: &[f64], serial: &[f64]) {
    assert_eq!(distributed.len(), serial.len());
    for (k, (a, b)) in distributed.iter().zip(serial).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "gram {gram}: entry {k} drifted ({a} vs {b})"
        );
    }
}

fn main() {
    let (grams, plan, store_budget) = parse_args();
    let binary = worker_binary();
    println!(
        "chaos soak: {grams} grams, plan {} (worker i runs seed+i){}",
        plan.to_env_string(),
        store_budget.map_or(String::new(), |b| format!(", store budget {b} B")),
    );

    let mut workers = vec![
        WorkerProcess::spawn(&binary, &worker_plan(&plan, 0), store_budget),
        WorkerProcess::spawn(&binary, &worker_plan(&plan, 1), store_budget),
    ];
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let config = DistConfig {
        deadline: Duration::from_secs(10),
        // Fast probation retries: a killed connection should revive well
        // within one Gram, so the soak observes reconnects, not fallback.
        reconnect_base: Duration::from_millis(50),
        reconnect_max: Duration::from_millis(400),
        ..DistConfig::default()
    };
    let coordinator =
        Arc::new(Coordinator::connect(&addrs, config).expect("connect to worker processes"));
    haqjsk_dist::set_coordinator(Some(Arc::clone(&coordinator)));
    haqjsk_dist::register_dist_metrics();

    // Serial references once per dataset; every soak Gram byte-compares.
    let kernel = QjskUnaligned { mu: 1.0 };
    let datasets = datasets();
    let references: Vec<Vec<f64>> = datasets
        .iter()
        .map(|graphs| {
            kernel
                .gram_matrix_on(graphs, Some(BackendKind::Serial))
                .matrix()
                .data()
                .to_vec()
        })
        .collect();

    let join_at = grams / 2;
    let drain_at = grams * 3 / 4;
    let mut joiner_addr = None;
    let started = Instant::now();
    for g in 0..grams {
        if g == join_at {
            let joiner = WorkerProcess::spawn(&binary, &worker_plan(&plan, 2), store_budget);
            coordinator
                .add_worker(&joiner.addr)
                .expect("join third worker mid-soak");
            println!(
                "gram {g}: joined worker {} (epoch {})",
                joiner.addr,
                coordinator.epoch()
            );
            joiner_addr = Some(joiner.addr.clone());
            workers.push(joiner);
        }
        if g == drain_at {
            // Materialise the original worker's per-address counters in the
            // registry before its link leaves the membership list.
            let _ = haqjsk_obs::registry().snapshot();
            coordinator
                .remove_worker(&addrs[0])
                .expect("drain an original worker mid-soak");
            println!(
                "gram {g}: drained worker {} (epoch {})",
                addrs[0],
                coordinator.epoch()
            );
        }
        let which = g % datasets.len();
        let distributed = kernel.gram_matrix_on(&datasets[which], Some(BackendKind::Distributed));
        assert_bytes_equal(g, distributed.matrix().data(), &references[which]);
        if (g + 1) % 25 == 0 {
            let stats = coordinator.stats();
            println!(
                "gram {:>4}/{grams}: epoch {}, {} reconnects, {} store misses, \
                 {} fallback tiles, {:.1}s",
                g + 1,
                stats.epoch,
                stats.reconnects(),
                stats.store_misses(),
                stats.local_fallback_tiles,
                started.elapsed().as_secs_f64()
            );
        }
    }

    // Final invariants, read back from the metrics registry (the snapshot
    // refreshes every collector, including the dist collector).
    let snapshot = haqjsk_obs::registry().snapshot();
    let counter = |name: &str| snapshot.counter_value(name, &[]).unwrap_or(0);
    let per_worker = |name: &str| -> u64 {
        let mut all: Vec<&str> = addrs.iter().map(String::as_str).collect();
        if let Some(joiner) = &joiner_addr {
            all.push(joiner);
        }
        all.iter()
            .map(|addr| {
                snapshot
                    .counter_value(name, &[("worker", addr)])
                    .unwrap_or(0)
            })
            .sum()
    };

    let scheduled = counter("haqjsk_dist_tiles_scheduled_total");
    let committed = counter("haqjsk_dist_tiles_committed_total");
    let fallback = counter("haqjsk_dist_local_fallback_tiles_total");
    let deaths = per_worker("haqjsk_dist_worker_deaths_total");
    let reconnects = per_worker("haqjsk_dist_reconnects_total");
    let misses = per_worker("haqjsk_dist_store_misses_total");
    let joiner_tiles = joiner_addr
        .as_deref()
        .map(|addr| {
            snapshot
                .counter_value("haqjsk_dist_tiles_completed_total", &[("worker", addr)])
                .unwrap_or(0)
        })
        .unwrap_or(0);
    let epoch = snapshot
        .gauge_value("haqjsk_dist_membership_epoch", &[])
        .unwrap_or(0.0) as usize;

    println!(
        "soak done in {:.1}s: {scheduled} tiles scheduled, {committed} committed, \
         {fallback} local fallback, {deaths} deaths, {reconnects} reconnects, \
         {misses} store misses, joiner completed {joiner_tiles}, epoch {epoch}",
        started.elapsed().as_secs_f64()
    );

    assert_eq!(
        scheduled,
        committed + fallback,
        "lost tiles: scheduled != committed + fallback"
    );
    assert!(deaths >= 1, "the chaos plan never killed a connection");
    assert!(
        reconnects >= 1,
        "no worker revived out of probation — self-healing did not engage"
    );
    assert!(
        misses >= 1,
        "no store_miss was injected/repaired — the re-ship path went unexercised"
    );
    assert!(
        joiner_tiles >= 1,
        "the mid-soak joiner never completed a tile"
    );
    // Two initial connects + join + drain + at least one death/revival pair.
    assert!(
        epoch >= 5,
        "membership epoch {epoch} moved less than expected"
    );

    haqjsk_dist::set_coordinator(None);
    drop(workers);
    println!("chaos soak PASS ({grams} grams byte-identical to serial)");
}
