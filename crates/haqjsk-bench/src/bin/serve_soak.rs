//! `serve_soak` — CI overload soak for the hardened serving frontend.
//!
//! Launches the release `haqjsk-serve` binary with deliberately tiny
//! limits, then abuses it the way a bad day in production would:
//!
//! 1. opens more connections than `HAQJSK_SERVE_MAX_CONNS` and checks
//!    every over-cap connection gets exactly one well-formed
//!    `{"ok":false,"error":"overloaded"}` line and a clean close;
//! 2. parks a slow-loris client mid-frame and checks the I/O timeout cuts
//!    it off with the documented error;
//! 3. keeps `ping`/`metrics` latency bounded while the abuse is running;
//! 4. fits a model, saves it with `save_file`, and checks the file
//!    reloads byte-identically after the server is gone;
//! 5. checks the active-connections gauge returns to baseline (no thread
//!    leak) once the abusive clients disconnect;
//! 6. sends SIGTERM mid-run and checks the server drains and exits 0
//!    within the drain deadline.
//!
//! Usage: `cargo run --release -p haqjsk-bench --bin serve_soak`

use haqjsk_engine::serve::graph_to_json;
use haqjsk_engine::Json;
use haqjsk_graph::generators::{cycle_graph, star_graph};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const MAX_CONNS: usize = 8;
const IO_TIMEOUT_MS: u64 = 700;
const DRAIN_MS: u64 = 8000;

fn fail(message: &str) -> ! {
    eprintln!("serve_soak: FAIL — {message}");
    std::process::exit(1);
}

struct ServeProcess {
    child: std::process::Child,
    addr: String,
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_serve(model_path: &std::path::Path) -> ServeProcess {
    let bin = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe directory")
        .join("haqjsk-serve");
    if !bin.exists() {
        fail(&format!(
            "{} not found (build the workspace first: cargo build --release)",
            bin.display()
        ));
    }
    let mut child = std::process::Command::new(bin)
        .arg("127.0.0.1:0")
        .arg("--model")
        .arg(model_path)
        .env_remove("HAQJSK_BACKEND")
        .env("HAQJSK_SERVE_MAX_CONNS", MAX_CONNS.to_string())
        .env("HAQJSK_SERVE_IO_TIMEOUT_MS", IO_TIMEOUT_MS.to_string())
        .env("HAQJSK_SERVE_DRAIN_MS", DRAIN_MS.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn haqjsk-serve: {e}")));
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .unwrap_or_else(|e| fail(&format!("cannot read serve banner: {e}")));
    // Banner shape: "haqjsk-serve listening on 127.0.0.1:PORT (...)".
    let addr = line
        .split_whitespace()
        .find(|token| {
            token.contains(':')
                && token
                    .rsplit(':')
                    .next()
                    .is_some_and(|p| p.parse::<u16>().is_ok())
        })
        .unwrap_or_else(|| fail(&format!("no listen address in banner: {line:?}")))
        .to_string();
    ServeProcess { child, addr }
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream =
            TcpStream::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            writer: stream.try_clone().expect("clone stream"),
            reader: BufReader::new(stream),
        }
    }

    fn read_line(&mut self) -> Option<Json> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(
                Json::parse(line.trim())
                    .unwrap_or_else(|e| fail(&format!("invalid JSON line {line:?}: {e}"))),
            ),
            Err(_) => None,
        }
    }

    fn request(&mut self, body: &str) -> Json {
        self.writer
            .write_all(body.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .unwrap_or_else(|e| fail(&format!("send failed: {e}")));
        self.read_line()
            .unwrap_or_else(|| fail(&format!("connection closed answering {body}")))
    }

    fn expect_ok(&mut self, body: &str) -> Json {
        let response = self.request(body);
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            fail(&format!("request {body} failed: {response}"));
        }
        response
    }
}

fn fit_request() -> String {
    let graphs: Vec<Json> = (5..9)
        .flat_map(|n| {
            [
                graph_to_json(&cycle_graph(n)),
                graph_to_json(&star_graph(n)),
            ]
        })
        .collect();
    format!(
        "{{\"cmd\":\"fit\",\"graphs\":{},\"variant\":\"A\",\"config\":{{\
         \"hierarchy_levels\":2,\"num_prototypes\":6,\"layer_cap\":2,\
         \"kmeans_max_iterations\":8}}}}",
        Json::Arr(graphs)
    )
}

fn main() {
    let dir = std::env::temp_dir().join(format!("haqjsk-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("mkdir scratch: {e}")));
    let model_path = dir.join("soak-model.haqjsk");

    let mut serve = spawn_serve(&model_path);
    let mut control = Client::connect(&serve.addr);
    control.expect_ok("{\"cmd\":\"ping\"}");

    // --- Phase 1: connection-cap sheds. Fill the cap with idle keepalive
    // connections, then check every connection past it is shed with one
    // well-formed overloaded line and a clean close.
    let mut occupants = Vec::new();
    while occupants.len() + 1 < MAX_CONNS {
        let mut c = Client::connect(&serve.addr);
        c.expect_ok("{\"cmd\":\"ping\"}");
        occupants.push(c);
    }
    let mut sheds = 0;
    for _ in 0..6 {
        let mut extra = Client::connect(&serve.addr);
        let Some(line) = extra.read_line() else {
            // The accept loop may have raced a disconnect; a plain close
            // with no line is not a valid shed.
            fail("over-cap connection closed without the overloaded line");
        };
        if line.get("ok").and_then(Json::as_bool) != Some(false)
            || line.get("error").and_then(Json::as_str) != Some("overloaded")
        {
            fail(&format!("malformed shed line: {line}"));
        }
        if extra.read_line().is_some() {
            fail("shed connection was not closed after the overloaded line");
        }
        sheds += 1;
    }

    // --- Phase 2: slow-loris client parked mid-frame while the cap is
    // still mostly occupied; ping/metrics latency must stay bounded the
    // whole time, and the loris gets cut off by the I/O timeout.
    drop(occupants.pop()); // free one slot for the loris
    let mut loris = Client::connect(&serve.addr);
    loris
        .writer
        .write_all(b"{\"cmd\":\"fi")
        .and_then(|()| loris.writer.flush())
        .unwrap_or_else(|e| fail(&format!("loris send: {e}")));

    let probe_start = Instant::now();
    let mut probes = 0;
    while probe_start.elapsed() < Duration::from_millis(IO_TIMEOUT_MS + 300) {
        let t = Instant::now();
        control.expect_ok("{\"cmd\":\"ping\"}");
        control.expect_ok("{\"cmd\":\"metrics\"}");
        if t.elapsed() > Duration::from_secs(5) {
            fail(&format!(
                "cheap ops stalled under abuse: ping+metrics took {:?}",
                t.elapsed()
            ));
        }
        probes += 1;
        std::thread::sleep(Duration::from_millis(50));
    }
    let cutoff = loris
        .read_line()
        .unwrap_or_else(|| fail("slow-loris connection closed without the timeout error line"));
    let error = cutoff.get("error").and_then(Json::as_str).unwrap_or("");
    if !error.contains("timed out") {
        fail(&format!("unexpected loris cutoff line: {cutoff}"));
    }
    if loris.read_line().is_some() {
        fail("loris connection stayed open after the timeout");
    }

    // --- Phase 3: fit + crash-safe save while serving.
    control.expect_ok(&fit_request());
    let path_str = model_path.to_str().expect("utf-8 scratch path");
    control.expect_ok(&format!(
        "{{\"cmd\":\"save_file\",\"path\":\"{path_str}\"}}"
    ));
    let saved_bytes =
        std::fs::read(&model_path).unwrap_or_else(|e| fail(&format!("read saved model: {e}")));
    let saved_text = String::from_utf8(saved_bytes.clone())
        .unwrap_or_else(|e| fail(&format!("saved model not UTF-8: {e}")));
    haqjsk_core::model_from_string(&saved_text)
        .unwrap_or_else(|e| fail(&format!("saved model does not reload: {e}")));

    // --- Phase 4: no thread leak — with all abusive clients gone, the
    // active-connections gauge returns to this client's baseline.
    drop(loris);
    occupants.clear();
    let baseline_deadline = Instant::now() + Duration::from_secs(10);
    let mut active = f64::MAX;
    while Instant::now() < baseline_deadline {
        let stats = control.expect_ok("{\"cmd\":\"stats\"}");
        active = stats
            .get("active_connections")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail("stats carries no active_connections"));
        if active <= 1.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if active > 1.0 {
        fail(&format!(
            "active connections stuck at {active} after clients disconnected"
        ));
    }

    // --- Phase 5: SIGTERM drains in-flight work, then the process exits 0.
    let pid = serve.child.id().to_string();
    let status = std::process::Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap_or_else(|e| fail(&format!("cannot send SIGTERM: {e}")));
    if !status.success() {
        fail("kill -TERM failed");
    }
    // The draining server must still answer the in-flight/open client...
    let drained_response = control.request("{\"cmd\":\"ping\"}");
    if drained_response.get("ok").and_then(Json::as_bool) != Some(true) {
        fail(&format!(
            "in-flight request dropped during drain: {drained_response}"
        ));
    }
    // ...then close the (now idle) connection as part of the drain.
    let mut rest = String::new();
    let _ = control.reader.read_to_string(&mut rest);

    let exit_deadline = Instant::now() + Duration::from_millis(DRAIN_MS + 4000);
    let code = loop {
        match serve.child.try_wait() {
            Ok(Some(status)) => break status.code(),
            Ok(None) if Instant::now() < exit_deadline => {
                std::thread::sleep(Duration::from_millis(50))
            }
            Ok(None) => fail("server did not exit within the drain deadline"),
            Err(e) => fail(&format!("wait failed: {e}")),
        }
    };
    if code != Some(0) {
        fail(&format!("server exited with {code:?}, expected 0"));
    }

    // --- Phase 6: the saved model survives the process byte-identically
    // and recovers on the next startup.
    let reread =
        std::fs::read(&model_path).unwrap_or_else(|e| fail(&format!("re-read model: {e}")));
    if reread != saved_bytes {
        fail("saved model changed on disk across the drain");
    }
    let mut serve2 = spawn_serve(&model_path);
    let mut client2 = Client::connect(&serve2.addr);
    let save = client2.expect_ok("{\"cmd\":\"save\"}");
    let recovered = save.get("model").and_then(Json::as_str).unwrap_or("");
    if !saved_text.starts_with(recovered) || recovered.is_empty() {
        fail("recovered model text does not match the saved file");
    }
    let _ = serve2.child.kill();
    let _ = serve2.child.wait();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "serve_soak: OK — {sheds} clean sheds at the connection cap, slow-loris cut off, \
         {probes} bounded ping/metrics probes under abuse, gauge back to baseline, \
         SIGTERM drained to exit 0, model file byte-identical and recovered on restart"
    );
}
