//! Regenerates Table IV of the paper: 10-fold C-SVM classification accuracy
//! of the HAQJSK kernels against the baseline graph kernels on (synthetic
//! stand-ins for) the twelve benchmark datasets.
//!
//! The default quick scale runs a handful of reduced datasets in minutes;
//! pass `--medium` or `--full` for the larger protocol, and optionally name
//! datasets on the command line to restrict the run, e.g.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin table4_kernel_comparison -- MUTAG PTC(MR)
//! cargo run --release -p haqjsk-bench --bin table4_kernel_comparison -- --full
//! ```

use haqjsk_bench::{evaluate_haqjsk, evaluate_kernel, print_accuracy_table, AccuracyRow, RunScale};
use haqjsk_core::HaqjskVariant;
use haqjsk_datasets::{all_dataset_names, generate_by_name};
use haqjsk_kernels::{
    DepthBasedAlignedKernel, GraphKernel, GraphletKernel, JensenTsallisKernel, QjskUnaligned,
    RandomWalkKernel, ShortestPathKernel, WeisfeilerLehmanKernel,
};

fn main() {
    let scale = RunScale::from_args();
    println!("{}", haqjsk_bench::engine_banner());
    let requested: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    // By default the quick run covers the smaller half of the datasets; the
    // paper-scale social-network corpora (RED-B, COLLAB) only run with an
    // explicit request or --full.
    let default_quick = [
        "MUTAG",
        "PTC(MR)",
        "PPIs",
        "BAR31",
        "BSPHERE31",
        "GEOD31",
        "IMDB-B",
        "IMDB-M",
    ];
    let datasets: Vec<String> = if !requested.is_empty() {
        requested
    } else if scale == RunScale::Full {
        all_dataset_names().iter().map(|s| s.to_string()).collect()
    } else {
        default_quick.iter().map(|s| s.to_string()).collect()
    };

    println!(
        "Table IV — classification accuracy (mean % ± standard error), {}",
        scale.describe()
    );
    let cv = scale.cv_config();
    let haqjsk_config = scale.haqjsk_config();

    for name in &datasets {
        let Some(dataset) = generate_by_name(name, scale.graph_divisor(), scale.size_divisor(), 42)
        else {
            eprintln!("unknown dataset '{name}', skipping");
            continue;
        };
        let mut rows: Vec<AccuracyRow> = Vec::new();

        for variant in [
            HaqjskVariant::AlignedAdjacency,
            HaqjskVariant::AlignedDensity,
        ] {
            match evaluate_haqjsk(variant, &haqjsk_config, &dataset, &cv) {
                Ok(row) => rows.push(row),
                Err(err) => eprintln!("{} failed on {name}: {err}", variant.label()),
            }
        }

        let baselines: Vec<Box<dyn GraphKernel>> = vec![
            Box::new(QjskUnaligned::default()),
            Box::new(JensenTsallisKernel::default()),
            Box::new(GraphletKernel::three_only()),
            Box::new(WeisfeilerLehmanKernel::new(3)),
            Box::new(ShortestPathKernel::new()),
            Box::new(RandomWalkKernel::default()),
            Box::new(DepthBasedAlignedKernel::default()),
        ];
        for kernel in &baselines {
            rows.push(evaluate_kernel(kernel.as_ref(), &dataset, &cv));
        }

        print_accuracy_table(
            &format!(
                "{name} ({} graphs, {} classes)",
                dataset.len(),
                dataset.num_classes()
            ),
            &rows,
        );
        let best = rows
            .iter()
            .max_by(|a, b| a.mean_percent.partial_cmp(&b.mean_percent).unwrap())
            .unwrap();
        println!("best on {name}: {} ({})", best.method, best.accuracy);
    }

    println!("\nAbsolute numbers differ from the paper (synthetic stand-in datasets); the comparison of interest is the ranking of kernels per dataset.");
}
