//! Ablation: effect of the hierarchy depth `H` on classification accuracy
//! and runtime (the paper fixes `H = 5`; this sweep validates that levels
//! beyond 1 help).
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin ablation_hierarchy [--medium|--full]
//! ```

use haqjsk_bench::{evaluate_haqjsk, RunScale};
use haqjsk_core::{HaqjskConfig, HaqjskVariant};
use haqjsk_datasets::generate_by_name;
use std::time::Instant;

fn main() {
    let scale = RunScale::from_args();
    println!("Ablation — hierarchy depth H ({})\n", scale.describe());
    let dataset = generate_by_name("MUTAG", scale.graph_divisor(), scale.size_divisor(), 42)
        .expect("MUTAG is a known dataset");
    let cv = scale.cv_config();
    let base = scale.haqjsk_config();

    println!(
        "{:<4} {:>22} {:>22} {:>12}",
        "H", "HAQJSK(A) accuracy", "HAQJSK(D) accuracy", "seconds"
    );
    let max_h = if scale == RunScale::Quick { 4 } else { 5 };
    for h in 1..=max_h {
        let config = HaqjskConfig {
            hierarchy_levels: h,
            ..base.clone()
        };
        let start = Instant::now();
        let a = evaluate_haqjsk(HaqjskVariant::AlignedAdjacency, &config, &dataset, &cv)
            .expect("evaluation succeeds");
        let d = evaluate_haqjsk(HaqjskVariant::AlignedDensity, &config, &dataset, &cv)
            .expect("evaluation succeeds");
        println!(
            "{:<4} {:>22} {:>22} {:>12.1}",
            h,
            a.accuracy,
            d.accuracy,
            start.elapsed().as_secs_f64()
        );
    }
}
