//! Regenerates Table III of the paper: the design axes of the comparison
//! kernels (framework, alignment, transitivity, structure patterns,
//! computing model).
//!
//! ```text
//! cargo run -p haqjsk-bench --bin table3_kernels_properties
//! ```

use haqjsk_kernels::properties::table3_comparison_kernels;

fn main() {
    println!("Table III — graph kernels for comparison\n");
    println!(
        "{:<12} {:<36} {:>8} {:>11} {:<36} {:<15}",
        "kernel", "framework", "aligned", "transitive", "structure patterns", "computing model"
    );
    for row in table3_comparison_kernels() {
        println!(
            "{:<12} {:<36} {:>8} {:>11} {:<36} {:<15}",
            row.name,
            row.framework,
            if row.aligned { "yes" } else { "no" },
            if row.transitive { "yes" } else { "no" },
            row.structure_patterns,
            row.computing_model,
        );
    }
}
