//! Empirical check of the paper's central theoretical claim (the Lemma of
//! Sec. III-B): the HAQJSK Gram matrices are positive semidefinite, while the
//! unaligned / Umeyama-aligned QJSK Gram matrices need not be.
//!
//! For every requested dataset the binary reports the minimum eigenvalue of
//! the cosine-normalised Gram matrix of each kernel.
//!
//! ```text
//! cargo run --release -p haqjsk-bench --bin psd_check [--medium|--full]
//! ```

use haqjsk_bench::RunScale;
use haqjsk_core::{HaqjskModel, HaqjskVariant};
use haqjsk_datasets::generate_by_name;
use haqjsk_kernels::{GraphKernel, QjskAligned, QjskUnaligned};

fn main() {
    let scale = RunScale::from_args();
    println!(
        "Positive semidefiniteness of Gram matrices ({})\n",
        scale.describe()
    );
    println!(
        "{:<12} {:<22} {:>16} {:>6}",
        "dataset", "kernel", "min eigenvalue", "PSD"
    );
    let haqjsk_config = scale.haqjsk_config();

    for name in ["MUTAG", "PTC(MR)", "IMDB-B", "BAR31"] {
        let Some(dataset) =
            generate_by_name(name, scale.graph_divisor() * 2, scale.size_divisor(), 42)
        else {
            continue;
        };

        let report = |kernel_name: &str, gram: haqjsk_kernels::KernelMatrix| {
            let normalized = gram.normalized();
            let min_eig = normalized.min_eigenvalue().unwrap();
            println!(
                "{:<12} {:<22} {:>16.4e} {:>6}",
                name,
                kernel_name,
                min_eig,
                if normalized.is_positive_semidefinite(1e-7).unwrap() {
                    "yes"
                } else {
                    "NO"
                }
            );
        };

        for variant in [
            HaqjskVariant::AlignedAdjacency,
            HaqjskVariant::AlignedDensity,
        ] {
            let model = HaqjskModel::fit(&dataset.graphs, haqjsk_config.clone(), variant)
                .expect("fit succeeds");
            let gram = model.gram_matrix(&dataset.graphs).expect("gram succeeds");
            report(variant.label(), gram);
        }
        report(
            "QJSK (unaligned)",
            QjskUnaligned::default().gram_matrix(&dataset.graphs),
        );
        report(
            "QJSK (Umeyama)",
            QjskAligned::default().gram_matrix(&dataset.graphs),
        );
        println!();
    }
    println!("HAQJSK minimum eigenvalues sit at (numerical) zero or above; the QJSK baselines can dip negative, confirming Table I's PD column.");
}
