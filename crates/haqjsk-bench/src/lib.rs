//! # haqjsk-bench
//!
//! Shared harness code for the binaries that regenerate the paper's tables
//! and figures, plus the Criterion micro-benchmarks.
//!
//! Each table/figure of the paper has a dedicated binary under `src/bin/`
//! (see DESIGN.md for the per-experiment index); this library holds the
//! pieces they share: command-line scale handling, kernel evaluation through
//! the paper's C-SVM protocol, and simple fixed-width table printing.

use haqjsk_core::{HaqjskConfig, HaqjskModel, HaqjskVariant};
use haqjsk_datasets::GeneratedDataset;
use haqjsk_kernels::{GraphKernel, KernelMatrix};
use haqjsk_linalg::LinalgError;
use haqjsk_ml::{cross_validate_kernel, CrossValidationConfig};

/// How aggressively to down-scale the paper's dataset sizes. The default
/// keeps every table reproducible on a laptop in minutes; `--full` runs the
/// paper-scale datasets (hours for the quantum kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Small datasets, few folds: seconds to minutes per table.
    Quick,
    /// Intermediate scale.
    Medium,
    /// The paper's dataset sizes and the full 10x10-fold protocol.
    Full,
}

impl RunScale {
    /// Parses the scale from process arguments (`--full`, `--medium`,
    /// default quick).
    pub fn from_args() -> RunScale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            RunScale::Full
        } else if args.iter().any(|a| a == "--medium") {
            RunScale::Medium
        } else {
            RunScale::Quick
        }
    }

    /// Divisor applied to the number of graphs per dataset.
    pub fn graph_divisor(self) -> usize {
        match self {
            RunScale::Quick => 16,
            RunScale::Medium => 4,
            RunScale::Full => 1,
        }
    }

    /// Divisor applied to graph sizes (vertex/edge counts).
    pub fn size_divisor(self) -> usize {
        match self {
            RunScale::Quick => 4,
            RunScale::Medium => 2,
            RunScale::Full => 1,
        }
    }

    /// The cross-validation protocol matching the scale.
    pub fn cv_config(self) -> CrossValidationConfig {
        match self {
            RunScale::Quick => CrossValidationConfig::quick(),
            RunScale::Medium => CrossValidationConfig {
                folds: 10,
                repetitions: 3,
                ..CrossValidationConfig::default()
            },
            RunScale::Full => CrossValidationConfig::default(),
        }
    }

    /// The HAQJSK configuration matching the scale (prototype counts shrink
    /// with the datasets so the aligned matrices stay proportionate).
    pub fn haqjsk_config(self) -> HaqjskConfig {
        match self {
            RunScale::Quick => HaqjskConfig {
                hierarchy_levels: 3,
                num_prototypes: 32,
                layer_cap: 4,
                ..HaqjskConfig::small()
            },
            RunScale::Medium => HaqjskConfig {
                hierarchy_levels: 4,
                num_prototypes: 64,
                layer_cap: 5,
                ..HaqjskConfig::default()
            },
            RunScale::Full => HaqjskConfig::default(),
        }
    }

    /// Human-readable description for table headers.
    pub fn describe(self) -> &'static str {
        match self {
            RunScale::Quick => "quick scale (pass --medium or --full for larger runs)",
            RunScale::Medium => "medium scale",
            RunScale::Full => "full paper scale",
        }
    }
}

/// Parses a `--json <path>` flag from the process arguments — the
/// machine-readable output channel of the perf benches (`scaling`,
/// `pairwise`), so the perf trajectory can be tracked across PRs.
///
/// A `--json` with a missing path (or another flag where the path should
/// be) aborts loudly: automation that forgot the path must not exit 0 and
/// then diff a stale report file.
pub fn json_output_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let idx = args.iter().position(|a| a == "--json")?;
    match args.get(idx + 1) {
        Some(path) if !path.starts_with("--") => Some(std::path::PathBuf::from(path)),
        _ => {
            eprintln!("error: --json requires a path argument");
            std::process::exit(2);
        }
    }
}

/// Writes a JSON document to `path` (pretty enough for diffing: one line),
/// logging where it went. A failed write aborts with a non-zero exit for
/// the same reason a missing `--json` path does: automation must never
/// exit 0 and then diff a stale report file.
pub fn write_json_report(path: &std::path::Path, report: &haqjsk_engine::Json) {
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => println!("\nwrote machine-readable results to {}", path.display()),
        Err(err) => {
            eprintln!("\nerror: failed to write {}: {err}", path.display());
            std::process::exit(2);
        }
    }
}

/// Handles the perf benches' `--metrics` flag: when present, registers
/// every layer's registry exporters and dumps the full metrics registry —
/// engine, cache, eigen-batch, distributed and serve families — as
/// Prometheus text to stdout. A no-op without the flag, so metrics-enabled
/// and plain runs execute the identical benchmark path (the `pairwise_check`
/// regression guard relies on that).
pub fn dump_metrics_if_requested() {
    if !std::env::args().any(|a| a == "--metrics") {
        return;
    }
    haqjsk_kernels::register_cache_metrics();
    haqjsk_linalg::register_batch_metrics();
    haqjsk_dist::register_dist_metrics();
    println!("\n--- metrics (Prometheus text exposition) ---");
    print!("{}", haqjsk_obs::registry().render_prometheus());
}

/// One-line description of the engine executing all Gram computation:
/// worker count (with its `HAQJSK_THREADS` provenance), the dispatched
/// eigensolver SIMD path and the density-cache counters. The table binaries
/// print it so recorded runs document their parallel configuration.
pub fn engine_banner() -> String {
    let threads = haqjsk_engine::Engine::global().threads();
    let source = if std::env::var(haqjsk_engine::THREADS_ENV_VAR).is_ok() {
        haqjsk_engine::THREADS_ENV_VAR
    } else {
        "auto"
    };
    let backend = haqjsk_engine::Engine::global().backend();
    let simd = haqjsk_linalg::active_simd_label();
    let cache = haqjsk_kernels::density_cache_stats();
    format!(
        "engine: {threads} workers ({source}), '{backend}' backend, '{simd}' eigensolver lanes, density cache {} hits / {} misses / {} evictions",
        cache.hits, cache.misses, cache.evictions
    )
}

/// One row of an accuracy table: kernel name and "mean ± stderr" text.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Method name.
    pub method: String,
    /// Formatted accuracy.
    pub accuracy: String,
    /// Mean accuracy in percent (for programmatic comparisons).
    pub mean_percent: f64,
}

/// Evaluates a Gram matrix with the paper's C-SVM protocol and returns the
/// accuracy row. Indefinite kernels are clipped to the PSD cone first, as one
/// must do in practice before handing them to an SVM.
pub fn evaluate_gram(
    method: &str,
    gram: &KernelMatrix,
    classes: &[usize],
    cv: &CrossValidationConfig,
) -> AccuracyRow {
    let normalized = gram.normalized();
    let psd = normalized.project_psd().expect("PSD projection succeeds");
    let result = cross_validate_kernel(&psd, classes, cv);
    AccuracyRow {
        method: method.to_string(),
        accuracy: format!("{}", result.summary),
        mean_percent: result.summary.mean_percent,
    }
}

/// Evaluates a baseline kernel (Gram + C-SVM CV) on a generated dataset.
pub fn evaluate_kernel(
    kernel: &dyn GraphKernel,
    dataset: &GeneratedDataset,
    cv: &CrossValidationConfig,
) -> AccuracyRow {
    let gram = kernel.gram_matrix(&dataset.graphs);
    evaluate_gram(kernel.name(), &gram, &dataset.classes, cv)
}

/// Fits a HAQJSK model on a dataset and evaluates it with the C-SVM protocol.
pub fn evaluate_haqjsk(
    variant: HaqjskVariant,
    config: &HaqjskConfig,
    dataset: &GeneratedDataset,
    cv: &CrossValidationConfig,
) -> Result<AccuracyRow, LinalgError> {
    let model = HaqjskModel::fit(&dataset.graphs, config.clone(), variant)?;
    let gram = model.gram_matrix(&dataset.graphs)?;
    Ok(evaluate_gram(variant.label(), &gram, &dataset.classes, cv))
}

/// Prints a fixed-width table of accuracy rows.
pub fn print_accuracy_table(dataset: &str, rows: &[AccuracyRow]) {
    println!("\n=== {dataset} ===");
    println!("{:<28} {:>18}", "method", "accuracy (%)");
    for row in rows {
        println!("{:<28} {:>18}", row.method, row.accuracy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_datasets::generate_by_name;
    use haqjsk_kernels::WeisfeilerLehmanKernel;

    #[test]
    fn scale_parameters_are_ordered() {
        assert!(RunScale::Quick.graph_divisor() > RunScale::Medium.graph_divisor());
        assert!(RunScale::Medium.graph_divisor() > RunScale::Full.graph_divisor());
        assert_eq!(RunScale::Full.graph_divisor(), 1);
        assert_eq!(RunScale::Full.size_divisor(), 1);
        assert!(
            RunScale::Quick.haqjsk_config().num_prototypes
                <= RunScale::Full.haqjsk_config().num_prototypes
        );
        assert!(RunScale::Quick.cv_config().repetitions <= RunScale::Full.cv_config().repetitions);
        assert!(!RunScale::Quick.describe().is_empty());
    }

    #[test]
    fn evaluation_helpers_produce_rows() {
        let dataset = generate_by_name("MUTAG", 16, 1, 1).unwrap();
        let cv = CrossValidationConfig::quick();
        let row = evaluate_kernel(&WeisfeilerLehmanKernel::new(2), &dataset, &cv);
        assert_eq!(row.method, "WLSK");
        assert!(row.mean_percent >= 0.0 && row.mean_percent <= 100.0);
        let hrow = evaluate_haqjsk(
            HaqjskVariant::AlignedAdjacency,
            &HaqjskConfig {
                hierarchy_levels: 2,
                num_prototypes: 8,
                layer_cap: 3,
                ..HaqjskConfig::small()
            },
            &dataset,
            &cv,
        )
        .unwrap();
        assert_eq!(hrow.method, "HAQJSK(A)");
        print_accuracy_table("MUTAG (test)", &[row, hrow]);
    }
}
