//! Criterion micro-benchmarks of the quantum-walk substrate: CTQW density
//! matrices, von Neumann entropy and the QJSD, as a function of graph size.
//! These are the inner kernels of the O(N² n³) complexity analysis in
//! Sec. III-D of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haqjsk_graph::generators::erdos_renyi;
use haqjsk_quantum::{ctqw_density_infinite, qjsd, von_neumann_entropy};
use std::time::Duration;

fn bench_ctqw_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctqw_density");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [16usize, 32, 64] {
        let graph = erdos_renyi(n, 0.25, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| ctqw_density_infinite(g).unwrap());
        });
    }
    group.finish();
}

fn bench_entropy_and_qjsd(c: &mut Criterion) {
    let mut group = c.benchmark_group("qjsd");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [16usize, 32, 64] {
        let rho = ctqw_density_infinite(&erdos_renyi(n, 0.25, 1)).unwrap();
        let sigma = ctqw_density_infinite(&erdos_renyi(n, 0.35, 2)).unwrap();
        group.bench_with_input(BenchmarkId::new("entropy", n), &rho, |b, r| {
            b.iter(|| von_neumann_entropy(r));
        });
        group.bench_with_input(
            BenchmarkId::new("qjsd", n),
            &(rho.clone(), sigma),
            |b, (r, s)| {
                b.iter(|| qjsd(r, s).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ctqw_density, bench_entropy_and_qjsd);
criterion_main!(benches);
