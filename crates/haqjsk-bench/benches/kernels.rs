//! Criterion micro-benchmarks of the pairwise kernel evaluations: each of
//! the baseline kernels and the fitted HAQJSK kernels on a fixed pair of
//! medium-sized graphs. This is the per-pair cost that multiplies into the
//! Table IV Gram-matrix runtimes.

use criterion::{criterion_group, criterion_main, Criterion};
use haqjsk_core::{HaqjskConfig, HaqjskModel, HaqjskVariant};
use haqjsk_graph::generators::{barabasi_albert, erdos_renyi, watts_strogatz};
use haqjsk_graph::Graph;
use haqjsk_kernels::{
    GraphKernel, GraphletKernel, QjskUnaligned, ShortestPathKernel, WeisfeilerLehmanKernel,
};
use std::time::Duration;

fn bench_pairwise_kernels(c: &mut Criterion) {
    let a = erdos_renyi(30, 0.2, 1);
    let b = barabasi_albert(28, 2, 2);
    let mut group = c.benchmark_group("pairwise_kernel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    let wl = WeisfeilerLehmanKernel::new(3);
    group.bench_function("WLSK", |bencher| bencher.iter(|| wl.compute(&a, &b)));

    let sp = ShortestPathKernel::new();
    group.bench_function("SPGK", |bencher| bencher.iter(|| sp.compute(&a, &b)));

    let gl = GraphletKernel::three_only();
    group.bench_function("GCGK(3)", |bencher| bencher.iter(|| gl.compute(&a, &b)));

    let qjsk = QjskUnaligned::default();
    group.bench_function("QJSK", |bencher| bencher.iter(|| qjsk.compute(&a, &b)));
    group.finish();
}

fn bench_haqjsk_kernel(c: &mut Criterion) {
    let graphs: Vec<Graph> = (0..12)
        .map(|i| watts_strogatz(24 + i % 6, 4, 0.2, i as u64))
        .collect();
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 16,
        layer_cap: 3,
        ..HaqjskConfig::small()
    };
    let model = HaqjskModel::fit(&graphs, config, HaqjskVariant::AlignedAdjacency).unwrap();
    let aligned: Vec<_> = graphs.iter().map(|g| model.transform(g).unwrap()).collect();

    let mut group = c.benchmark_group("haqjsk");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("transform_one_graph", |bencher| {
        bencher.iter(|| model.transform(&graphs[0]).unwrap())
    });
    group.bench_function("kernel_between_transformed", |bencher| {
        bencher.iter(|| model.kernel(&aligned[0], &aligned[1]))
    });
    group.finish();
}

criterion_group!(benches, bench_pairwise_kernels, bench_haqjsk_kernel);
criterion_main!(benches);
