//! Criterion micro-benchmarks of the hierarchical-alignment pipeline pieces:
//! depth-based representations, κ-means prototype construction and the
//! correspondence/congruence transforms (steps a–c of the complexity
//! analysis in Sec. III-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haqjsk_core::correspondence::GraphCorrespondences;
use haqjsk_core::db_representation::DbRepresentations;
use haqjsk_core::{HaqjskConfig, PrototypeHierarchy};
use haqjsk_graph::generators::erdos_renyi;
use haqjsk_graph::Graph;
use std::time::Duration;

fn dataset(count: usize, size: usize) -> Vec<Graph> {
    (0..count)
        .map(|i| erdos_renyi(size, 0.2, i as u64))
        .collect()
}

fn bench_db_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_representations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for size in [16usize, 32, 64] {
        let graphs = dataset(10, size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &graphs, |b, g| {
            b.iter(|| DbRepresentations::compute(g, 4));
        });
    }
    group.finish();
}

fn bench_hierarchy_and_correspondence(c: &mut Criterion) {
    let graphs = dataset(16, 24);
    let reps = DbRepresentations::compute(&graphs, 3);
    let config = HaqjskConfig {
        hierarchy_levels: 3,
        num_prototypes: 32,
        layer_cap: 3,
        ..HaqjskConfig::small()
    };
    let hierarchy = PrototypeHierarchy::build(&reps, &config);

    let mut group = c.benchmark_group("alignment");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("prototype_hierarchy_build", |b| {
        b.iter(|| PrototypeHierarchy::build(&reps, &config))
    });
    group.bench_function("graph_correspondences", |b| {
        b.iter(|| GraphCorrespondences::compute(&reps, 0, &hierarchy))
    });
    let corr = GraphCorrespondences::compute(&reps, 0, &hierarchy);
    let adjacency = graphs[0].adjacency_matrix();
    group.bench_function("congruence_transform", |b| {
        b.iter(|| corr.at(1, 1).transform(&adjacency))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_db_representations,
    bench_hierarchy_and_correspondence
);
criterion_main!(benches);
