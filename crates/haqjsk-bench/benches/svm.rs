//! Criterion micro-benchmarks of the evaluation harness: SMO training of the
//! kernel C-SVM and the full cross-validation pass on a precomputed Gram
//! matrix (the per-kernel cost of producing a Table IV cell once the Gram
//! matrix exists).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use haqjsk_kernels::KernelMatrix;
use haqjsk_linalg::Matrix;
use haqjsk_ml::{cross_validate_kernel, CrossValidationConfig, KernelSvm, SvmConfig};
use std::time::Duration;

/// A block-structured kernel matrix with two classes.
fn toy_problem(per_class: usize) -> (KernelMatrix, Vec<usize>, Vec<f64>) {
    let n = per_class * 2;
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let same = (i < per_class) == (j < per_class);
            let noise = (((i * 31 + j * 17) % 13) as f64) / 130.0;
            m[(i, j)] = if same { 1.0 - noise } else { 0.2 + noise };
        }
    }
    let m = m.symmetrize().unwrap();
    let classes: Vec<usize> = (0..n).map(|i| usize::from(i >= per_class)).collect();
    let labels: Vec<f64> = classes
        .iter()
        .map(|&c| if c == 0 { 1.0 } else { -1.0 })
        .collect();
    (KernelMatrix::new(m).unwrap(), classes, labels)
}

fn bench_svm_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_train");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for per_class in [20usize, 50] {
        let (kernel, _, labels) = toy_problem(per_class);
        group.bench_with_input(
            BenchmarkId::from_parameter(per_class * 2),
            &(kernel, labels),
            |b, (k, l)| {
                b.iter(|| KernelSvm::train(k.matrix(), l, &SvmConfig::with_c(1.0)));
            },
        );
    }
    group.finish();
}

fn bench_cross_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_validation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let (kernel, classes, _) = toy_problem(40);
    group.bench_function("quick_protocol_80_graphs", |b| {
        b.iter(|| cross_validate_kernel(&kernel, &classes, &CrossValidationConfig::quick()));
    });
    group.finish();
}

criterion_group!(benches, bench_svm_training, bench_cross_validation);
criterion_main!(benches);
