//! Property-based tests for the quantum-walk machinery.

use haqjsk_graph::generators::erdos_renyi;
use haqjsk_quantum::entropy::max_entropy;
use haqjsk_quantum::{ctqw_density_infinite, qjsd, qjsd_padded, von_neumann_entropy};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = haqjsk_graph::Graph> {
    (3usize..14, 0.15f64..0.9, 0u64..500).prop_map(|(n, p, seed)| erdos_renyi(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The CTQW density matrix is always a valid quantum state: symmetric,
    /// unit trace, non-negative spectrum.
    #[test]
    fn ctqw_density_is_valid_state(g in graph_strategy()) {
        let rho = ctqw_density_infinite(&g).unwrap();
        let m = rho.matrix();
        prop_assert!((m.trace() - 1.0).abs() < 1e-8);
        prop_assert!(m.is_symmetric(1e-8));
        for l in rho.spectrum() {
            prop_assert!(l >= -1e-8);
            prop_assert!(l <= 1.0 + 1e-8);
        }
    }

    /// Von Neumann entropy is bounded by 0 and ln(n).
    #[test]
    fn entropy_bounds(g in graph_strategy()) {
        let rho = ctqw_density_infinite(&g).unwrap();
        let h = von_neumann_entropy(&rho);
        prop_assert!(h >= -1e-10);
        prop_assert!(h <= max_entropy(rho.dim()) + 1e-8);
    }

    /// The QJSD between CTQW densities of two random graphs is symmetric,
    /// non-negative, bounded by ln 2, and zero for identical graphs.
    #[test]
    fn qjsd_properties(g1 in graph_strategy(), g2 in graph_strategy()) {
        let r1 = ctqw_density_infinite(&g1).unwrap();
        let r2 = ctqw_density_infinite(&g2).unwrap();
        let d12 = qjsd_padded(&r1, &r2).unwrap();
        let d21 = qjsd_padded(&r2, &r1).unwrap();
        prop_assert!((d12 - d21).abs() < 1e-9);
        prop_assert!(d12 >= 0.0);
        prop_assert!(d12 <= std::f64::consts::LN_2 + 1e-9);
        let self_d = qjsd(&r1, &r1).unwrap();
        prop_assert!(self_d.abs() < 1e-9);
    }

    /// The von Neumann entropy of a CTQW density matrix is invariant under
    /// graph relabelling, and the density matrix itself is covariant.
    #[test]
    fn entropy_is_permutation_invariant(g in graph_strategy(), seed in 0u64..100) {
        let n = g.num_vertices();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed + 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let pg = g.permute(&perm).unwrap();
        let h1 = von_neumann_entropy(&ctqw_density_infinite(&g).unwrap());
        let h2 = von_neumann_entropy(&ctqw_density_infinite(&pg).unwrap());
        prop_assert!((h1 - h2).abs() < 1e-7);
    }
}
