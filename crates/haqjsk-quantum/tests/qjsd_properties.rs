//! Property-based tests for the QJSD fast path: supplying precomputed
//! endpoint entropies (the per-graph artifacts the kernel pair loops hoist)
//! must not change the divergence, including across zero-padding.

use haqjsk_linalg::Matrix;
use haqjsk_quantum::{qjsd, qjsd_padded, qjsd_with_entropies, von_neumann_entropy, DensityMatrix};
use proptest::prelude::*;

/// Strategy producing a random density matrix of dimension `n`: `AᵀA` is
/// symmetric PSD, and `from_unnormalized` scales it to unit trace.
fn density(n: usize) -> impl Strategy<Value = DensityMatrix> {
    proptest::collection::vec(-2.0..2.0_f64, n * n).prop_map(move |data| {
        let a = Matrix::from_vec(n, n, data).unwrap();
        DensityMatrix::from_unnormalized(&a.gram()).expect("AᵀA is a valid unnormalised state")
    })
}

/// Random density pairs of equal dimension.
fn density_pair() -> impl Strategy<Value = (DensityMatrix, DensityMatrix)> {
    (2usize..=8).prop_flat_map(|n| (density(n), density(n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `qjsd_with_entropies` with independently computed endpoint entropies
    /// matches `qjsd` within 1e-12 on random density pairs.
    #[test]
    fn qjsd_with_entropies_matches_qjsd(pair in density_pair()) {
        let (rho, sigma) = pair;
        let direct = qjsd(&rho, &sigma).unwrap();
        let hoisted = qjsd_with_entropies(
            &rho,
            &sigma,
            von_neumann_entropy(&rho),
            von_neumann_entropy(&sigma),
        )
        .unwrap();
        prop_assert!((direct - hoisted).abs() < 1e-12, "{direct} vs {hoisted}");
    }

    /// Zero-padding invariance of the hoisted entropies: the QJSD of padded
    /// states computed against the *unpadded* endpoint entropies matches
    /// the all-padded reference — the exact substitution the Gram pair
    /// loops perform.
    #[test]
    fn unpadded_entropies_serve_padded_states(pair in density_pair(), pad in 0usize..4) {
        let (rho, sigma) = pair;
        let n = rho.dim() + pad;
        let pr = rho.zero_pad(n).unwrap();
        let ps = sigma.zero_pad(n).unwrap();
        let reference = qjsd_padded(&rho, &ps).unwrap();
        let hoisted = qjsd_with_entropies(
            &pr,
            &ps,
            von_neumann_entropy(&rho),
            von_neumann_entropy(&sigma),
        )
        .unwrap();
        prop_assert!((reference - hoisted).abs() < 1e-12, "{reference} vs {hoisted}");
    }
}
