//! # haqjsk-quantum
//!
//! Continuous-time quantum walk (CTQW) machinery for the HAQJSK
//! reproduction.
//!
//! The paper's kernels are all built from the same quantum-information
//! ingredients (Sec. II of the paper):
//!
//! * the CTQW evolved on a graph with the Laplacian as Hamiltonian, whose
//!   **time-averaged mixed density matrix** `ρ_G^∞` has the closed form of
//!   Eq. (5) ([`ctqw`]),
//! * the **von Neumann entropy** `H_N(ρ) = -tr(ρ log ρ)` of Eq. (6)–(7)
//!   ([`entropy`]),
//! * the **quantum Jensen–Shannon divergence** between two density matrices,
//!   Eq. (8) ([`qjsd`]),
//! * the density-matrix wrapper type with its validity checks ([`density`]),
//! * the classical continuous-time random walk used as a discrimination
//!   baseline in the paper's remarks ([`ctrw`]).

pub mod batch;
pub mod ctqw;
pub mod ctrw;
pub mod density;
pub mod entropy;
pub mod qjsd;

pub use batch::{batch_mixture_entropies, MixtureEntropy};
pub use ctqw::{ctqw_density_finite_time, ctqw_density_infinite, ctqw_state_at};
pub use density::DensityMatrix;
pub use entropy::{entropy_of_spectrum, tsallis_entropy_of_spectrum, von_neumann_entropy};
pub use qjsd::{qjsd, qjsd_from_entropies, qjsd_padded, qjsd_with_entropies};
