//! Classical continuous-time random walk (CTRW) baseline.
//!
//! The paper motivates the CTQW by contrasting it with the classical CTRW:
//! the classical walk is governed by the (doubly) stochastic heat-kernel
//! semigroup `e^{-tL}` and converges to a stationary distribution dominated
//! by the low Laplacian frequencies, which makes it a weaker discriminator of
//! global structure. This module implements the classical counterpart so the
//! benchmark harness can reproduce that comparison quantitatively.

use haqjsk_graph::Graph;
use haqjsk_linalg::{symmetric_eigen, LinalgError, Matrix};

/// The heat-kernel matrix `e^{-tL}` of the graph Laplacian at time `t`,
/// computed through the spectral decomposition.
pub fn heat_kernel(graph: &Graph, t: f64) -> Result<Matrix, LinalgError> {
    let eig = symmetric_eigen(&graph.laplacian())?;
    Ok(eig.map_spectrum(|lambda| (-t * lambda).exp()))
}

/// The CTRW occupation distribution at time `t`, starting from the degree
/// distribution (the classical analogue of the CTQW initial state).
pub fn ctrw_distribution(graph: &Graph, t: f64) -> Result<Vec<f64>, LinalgError> {
    let kernel = heat_kernel(graph, t)?;
    let p0 = graph.degree_distribution();
    let mut p = kernel.matvec(&p0)?;
    // The heat kernel is stochastic up to numerical error; renormalise so the
    // result stays a distribution.
    let total: f64 = p.iter().sum();
    if total > 0.0 {
        for x in p.iter_mut() {
            *x /= total;
        }
    }
    Ok(p)
}

/// The time-averaged CTRW mixing matrix `1/T ∫_0^T e^{-tL} dt`, approximated
/// with `steps` midpoint samples. The classical analogue of the CTQW
/// time-averaged density matrix; used only for the CTQW-vs-CTRW
/// discrimination study.
pub fn ctrw_average_kernel(
    graph: &Graph,
    horizon: f64,
    steps: usize,
) -> Result<Matrix, LinalgError> {
    if steps == 0 || horizon <= 0.0 {
        return Err(LinalgError::InvalidArgument(
            "CTRW averaging needs a positive horizon and at least one step".to_string(),
        ));
    }
    let eig = symmetric_eigen(&graph.laplacian())?;
    let n = graph.num_vertices();
    let mut acc = Matrix::zeros(n, n);
    for step in 0..steps {
        let t = horizon * (step as f64 + 0.5) / steps as f64;
        acc += &eig.map_spectrum(|lambda| (-t * lambda).exp());
    }
    Ok(acc.scale(1.0 / steps as f64))
}

/// Shannon entropy of the stationary (long-time) CTRW distribution; because
/// the combinatorial Laplacian's kernel is spanned by the constant vector on
/// each connected component, the long-time distribution forgets most
/// structure — the quantity the paper contrasts against the von Neumann
/// entropy of the CTQW density matrix.
pub fn ctrw_stationary_entropy(graph: &Graph, horizon: f64) -> Result<f64, LinalgError> {
    let p = ctrw_distribution(graph, horizon)?;
    Ok(haqjsk_linalg::vector::shannon_entropy(&p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{cycle_graph, path_graph, star_graph};

    #[test]
    fn heat_kernel_at_zero_is_identity() {
        let g = path_graph(4);
        let k = heat_kernel(&g, 0.0).unwrap();
        assert!((&k - &Matrix::identity(4)).max_abs() < 1e-9);
    }

    #[test]
    fn heat_kernel_rows_sum_to_one() {
        let g = cycle_graph(5);
        let k = heat_kernel(&g, 0.7).unwrap();
        for i in 0..5 {
            let s: f64 = (0..5).map(|j| k[(i, j)]).sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn distribution_stays_normalized_and_converges_to_uniform() {
        let g = cycle_graph(6);
        for t in [0.1, 1.0, 10.0] {
            let p = ctrw_distribution(&g, t).unwrap();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= -1e-12));
        }
        // On a connected graph the long-time limit is uniform.
        let p_long = ctrw_distribution(&g, 100.0).unwrap();
        for &x in &p_long {
            assert!((x - 1.0 / 6.0).abs() < 1e-6);
        }
    }

    #[test]
    fn average_kernel_is_symmetric_stochastic() {
        let g = star_graph(5);
        let k = ctrw_average_kernel(&g, 4.0, 32).unwrap();
        assert!(k.is_symmetric(1e-9));
        for i in 0..5 {
            let s: f64 = (0..5).map(|j| k[(i, j)]).sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(ctrw_average_kernel(&g, 0.0, 8).is_err());
        assert!(ctrw_average_kernel(&g, 1.0, 0).is_err());
    }

    #[test]
    fn ctqw_discriminates_where_ctrw_forgets() {
        // Long-time CTRW distributions of any connected graph converge to the
        // uniform distribution, so their entropies coincide; the CTQW density
        // matrices keep distinguishing the same pair of graphs.
        let a = cycle_graph(6);
        let b = path_graph(6);
        let h_a = ctrw_stationary_entropy(&a, 200.0).unwrap();
        let h_b = ctrw_stationary_entropy(&b, 200.0).unwrap();
        assert!((h_a - h_b).abs() < 1e-3, "CTRW entropies should coincide");

        let rho_a = crate::ctqw::ctqw_density_infinite(&a).unwrap();
        let rho_b = crate::ctqw::ctqw_density_infinite(&b).unwrap();
        let ha = crate::entropy::von_neumann_entropy(&rho_a);
        let hb = crate::entropy::von_neumann_entropy(&rho_b);
        assert!(
            (ha - hb).abs() > 1e-3,
            "CTQW entropies should differ: {ha} vs {hb}"
        );
    }
}
