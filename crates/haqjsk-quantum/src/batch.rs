//! Batched mixture-entropy evaluation for the kernel pair loops.
//!
//! Every QJSK/JTQK pair evaluation reduces to the entropy of one mixture
//! state `(ρ_p + ρ_q)/2` (endpoint entropies are per-graph and cached
//! upstream). [`batch_mixture_entropies`] performs that reduction for a
//! whole tile of pairs in one call: it forms the zero-padded mixtures with
//! exactly the per-pair arithmetic ([`DensityMatrix::zero_pad`] +
//! [`DensityMatrix::mix`]) one solver-lane-width chunk at a time (grouped
//! by mixture dimension, so batches stay full while live memory stays
//! bounded), runs each chunk through the lane-parallel SoA eigensolver
//! ([`haqjsk_linalg::batch_symmetric_eigenvalues`]), and applies the
//! requested entropy functional to each clamped spectrum. Because the
//! batched eigensolver is bit-identical to the scalar values-only driver
//! and every surrounding operation is shared with the per-pair path, the
//! returned entropies are **bit-identical** to evaluating each pair alone.

use crate::density::DensityMatrix;
use crate::entropy::{entropy_of_spectrum, tsallis_entropy_of_spectrum};
use haqjsk_linalg::{batch_symmetric_eigenvalues, max_batch_lanes, LinalgError, Matrix};
use std::collections::BTreeMap;

/// The entropy functional applied to each batched mixture spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixtureEntropy {
    /// Von Neumann entropy `-Σ λ ln λ` (the QJSD core).
    VonNeumann,
    /// Tsallis q-entropy `(1 - Σ λ^q)/(q - 1)` (the JTQK core).
    Tsallis(f64),
}

impl MixtureEntropy {
    fn of_spectrum(self, spectrum: &[f64]) -> f64 {
        match self {
            MixtureEntropy::VonNeumann => entropy_of_spectrum(spectrum),
            MixtureEntropy::Tsallis(q) => tsallis_entropy_of_spectrum(spectrum, q),
        }
    }
}

/// Entropies of the K mixtures `(ρ_k + σ_k)/2`, one per input pair, with
/// the smaller state of each pair zero-padded up to its partner's
/// dimension first.
///
/// The mixtures are assembled with the same operations the per-pair path
/// uses and their spectra come from the batched values-only eigensolver
/// (clamped to `[0, 1]` exactly like [`DensityMatrix::spectrum`]), so each
/// returned entropy is bit-identical to
/// `entropy(pad(ρ).mix(pad(σ)).spectrum())` evaluated pair by pair — the
/// tile-batched Gram paths rely on this to stay byte-identical to the
/// per-pair fallback.
pub fn batch_mixture_entropies(
    pairs: &[(&DensityMatrix, &DensityMatrix)],
    entropy: MixtureEntropy,
) -> Result<Vec<f64>, LinalgError> {
    // Group pair indices by mixture dimension up front (known without
    // forming anything), then materialise only one lane-width chunk of
    // mixtures at a time: full batches for the solver, while live memory
    // stays bounded at the active SIMD path's lane width (16 under
    // AVX-512F, 8 otherwise) no matter how many pairs the caller's tile
    // carries.
    let lane_cap = max_batch_lanes();
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (idx, &(rho, sigma)) in pairs.iter().enumerate() {
        groups
            .entry(rho.dim().max(sigma.dim()))
            .or_default()
            .push(idx);
    }
    let mut out = vec![0.0; pairs.len()];
    for (&n, idxs) in &groups {
        for chunk in idxs.chunks(lane_cap) {
            let mut mixtures: Vec<DensityMatrix> = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                let (rho, sigma) = pairs[idx];
                let mixture = if rho.dim() == n && sigma.dim() == n {
                    rho.mix(sigma)?
                } else if rho.dim() == n {
                    rho.mix(&sigma.zero_pad(n)?)?
                } else {
                    rho.zero_pad(n)?.mix(sigma)?
                };
                mixtures.push(mixture);
            }
            let matrices: Vec<&Matrix> = mixtures.iter().map(DensityMatrix::matrix).collect();
            let spectra = batch_symmetric_eigenvalues(&matrices)?;
            for (&idx, mut spectrum) in chunk.iter().zip(spectra) {
                // Same clamp as `DensityMatrix::spectrum`.
                for l in spectrum.iter_mut() {
                    *l = l.clamp(0.0, 1.0);
                }
                out[idx] = entropy.of_spectrum(&spectrum);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctqw::ctqw_density_infinite;
    use crate::entropy::von_neumann_entropy;
    use haqjsk_graph::generators::{cycle_graph, erdos_renyi, path_graph, star_graph};

    fn states() -> Vec<DensityMatrix> {
        let graphs = vec![
            path_graph(5),
            cycle_graph(6),
            star_graph(7),
            erdos_renyi(6, 0.4, 3),
            path_graph(7),
        ];
        graphs
            .iter()
            .map(|g| ctqw_density_infinite(g).unwrap())
            .collect()
    }

    #[test]
    fn batched_von_neumann_matches_per_pair_bitwise() {
        let rhos = states();
        let mut pairs = Vec::new();
        for i in 0..rhos.len() {
            for j in i..rhos.len() {
                pairs.push((&rhos[i], &rhos[j]));
            }
        }
        let batched = batch_mixture_entropies(&pairs, MixtureEntropy::VonNeumann).unwrap();
        for (k, &(rho, sigma)) in pairs.iter().enumerate() {
            let n = rho.dim().max(sigma.dim());
            let mixture = rho
                .zero_pad(n)
                .unwrap()
                .mix(&sigma.zero_pad(n).unwrap())
                .unwrap();
            let direct = von_neumann_entropy(&mixture);
            assert_eq!(
                batched[k].to_bits(),
                direct.to_bits(),
                "pair {k}: batched mixture entropy must match the per-pair value bit for bit"
            );
        }
    }

    #[test]
    fn batched_tsallis_matches_per_pair_bitwise() {
        let rhos = states();
        let pairs: Vec<_> = (0..rhos.len() - 1)
            .map(|i| (&rhos[i], &rhos[i + 1]))
            .collect();
        for q in [1.0, 2.0, 3.0] {
            let batched = batch_mixture_entropies(&pairs, MixtureEntropy::Tsallis(q)).unwrap();
            for (k, &(rho, sigma)) in pairs.iter().enumerate() {
                let n = rho.dim().max(sigma.dim());
                let mixture = rho
                    .zero_pad(n)
                    .unwrap()
                    .mix(&sigma.zero_pad(n).unwrap())
                    .unwrap();
                let direct = tsallis_entropy_of_spectrum(&mixture.spectrum(), q);
                assert_eq!(batched[k].to_bits(), direct.to_bits(), "pair {k} q={q}");
            }
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(batch_mixture_entropies(&[], MixtureEntropy::VonNeumann)
            .unwrap()
            .is_empty());
    }
}
