//! Continuous-time quantum walks on graphs.
//!
//! Following Sec. II-A of the paper, the CTQW on a graph `G(V, E)` evolves
//! under the Schrödinger equation with the combinatorial Laplacian
//! `L = D - A` as Hamiltonian. With the spectral decomposition `L = Φ Λ Φᵀ`
//! the state at time `t` is `|ψ_t⟩ = Φ e^{-iΛt} Φᵀ |ψ_0⟩` (Eq. 3), the
//! initial amplitudes being the square root of the degree distribution.
//!
//! The object the kernels consume is the **time-averaged mixed density
//! matrix** for `T → ∞` (Eq. 5), which has the closed form
//!
//! ```text
//! ρ_G^∞ = Σ_{λ ∈ Λ̃}  P_λ |ψ_0⟩⟨ψ_0| P_λ
//! ```
//!
//! where `P_λ` projects onto the eigenspace of the distinct eigenvalue `λ`.
//! The cross terms between different eigenvalues average to zero, which is
//! exactly the triple sum of Eq. (5).

use crate::density::DensityMatrix;
use haqjsk_graph::Graph;
use haqjsk_linalg::{cmatrix, symmetric_eigen, CMatrix, Complex, LinalgError, Matrix};

/// Tolerance for grouping numerically equal Laplacian eigenvalues into one
/// eigenspace when evaluating the closed form of Eq. (5).
pub const EIGENSPACE_TOL: f64 = 1e-8;

/// The CTQW initial state used throughout the paper: the square root of the
/// (normalised) degree distribution.
pub fn initial_state(graph: &Graph) -> Vec<f64> {
    graph
        .degree_distribution()
        .into_iter()
        .map(f64::sqrt)
        .collect()
}

/// Initial state for an arbitrary weighted adjacency matrix: square root of
/// the normalised (weighted) degree distribution; uniform when the matrix has
/// no mass.
pub fn initial_state_from_adjacency(adjacency: &Matrix) -> Vec<f64> {
    let n = adjacency.rows();
    let mut degrees = vec![0.0_f64; n];
    for (i, degree) in degrees.iter_mut().enumerate() {
        *degree = adjacency.row(i).iter().map(|x| x.abs()).sum();
    }
    let total: f64 = degrees.iter().sum();
    if total <= 0.0 {
        return vec![(1.0 / n.max(1) as f64).sqrt(); n];
    }
    degrees.into_iter().map(|d| (d / total).sqrt()).collect()
}

/// Laplacian `D - A` of a weighted adjacency matrix (weights contribute to
/// the degree).
pub fn laplacian_of_adjacency(adjacency: &Matrix) -> Result<Matrix, LinalgError> {
    if !adjacency.is_square() {
        return Err(LinalgError::NotSquare {
            rows: adjacency.rows(),
            cols: adjacency.cols(),
        });
    }
    let n = adjacency.rows();
    let mut l = adjacency.scale(-1.0);
    for i in 0..n {
        let degree: f64 = adjacency.row(i).iter().sum();
        l[(i, i)] += degree + adjacency[(i, i)];
    }
    Ok(l)
}

/// Computes the infinite-time averaged CTQW density matrix (Eq. 5) for an
/// arbitrary symmetric weighted adjacency matrix.
///
/// This is the workhorse shared by the baseline QJSK kernels (which evolve
/// the walk on the original graphs) and the HAQJSK(A) kernel (which evolves
/// it on the hierarchical transitive aligned adjacency matrices).
pub fn ctqw_density_from_adjacency(adjacency: &Matrix) -> Result<DensityMatrix, LinalgError> {
    let n = adjacency.rows();
    if n == 0 {
        return Err(LinalgError::InvalidArgument(
            "cannot evolve a CTQW on an empty graph".to_string(),
        ));
    }
    let laplacian = laplacian_of_adjacency(adjacency)?;
    let eig = symmetric_eigen(&laplacian.symmetrize()?)?;
    let psi0 = initial_state_from_adjacency(adjacency);

    // Project the initial state onto the eigenbasis: ψ̄_a = ⟨φ_a | ψ_0⟩.
    let q = &eig.eigenvectors;
    let mut projected = vec![0.0_f64; n];
    for a in 0..n {
        let mut acc = 0.0;
        for u in 0..n {
            acc += q[(u, a)] * psi0[u];
        }
        projected[a] = acc;
    }

    // ρ^∞ = Σ_λ (P_λ ψ0)(P_λ ψ0)ᵀ, with P_λ ψ0 = Σ_{a ∈ B_λ} ψ̄_a φ_a.
    let mut rho = Matrix::zeros(n, n);
    for (_, basis) in eig.eigenspaces(EIGENSPACE_TOL) {
        let mut component = vec![0.0_f64; n];
        for &a in &basis {
            let w = projected[a];
            if w == 0.0 {
                continue;
            }
            for r in 0..n {
                component[r] += w * q[(r, a)];
            }
        }
        for r in 0..n {
            if component[r] == 0.0 {
                continue;
            }
            for c in 0..n {
                rho[(r, c)] += component[r] * component[c];
            }
        }
    }

    DensityMatrix::from_unnormalized(&rho)
}

/// Infinite-time averaged CTQW density matrix of a graph (Eq. 5), using the
/// combinatorial Laplacian as the Hamiltonian and the square root of the
/// degree distribution as the initial state.
pub fn ctqw_density_infinite(graph: &Graph) -> Result<DensityMatrix, LinalgError> {
    ctqw_density_from_adjacency(&graph.adjacency_matrix())
}

/// The (pure) CTQW state at a single time `t`, as a complex amplitude vector
/// `|ψ_t⟩ = Φ e^{-iΛt} Φᵀ |ψ_0⟩`.
pub fn ctqw_state_at(graph: &Graph, t: f64) -> Result<Vec<Complex>, LinalgError> {
    let laplacian = graph.laplacian();
    let eig = symmetric_eigen(&laplacian)?;
    let psi0: Vec<Complex> = initial_state(graph)
        .into_iter()
        .map(Complex::real)
        .collect();
    let q = CMatrix::from_real(&eig.eigenvectors);
    let diag = CMatrix::evolution_diagonal(&eig.eigenvalues, t);
    // U_t = Q e^{-iΛt} Qᵀ
    let u = q.matmul(&diag)?.matmul(&q.conj_transpose())?;
    u.matvec(&psi0)
}

/// Finite-horizon time-averaged density matrix `ρ_G^T = (1/T)∫_0^T |ψ_t⟩⟨ψ_t| dt`,
/// approximated by averaging `steps` equally spaced sample times.
///
/// The exact finite-horizon operator is Hermitian with complex off-diagonal
/// entries; its imaginary parts decay as `T` grows and vanish in the
/// `T → ∞` limit used by the kernels. This function returns the real part
/// re-projected onto a valid density matrix, and exists for analysis,
/// convergence tests and the CTQW-vs-CTRW comparison — the kernels always use
/// [`ctqw_density_infinite`].
pub fn ctqw_density_finite_time(
    graph: &Graph,
    horizon: f64,
    steps: usize,
) -> Result<DensityMatrix, LinalgError> {
    if steps == 0 || horizon <= 0.0 {
        return Err(LinalgError::InvalidArgument(
            "finite-time CTQW needs a positive horizon and at least one step".to_string(),
        ));
    }
    let n = graph.num_vertices();
    let laplacian = graph.laplacian();
    let eig = symmetric_eigen(&laplacian)?;
    let psi0: Vec<Complex> = initial_state(graph)
        .into_iter()
        .map(Complex::real)
        .collect();
    let q = CMatrix::from_real(&eig.eigenvectors);
    let qt = q.conj_transpose();

    let mut accumulated = Matrix::zeros(n, n);
    for step in 0..steps {
        // Midpoint rule over [0, horizon].
        let t = horizon * (step as f64 + 0.5) / steps as f64;
        let diag = CMatrix::evolution_diagonal(&eig.eigenvalues, t);
        let u = q.matmul(&diag)?.matmul(&qt)?;
        let psi_t = u.matvec(&psi0)?;
        let outer = cmatrix::outer_product(&psi_t);
        accumulated += &outer.real_part();
    }
    accumulated = accumulated.scale(1.0 / steps as f64);
    DensityMatrix::from_unnormalized(&accumulated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};

    #[test]
    fn initial_state_is_normalized() {
        let g = path_graph(4);
        let psi = initial_state(&g);
        let norm: f64 = psi.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        // Edgeless graph gets the uniform state.
        let e = Graph::new(3);
        let psi_e = initial_state(&e);
        assert!((psi_e[0] - (1.0 / 3.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn density_matrix_is_valid_state() {
        for g in [
            path_graph(5),
            cycle_graph(6),
            star_graph(7),
            complete_graph(4),
        ] {
            let rho = ctqw_density_infinite(&g).unwrap();
            let m = rho.matrix();
            assert_eq!(rho.dim(), g.num_vertices());
            assert!((m.trace() - 1.0).abs() < 1e-9);
            assert!(m.is_symmetric(1e-9));
            let spectrum = rho.spectrum();
            assert!(spectrum.iter().all(|&l| l >= -1e-9));
        }
    }

    #[test]
    fn density_distinguishes_non_isomorphic_graphs() {
        let a = ctqw_density_infinite(&cycle_graph(6)).unwrap();
        let b = ctqw_density_infinite(&path_graph(6)).unwrap();
        let diff = (a.matrix() - b.matrix()).max_abs();
        assert!(diff > 1e-3, "densities should differ, max diff {diff}");
    }

    #[test]
    fn density_is_permutation_covariant() {
        // Relabelling the graph conjugates the density matrix by the same
        // permutation — the root cause of the QJSK permutation-invariance
        // problem the paper fixes.
        let g = star_graph(5);
        let perm = vec![4, 3, 2, 1, 0];
        let pg = g.permute(&perm).unwrap();
        let rho = ctqw_density_infinite(&g).unwrap();
        let rho_p = ctqw_density_infinite(&pg).unwrap();
        let conjugated = rho.permute(&perm).unwrap();
        assert!((rho_p.matrix() - conjugated.matrix()).max_abs() < 1e-9);
    }

    #[test]
    fn state_evolution_is_norm_preserving() {
        let g = cycle_graph(5);
        for t in [0.0, 0.3, 1.0, 4.0] {
            let psi = ctqw_state_at(&g, t).unwrap();
            let norm: f64 = psi.iter().map(|z| z.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-9, "t={t}: norm {norm}");
        }
    }

    #[test]
    fn state_at_time_zero_is_initial_state() {
        let g = path_graph(4);
        let psi = ctqw_state_at(&g, 0.0).unwrap();
        let expected = initial_state(&g);
        for (z, e) in psi.iter().zip(expected.iter()) {
            assert!((z.re - e).abs() < 1e-9);
            assert!(z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn finite_time_density_converges_to_infinite_limit() {
        let g = path_graph(5);
        let limit = ctqw_density_infinite(&g).unwrap();
        let short = ctqw_density_finite_time(&g, 5.0, 64).unwrap();
        let long = ctqw_density_finite_time(&g, 200.0, 512).unwrap();
        let err_short = (short.matrix() - limit.matrix()).max_abs();
        let err_long = (long.matrix() - limit.matrix()).max_abs();
        assert!(err_long < err_short, "long {err_long} vs short {err_short}");
        assert!(err_long < 0.05, "long-horizon error too large: {err_long}");
    }

    #[test]
    fn finite_time_rejects_bad_arguments() {
        let g = path_graph(3);
        assert!(ctqw_density_finite_time(&g, 0.0, 10).is_err());
        assert!(ctqw_density_finite_time(&g, 1.0, 0).is_err());
    }

    #[test]
    fn weighted_adjacency_accepted() {
        // The aligned adjacency matrices of HAQJSK(A) are weighted; the CTQW
        // must accept arbitrary non-negative symmetric matrices.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 1)] = 2.5;
        a[(1, 0)] = 2.5;
        a[(1, 2)] = 0.5;
        a[(2, 1)] = 0.5;
        let rho = ctqw_density_from_adjacency(&a).unwrap();
        assert!((rho.matrix().trace() - 1.0).abs() < 1e-9);
        assert!(rho.spectrum().iter().all(|&l| l >= -1e-9));
        // All-zero adjacency still produces a valid (uniform-ish) state.
        let z = Matrix::zeros(3, 3);
        let rho_z = ctqw_density_from_adjacency(&z).unwrap();
        assert!((rho_z.matrix().trace() - 1.0).abs() < 1e-9);
        // Empty input is rejected.
        assert!(ctqw_density_from_adjacency(&Matrix::zeros(0, 0)).is_err());
        assert!(laplacian_of_adjacency(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn regular_graph_density_is_uniform_diagonal() {
        // On a vertex-transitive graph with the degree-distribution start
        // state, every vertex carries the same diagonal weight.
        let g = cycle_graph(6);
        let rho = ctqw_density_infinite(&g).unwrap();
        let d = rho.matrix().diagonal();
        for &x in &d {
            assert!((x - d[0]).abs() < 1e-9);
        }
    }
}
