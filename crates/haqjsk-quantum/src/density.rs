//! Density matrices (quantum states).
//!
//! A density matrix is a real symmetric, positive semidefinite matrix with
//! unit trace. [`DensityMatrix`] wraps a [`Matrix`] and enforces/normalises
//! those invariants at construction, because every downstream quantity
//! (entropy, QJSD, kernel values) silently degrades if they are violated.

use haqjsk_linalg::{symmetric_eigenvalues, LinalgError, Matrix};

/// Tolerance used when validating symmetry / trace / positivity.
pub const DENSITY_TOL: f64 = 1e-8;

/// A validated quantum density matrix (real, symmetric, PSD, unit trace).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    matrix: Matrix,
}

impl DensityMatrix {
    /// Wraps a matrix that is already a valid density matrix.
    ///
    /// Returns an error if the matrix is not square/symmetric, has
    /// non-negligible negative eigenvalues, or its trace differs from one by
    /// more than the tolerance.
    pub fn new(matrix: Matrix) -> Result<Self, LinalgError> {
        if !matrix.is_square() {
            return Err(LinalgError::NotSquare {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }
        if !matrix.is_symmetric(DENSITY_TOL) {
            return Err(LinalgError::NotSymmetric {
                max_asymmetry: matrix.asymmetry(),
            });
        }
        let trace = matrix.trace();
        if (trace - 1.0).abs() > 1e-6 {
            return Err(LinalgError::InvalidArgument(format!(
                "density matrix trace is {trace}, expected 1"
            )));
        }
        let min_eigenvalue = symmetric_eigenvalues(&matrix)?
            .first()
            .copied()
            .unwrap_or(0.0);
        if min_eigenvalue < -1e-6 {
            return Err(LinalgError::InvalidArgument(format!(
                "density matrix has negative eigenvalue {min_eigenvalue}"
            )));
        }
        Ok(DensityMatrix { matrix })
    }

    /// Builds a density matrix from an arbitrary symmetric PSD-ish matrix by
    /// symmetrising and re-normalising its trace to one. Matrices with zero
    /// trace map to the maximally mixed state.
    ///
    /// The hierarchical alignment of the paper transforms density matrices by
    /// congruence with correspondence matrices (Eq. 21/25); that operation
    /// preserves PSD-ness but not the trace, so this constructor performs the
    /// re-normalisation the kernel needs.
    pub fn from_unnormalized(matrix: &Matrix) -> Result<Self, LinalgError> {
        let sym = matrix.symmetrize()?;
        let trace = sym.trace();
        let normalized = if trace.abs() < 1e-12 {
            let n = sym.rows().max(1);
            Matrix::identity(n).scale(1.0 / n as f64)
        } else {
            sym.scale(1.0 / trace)
        };
        Ok(DensityMatrix { matrix: normalized })
    }

    /// The maximally mixed state `I / n`.
    pub fn maximally_mixed(n: usize) -> Self {
        DensityMatrix {
            matrix: Matrix::identity(n.max(1)).scale(1.0 / n.max(1) as f64),
        }
    }

    /// A pure state `|ψ⟩⟨ψ|` from a real amplitude vector (normalised first).
    pub fn pure_state(amplitudes: &[f64]) -> Result<Self, LinalgError> {
        if amplitudes.is_empty() {
            return Err(LinalgError::InvalidArgument(
                "pure state needs at least one amplitude".to_string(),
            ));
        }
        let norm = haqjsk_linalg::vector::norm(amplitudes);
        if norm == 0.0 {
            return Err(LinalgError::InvalidArgument(
                "pure state amplitudes are all zero".to_string(),
            ));
        }
        let n = amplitudes.len();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = amplitudes[i] * amplitudes[j] / (norm * norm);
            }
        }
        Ok(DensityMatrix { matrix: m })
    }

    /// Dimension of the state space.
    pub fn dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Borrow the underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Consumes the wrapper and returns the matrix.
    pub fn into_matrix(self) -> Matrix {
        self.matrix
    }

    /// Equal-weight mixture `(ρ + σ)/2` of two states of equal dimension.
    pub fn mix(&self, other: &DensityMatrix) -> Result<DensityMatrix, LinalgError> {
        if self.dim() != other.dim() {
            return Err(LinalgError::ShapeMismatch {
                op: "density mixture",
                left: self.matrix.shape(),
                right: other.matrix.shape(),
            });
        }
        let m = (&self.matrix + &other.matrix).scale(0.5);
        Ok(DensityMatrix { matrix: m })
    }

    /// Zero-pads the state to dimension `n` (embedding the state space into
    /// a larger one) and renormalises nothing: padding with zero rows/columns
    /// keeps trace and PSD-ness intact. Used by the unaligned QJSK kernel to
    /// compare graphs of different sizes.
    pub fn zero_pad(&self, n: usize) -> Result<DensityMatrix, LinalgError> {
        if n < self.dim() {
            return Err(LinalgError::InvalidArgument(format!(
                "cannot pad a {}-dimensional state down to {n}",
                self.dim()
            )));
        }
        Ok(DensityMatrix {
            matrix: self.matrix.zero_pad(n, n)?,
        })
    }

    /// Conjugates the state by a permutation: `ρ' = P ρ Pᵀ` with
    /// `P` the permutation matrix defined by `perm` (row `i` of `P` selects
    /// old index `perm[i]`).
    pub fn permute(&self, perm: &[usize]) -> Result<DensityMatrix, LinalgError> {
        Ok(DensityMatrix {
            matrix: self.matrix.permute_symmetric(perm)?,
        })
    }

    /// Eigenvalues of the state in ascending order, clamped to `[0, 1]` to
    /// absorb numerical noise around zero.
    ///
    /// Routed through the values-only eigen driver: no eigenvector matrix
    /// is ever formed, which is what makes entropy evaluation cheap enough
    /// for the O(N²) kernel pair loops.
    pub fn spectrum(&self) -> Vec<f64> {
        symmetric_eigenvalues(&self.matrix)
            .map(|values| values.into_iter().map(|l| l.clamp(0.0, 1.0)).collect())
            .unwrap_or_default()
    }

    /// Purity `tr(ρ²)`: 1 for pure states, `1/n` for the maximally mixed
    /// state.
    pub fn purity(&self) -> f64 {
        // tr(ρ²) = Σ_ij ρ_ij ρ_ji = Σ_ij ρ_ij² for symmetric ρ.
        self.matrix.data().iter().map(|x| x * x).sum()
    }
}

/// Density matrices are the dominant residents of the engine's budgeted
/// feature caches; their weight is the `n x n` coefficient block plus the
/// wrapper itself.
impl haqjsk_engine::CacheWeight for DensityMatrix {
    fn weight(&self) -> usize {
        std::mem::size_of::<DensityMatrix>() + self.dim() * self.dim() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximally_mixed_state() {
        let rho = DensityMatrix::maximally_mixed(4);
        assert_eq!(rho.dim(), 4);
        assert!((rho.matrix().trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        let spectrum = rho.spectrum();
        assert!(spectrum.iter().all(|&l| (l - 0.25).abs() < 1e-9));
    }

    #[test]
    fn pure_state_has_unit_purity() {
        let rho = DensityMatrix::pure_state(&[1.0, 1.0, 0.0]).unwrap();
        assert!((rho.matrix().trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!(DensityMatrix::pure_state(&[]).is_err());
        assert!(DensityMatrix::pure_state(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn new_validates_inputs() {
        // Valid: maximally mixed.
        assert!(DensityMatrix::new(Matrix::identity(3).scale(1.0 / 3.0)).is_ok());
        // Wrong trace.
        assert!(DensityMatrix::new(Matrix::identity(3)).is_err());
        // Not square.
        assert!(DensityMatrix::new(Matrix::zeros(2, 3)).is_err());
        // Not symmetric.
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 0.5;
        m[(1, 1)] = 0.5;
        m[(0, 1)] = 0.3;
        assert!(DensityMatrix::new(m).is_err());
        // Negative eigenvalue: diag(1.5, -0.5) has trace 1 but is not PSD.
        let neg = Matrix::from_diag(&[1.5, -0.5]);
        assert!(DensityMatrix::new(neg).is_err());
    }

    #[test]
    fn from_unnormalized_rescales_trace() {
        let m = Matrix::from_diag(&[2.0, 2.0]);
        let rho = DensityMatrix::from_unnormalized(&m).unwrap();
        assert!((rho.matrix().trace() - 1.0).abs() < 1e-12);
        // Zero-trace input falls back to the maximally mixed state.
        let z = Matrix::zeros(3, 3);
        let rho_z = DensityMatrix::from_unnormalized(&z).unwrap();
        assert!((rho_z.matrix()[(0, 0)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mixing_preserves_trace_and_dimension() {
        let a = DensityMatrix::pure_state(&[1.0, 0.0]).unwrap();
        let b = DensityMatrix::pure_state(&[0.0, 1.0]).unwrap();
        let m = a.mix(&b).unwrap();
        assert!((m.matrix().trace() - 1.0).abs() < 1e-12);
        assert!((m.purity() - 0.5).abs() < 1e-12);
        let c = DensityMatrix::maximally_mixed(3);
        assert!(a.mix(&c).is_err());
    }

    #[test]
    fn zero_pad_embeds_state() {
        let a = DensityMatrix::pure_state(&[1.0, 1.0]).unwrap();
        let padded = a.zero_pad(4).unwrap();
        assert_eq!(padded.dim(), 4);
        assert!((padded.matrix().trace() - 1.0).abs() < 1e-12);
        assert!(a.zero_pad(1).is_err());
    }

    #[test]
    fn permutation_preserves_spectrum_and_purity() {
        let rho = DensityMatrix::from_unnormalized(
            &Matrix::from_rows(&[
                vec![0.6, 0.2, 0.0],
                vec![0.2, 0.3, 0.1],
                vec![0.0, 0.1, 0.1],
            ])
            .unwrap(),
        )
        .unwrap();
        let p = rho.permute(&[2, 0, 1]).unwrap();
        assert!((p.purity() - rho.purity()).abs() < 1e-12);
        let s1 = rho.spectrum();
        let s2 = p.spectrum();
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn into_matrix_returns_inner() {
        let rho = DensityMatrix::maximally_mixed(2);
        let m = rho.into_matrix();
        assert_eq!(m.shape(), (2, 2));
    }
}
