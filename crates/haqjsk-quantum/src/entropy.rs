//! Von Neumann entropy of quantum states (Eq. 6–7 of the paper).

use crate::density::DensityMatrix;
use haqjsk_linalg::Matrix;

/// Von Neumann entropy `H_N(ρ) = -tr(ρ log ρ) = -Σ_j λ_j ln λ_j` of a
/// density matrix, computed from its spectrum. Zero eigenvalues contribute
/// zero (the `x ln x → 0` limit).
pub fn von_neumann_entropy(rho: &DensityMatrix) -> f64 {
    entropy_of_spectrum(&rho.spectrum())
}

/// Von Neumann entropy of an *unnormalised* symmetric PSD matrix: the matrix
/// is first renormalised to unit trace. Convenience used by the kernels when
/// working with raw matrices.
pub fn von_neumann_entropy_of_matrix(matrix: &Matrix) -> f64 {
    match DensityMatrix::from_unnormalized(matrix) {
        Ok(rho) => von_neumann_entropy(&rho),
        Err(_) => 0.0,
    }
}

/// Entropy of a list of eigenvalues interpreted as a probability
/// distribution; negative values (numerical noise) are clamped to zero.
pub fn entropy_of_spectrum(spectrum: &[f64]) -> f64 {
    let mut h = 0.0;
    for &l in spectrum {
        if l > 1e-15 {
            h -= l * l.ln();
        }
    }
    h
}

/// Tsallis q-entropy of a probability spectrum:
/// `S_q(p) = (1 - Σ_i p_i^q) / (q - 1)`, recovering the von Neumann /
/// Shannon entropy as `q → 1`. Like [`entropy_of_spectrum`], exact-zero
/// eigenvalues contribute nothing, so the value is invariant under the
/// zero-padding the pairwise kernels apply.
pub fn tsallis_entropy_of_spectrum(spectrum: &[f64], q: f64) -> f64 {
    if (q - 1.0).abs() < 1e-9 {
        return spectrum
            .iter()
            .filter(|&&p| p > 1e-15)
            .map(|&p| -p * p.ln())
            .sum();
    }
    let sum_q: f64 = spectrum
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p.powf(q))
        .sum();
    (1.0 - sum_q) / (q - 1.0)
}

/// Maximum attainable von Neumann entropy for an `n`-dimensional state
/// (`ln n`, achieved by the maximally mixed state).
pub fn max_entropy(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        (n as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_linalg::Matrix;

    #[test]
    fn pure_state_has_zero_entropy() {
        let rho = DensityMatrix::pure_state(&[1.0, 2.0, 2.0]).unwrap();
        assert!(von_neumann_entropy(&rho).abs() < 1e-9);
    }

    #[test]
    fn maximally_mixed_state_has_max_entropy() {
        for n in [2usize, 3, 5, 8] {
            let rho = DensityMatrix::maximally_mixed(n);
            let h = von_neumann_entropy(&rho);
            assert!((h - max_entropy(n)).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn entropy_is_between_zero_and_log_n() {
        let m = Matrix::from_rows(&[
            vec![0.5, 0.2, 0.0],
            vec![0.2, 0.3, 0.1],
            vec![0.0, 0.1, 0.2],
        ])
        .unwrap();
        let rho = DensityMatrix::from_unnormalized(&m).unwrap();
        let h = von_neumann_entropy(&rho);
        assert!(h >= 0.0);
        assert!(h <= max_entropy(3) + 1e-12);
    }

    #[test]
    fn entropy_of_two_level_mixture() {
        // diag(p, 1-p) has entropy -p ln p - (1-p) ln (1-p).
        let p = 0.3;
        let m = Matrix::from_diag(&[p, 1.0 - p]);
        let rho = DensityMatrix::new(m).unwrap();
        let expected = -p * p.ln() - (1.0 - p) * (1.0 - p).ln();
        assert!((von_neumann_entropy(&rho) - expected).abs() < 1e-9);
    }

    #[test]
    fn matrix_helper_renormalises() {
        let m = Matrix::identity(4).scale(3.0);
        let h = von_neumann_entropy_of_matrix(&m);
        assert!((h - max_entropy(4)).abs() < 1e-9);
        // A non-square matrix maps to zero rather than panicking.
        assert_eq!(von_neumann_entropy_of_matrix(&Matrix::zeros(2, 3)), 0.0);
    }

    #[test]
    fn spectrum_entropy_clamps_noise() {
        let h = entropy_of_spectrum(&[1.0, -1e-18, 0.0]);
        assert_eq!(h, 0.0);
        assert_eq!(max_entropy(0), 0.0);
    }
}
