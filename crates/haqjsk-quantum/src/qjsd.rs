//! Quantum Jensen–Shannon divergence (Eq. 8 of the paper).
//!
//! For two density matrices `ρ` and `σ` of equal dimension the QJSD is
//!
//! ```text
//! D_QJS(ρ, σ) = H_N((ρ + σ)/2) - H_N(ρ)/2 - H_N(σ)/2
//! ```
//!
//! It is symmetric, non-negative and bounded by `ln 2`. When the states live
//! in spaces of different dimension (graphs of different sizes), the smaller
//! one is zero-padded first, following the paper's prescription for the
//! unaligned QJSK kernel.

use crate::density::DensityMatrix;
use crate::entropy::von_neumann_entropy;
use haqjsk_linalg::LinalgError;

/// Upper bound of the QJSD between any two states (`ln 2`).
pub const QJSD_MAX: f64 = std::f64::consts::LN_2;

/// QJSD between two density matrices of equal dimension.
pub fn qjsd(rho: &DensityMatrix, sigma: &DensityMatrix) -> Result<f64, LinalgError> {
    qjsd_with_entropies(
        rho,
        sigma,
        von_neumann_entropy(rho),
        von_neumann_entropy(sigma),
    )
}

/// QJSD between two density matrices whose endpoint von Neumann entropies
/// `H_N(ρ)` and `H_N(σ)` are already known.
///
/// The endpoint entropies depend only on the individual states, so Gram
/// computations hoist them out of the O(N²) pair loop and pay a **single**
/// values-only eigenvalue solve per pair — the mixture's. Note that the
/// entropy is invariant under zero-padding (zero eigenvalues contribute
/// nothing), so an entropy computed on the unpadded state can be supplied
/// for its padded version.
pub fn qjsd_with_entropies(
    rho: &DensityMatrix,
    sigma: &DensityMatrix,
    h_rho: f64,
    h_sigma: f64,
) -> Result<f64, LinalgError> {
    let mixture = rho.mix(sigma)?;
    Ok(qjsd_from_entropies(
        von_neumann_entropy(&mixture),
        h_rho,
        h_sigma,
    ))
}

/// The QJSD expression once all three entropies are known:
/// `H_N((ρ+σ)/2) - H_N(ρ)/2 - H_N(σ)/2`, clamped to `[0, ln 2]` to absorb
/// eigenvalue noise. Both the per-pair path ([`qjsd_with_entropies`]) and
/// the tile-batched path ([`crate::batch_mixture_entropies`] consumers)
/// reduce through this one function so their values stay bit-identical.
pub fn qjsd_from_entropies(h_mixture: f64, h_rho: f64, h_sigma: f64) -> f64 {
    let d = h_mixture - 0.5 * h_rho - 0.5 * h_sigma;
    // Clamp the tiny negative values that eigenvalue noise can produce.
    d.clamp(0.0, QJSD_MAX)
}

/// QJSD between two density matrices of possibly different dimensions: the
/// smaller state is zero-padded to the dimension of the larger one before the
/// divergence is evaluated (the unaligned composite-state construction of
/// Sec. II-D).
pub fn qjsd_padded(rho: &DensityMatrix, sigma: &DensityMatrix) -> Result<f64, LinalgError> {
    let n = rho.dim().max(sigma.dim());
    let rho_p = rho.zero_pad(n)?;
    let sigma_p = sigma.zero_pad(n)?;
    qjsd(&rho_p, &sigma_p)
}

/// Square root of the QJSD, which is known to be a metric between quantum
/// states (Lamberti et al., Phys. Rev. A 77, 052311). Exposed for analyses
/// that need a distance rather than a divergence.
pub fn qjsd_distance(rho: &DensityMatrix, sigma: &DensityMatrix) -> Result<f64, LinalgError> {
    Ok(qjsd(rho, sigma)?.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use haqjsk_linalg::Matrix;

    #[test]
    fn qjsd_of_identical_states_is_zero() {
        let rho = DensityMatrix::maximally_mixed(4);
        assert!(qjsd(&rho, &rho).unwrap().abs() < 1e-9);
        let pure = DensityMatrix::pure_state(&[1.0, 1.0, 0.0]).unwrap();
        assert!(qjsd(&pure, &pure).unwrap().abs() < 1e-9);
    }

    #[test]
    fn qjsd_of_orthogonal_pure_states_is_ln2() {
        let a = DensityMatrix::pure_state(&[1.0, 0.0]).unwrap();
        let b = DensityMatrix::pure_state(&[0.0, 1.0]).unwrap();
        let d = qjsd(&a, &b).unwrap();
        assert!((d - QJSD_MAX).abs() < 1e-9);
    }

    #[test]
    fn qjsd_is_symmetric_and_bounded() {
        let a = DensityMatrix::from_unnormalized(
            &Matrix::from_rows(&[vec![0.7, 0.1], vec![0.1, 0.3]]).unwrap(),
        )
        .unwrap();
        let b = DensityMatrix::from_unnormalized(
            &Matrix::from_rows(&[vec![0.2, 0.05], vec![0.05, 0.8]]).unwrap(),
        )
        .unwrap();
        let dab = qjsd(&a, &b).unwrap();
        let dba = qjsd(&b, &a).unwrap();
        assert!((dab - dba).abs() < 1e-12);
        assert!(dab >= 0.0);
        assert!(dab <= QJSD_MAX + 1e-12);
        assert!(dab > 0.0);
    }

    #[test]
    fn qjsd_dimension_mismatch_is_error_but_padded_works() {
        let a = DensityMatrix::maximally_mixed(2);
        let b = DensityMatrix::maximally_mixed(3);
        assert!(qjsd(&a, &b).is_err());
        let d = qjsd_padded(&a, &b).unwrap();
        assert!(d > 0.0);
        assert!(d <= QJSD_MAX + 1e-12);
        // Same-dimension inputs go through padding unchanged.
        let c = DensityMatrix::maximally_mixed(2);
        assert!((qjsd_padded(&a, &c).unwrap() - qjsd(&a, &c).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn qjsd_distance_is_sqrt() {
        let a = DensityMatrix::pure_state(&[1.0, 0.0]).unwrap();
        let b = DensityMatrix::pure_state(&[0.0, 1.0]).unwrap();
        let d = qjsd_distance(&a, &b).unwrap();
        assert!((d - QJSD_MAX.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn qjsd_increases_with_state_separation() {
        // Mixing a pure state towards the maximally mixed state decreases the
        // divergence from the mixed state.
        let mixed = DensityMatrix::maximally_mixed(2);
        let pure = DensityMatrix::pure_state(&[1.0, 0.0]).unwrap();
        let halfway = pure.mix(&mixed).unwrap();
        let d_pure = qjsd(&pure, &mixed).unwrap();
        let d_half = qjsd(&halfway, &mixed).unwrap();
        assert!(d_half < d_pure);
    }
}
