//! Property-based tests for the linear-algebra substrate.

use haqjsk_linalg::{
    available_simd_paths, batch_symmetric_eigenvalues, hungarian, set_simd_path, symmetric_eigen,
    symmetric_eigenvalues, BatchEigenWorkspace, EigenWorkspace, Matrix,
};
use proptest::prelude::*;

/// Restores the process-global SIMD override when dropped, so a failing
/// assertion inside a forced-path test cannot leak a forced path into the
/// other tests of this binary.
struct SimdOverrideGuard;

impl Drop for SimdOverrideGuard {
    fn drop(&mut self) {
        set_simd_path(None).expect("clearing the SIMD override never fails");
    }
}

/// The pre-blocking reference product: plain i-k-j loop, no row blocks.
fn matmul_unblocked(a: &Matrix, b: &Matrix) -> Matrix {
    let (rows, inner, cols) = (a.rows(), a.cols(), b.cols());
    assert_eq!(inner, b.rows());
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for k in 0..inner {
            let v = a[(i, k)];
            if v == 0.0 {
                continue;
            }
            for j in 0..cols {
                out[(i, j)] += v * b[(k, j)];
            }
        }
    }
    out
}

/// Strategy producing small random symmetric matrices.
fn symmetric_matrix(max_n: usize) -> impl Strategy<Value = Matrix> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-5.0..5.0_f64, n * n).prop_map(move |data| {
            let raw = Matrix::from_vec(n, n, data).unwrap();
            raw.symmetrize().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The eigendecomposition must reconstruct the original matrix.
    #[test]
    fn eigen_reconstruction(m in symmetric_matrix(8)) {
        let eig = symmetric_eigen(&m).unwrap();
        let rec = eig.reconstruct();
        prop_assert!((&rec - &m).max_abs() < 1e-7);
    }

    /// Eigenvectors form an orthonormal basis.
    #[test]
    fn eigenvectors_orthonormal(m in symmetric_matrix(8)) {
        let eig = symmetric_eigen(&m).unwrap();
        let q = &eig.eigenvectors;
        let qtq = q.transpose().matmul(q).unwrap();
        prop_assert!((&qtq - &Matrix::identity(m.rows())).max_abs() < 1e-8);
    }

    /// The sum of eigenvalues equals the trace; eigenvalues come out sorted.
    #[test]
    fn eigenvalues_trace_and_order(m in symmetric_matrix(8)) {
        let eig = symmetric_eigen(&m).unwrap();
        let sum: f64 = eig.eigenvalues.iter().sum();
        prop_assert!((sum - m.trace()).abs() < 1e-8);
        for w in eig.eigenvalues.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    /// The values-only eigen driver is bit-identical to the eigenvalues of
    /// the full decomposition: the eigenvector operations it skips never
    /// feed back into the `d`/`e` recurrences.
    #[test]
    fn values_only_eigenvalues_bit_equal_full(m in symmetric_matrix(10)) {
        let full = symmetric_eigen(&m).unwrap().eigenvalues;
        let values = symmetric_eigenvalues(&m).unwrap();
        let mut ws = EigenWorkspace::new();
        let ws_values = ws.eigenvalues(&m).unwrap();
        prop_assert_eq!(
            full.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            values.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            ws_values.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The lane-parallel SoA batch solver is bit-identical to the scalar
    /// values-only driver on every matrix of the batch, across mixed batch
    /// sizes and mixed dimension classes — including dimension classes of
    /// one matrix, which take the scalar straggler fallback.
    #[test]
    fn batched_eigenvalues_bit_equal_scalar(
        dims in proptest::collection::vec(1usize..11, 1..19),
        seed in 0u64..u64::MAX,
    ) {
        let mats: Vec<Matrix> = dims
            .iter()
            .enumerate()
            .map(|(k, &n)| {
                // Deterministic fill; occasional exact-zero rows exercise
                // the masked Householder path.
                let mut state = seed.wrapping_add(k as u64);
                let mut next = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                };
                let mut m = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in i..n {
                        let v = next();
                        m[(i, j)] = v;
                        m[(j, i)] = v;
                    }
                }
                if n > 2 && k % 3 == 0 {
                    let z = k % n;
                    for t in 0..n {
                        m[(z, t)] = 0.0;
                        m[(t, z)] = 0.0;
                    }
                }
                m
            })
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let batch = batch_symmetric_eigenvalues(&refs).unwrap();
        let mut ws = BatchEigenWorkspace::new();
        let ws_batch = ws.eigenvalues(&refs).unwrap();
        for (k, m) in mats.iter().enumerate() {
            let scalar = symmetric_eigenvalues(m).unwrap();
            prop_assert_eq!(
                batch[k].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "matrix {} of dim {}", k, m.rows()
            );
            prop_assert_eq!(
                ws_batch[k].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "workspace path, matrix {}", k
            );
        }
    }

    /// Every compiled SIMD path produces eigenvalues bit-identical to the
    /// scalar values-only driver, across mixed batch sizes, mixed dimension
    /// classes and straggler chunks narrower than the vector width. The
    /// scalar reference is computed first (path-independent), then each
    /// available ISA is forced via the process-global override and compared
    /// bit for bit.
    #[test]
    fn forced_simd_paths_bit_equal_scalar(
        dims in proptest::collection::vec(1usize..11, 1..40),
        seed in 0u64..u64::MAX,
    ) {
        let mats: Vec<Matrix> = dims
            .iter()
            .enumerate()
            .map(|(k, &n)| {
                // Same deterministic fill as the scalar batch property,
                // including occasional exact-zero rows for the masked
                // Householder skip path.
                let mut state = seed.wrapping_add(k as u64);
                let mut next = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
                };
                let mut m = Matrix::zeros(n, n);
                for i in 0..n {
                    for j in i..n {
                        let v = next();
                        m[(i, j)] = v;
                        m[(j, i)] = v;
                    }
                }
                if n > 2 && k % 3 == 0 {
                    let z = k % n;
                    for t in 0..n {
                        m[(z, t)] = 0.0;
                        m[(t, z)] = 0.0;
                    }
                }
                m
            })
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let scalar: Vec<Vec<u64>> = mats
            .iter()
            .map(|m| {
                symmetric_eigenvalues(m)
                    .unwrap()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            })
            .collect();
        let _guard = SimdOverrideGuard;
        for path in available_simd_paths() {
            set_simd_path(Some(path)).unwrap();
            let forced = batch_symmetric_eigenvalues(&refs).unwrap();
            for (k, values) in forced.iter().enumerate() {
                prop_assert_eq!(
                    values.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    scalar[k].clone(),
                    "path {} drifted on matrix {} of dim {}",
                    path.label(),
                    k,
                    mats[k].rows()
                );
            }
        }
    }

    /// The cache-blocked matmul is exactly the naive (unblocked i-k-j)
    /// product: blocking changes the traversal, not the arithmetic.
    #[test]
    fn blocked_matmul_equals_naive_product_exactly(
        rows in 1usize..24,
        inner in 1usize..24,
        cols in 1usize..24,
        seed in 0u64..u64::MAX,
    ) {
        // Deterministic fill from the seed, with a sprinkling of exact
        // zeros so the zero-skip path is exercised.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if state % 7 == 0 { 0.0 } else { v }
        };
        let a = Matrix::from_fn(rows, inner, |_, _| next());
        let b = Matrix::from_fn(inner, cols, |_, _| next());
        let blocked = a.matmul(&b).unwrap();
        let naive = matmul_unblocked(&a, &b);
        prop_assert_eq!(blocked, naive);
    }

    /// Matrix multiplication is associative on conformable random inputs.
    #[test]
    fn matmul_associative(
        a in proptest::collection::vec(-3.0..3.0_f64, 12),
        b in proptest::collection::vec(-3.0..3.0_f64, 12),
        c in proptest::collection::vec(-3.0..3.0_f64, 9),
    ) {
        let ma = Matrix::from_vec(3, 4, a).unwrap();
        let mb = Matrix::from_vec(4, 3, b).unwrap();
        let mc = Matrix::from_vec(3, 3, c).unwrap();
        let left = ma.matmul(&mb).unwrap().matmul(&mc).unwrap();
        let right = ma.matmul(&mb.matmul(&mc).unwrap()).unwrap();
        prop_assert!((&left - &right).max_abs() < 1e-9);
    }

    /// Transpose reverses multiplication order: (AB)^T = B^T A^T.
    #[test]
    fn transpose_of_product(
        a in proptest::collection::vec(-3.0..3.0_f64, 12),
        b in proptest::collection::vec(-3.0..3.0_f64, 12),
    ) {
        let ma = Matrix::from_vec(3, 4, a).unwrap();
        let mb = Matrix::from_vec(4, 3, b).unwrap();
        let lhs = ma.matmul(&mb).unwrap().transpose();
        let rhs = mb.transpose().matmul(&ma.transpose()).unwrap();
        prop_assert!((&lhs - &rhs).max_abs() < 1e-10);
    }

    /// Hungarian result is a valid permutation and never beats a greedy
    /// lower bound of per-row minima.
    #[test]
    fn hungarian_is_valid_and_bounded(
        n in 1usize..6,
        raw in proptest::collection::vec(0.0..10.0_f64, 36),
    ) {
        let cost: Vec<f64> = raw.into_iter().take(n * n).collect();
        prop_assume!(cost.len() == n * n);
        let (assignment, total) = hungarian(&cost, n);
        // Valid permutation.
        let mut seen = vec![false; n];
        for &j in &assignment {
            prop_assert!(j < n);
            prop_assert!(!seen[j]);
            seen[j] = true;
        }
        // Lower bound: sum of row minima.
        let lower: f64 = (0..n)
            .map(|i| cost[i * n..(i + 1) * n].iter().copied().fold(f64::INFINITY, f64::min))
            .sum();
        prop_assert!(total >= lower - 1e-9);
        // Upper bound: identity assignment.
        let upper: f64 = (0..n).map(|i| cost[i * n + i]).sum();
        prop_assert!(total <= upper + 1e-9);
    }

    /// Permuting rows/columns of a symmetric matrix preserves its spectrum.
    #[test]
    fn permutation_preserves_spectrum(m in symmetric_matrix(7), seed in 0u64..1000) {
        let n = m.rows();
        // Build a deterministic permutation from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let pm = m.permute_symmetric(&perm).unwrap();
        let e1 = symmetric_eigen(&m).unwrap().eigenvalues;
        let e2 = symmetric_eigen(&pm).unwrap().eigenvalues;
        for (a, b) in e1.iter().zip(e2.iter()) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }
}
