//! Minimal complex-number type used by the finite-time CTQW evolution.
//!
//! The paper's closed-form, time-averaged density matrix (Eq. 5) is real, but
//! the underlying walk state `|ψ_t⟩ = Φᵀ e^{-iΛt} Φ |ψ₀⟩` (Eq. 3) is complex.
//! [`Complex`] supports the handful of operations needed to simulate that
//! evolution directly, which the quantum crate uses both for finite-horizon
//! density matrices and for tests that validate the closed form against a
//! numerically integrated one.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number `re + i·im` with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// `e^{iθ}` on the unit circle; the building block of `e^{-iΛt}`.
    pub fn cis(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Complex {
        let r = self.re.exp();
        Complex::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    /// Whether both components are within `tol` of another value.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Complex::new(4.0, 1.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let q = (a * b) / b;
        assert!(q.approx_eq(a, 1e-12));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), 1e-12));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..8 {
            let theta = k as f64 * std::f64::consts::PI / 4.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
            assert!(
                (z.arg() - theta).abs() < 1e-12
                    || (z.arg() - theta + 2.0 * std::f64::consts::PI).abs() < 1e-9
                    || (z.arg() - theta - 2.0 * std::f64::consts::PI).abs() < 1e-9
            );
        }
    }

    #[test]
    fn exp_matches_euler_formula() {
        let z = Complex::new(0.0, std::f64::consts::PI);
        // e^{i pi} = -1
        assert!(z.exp().approx_eq(Complex::real(-1.0), 1e-12));
        let w = Complex::new(1.0, 0.0);
        assert!(w.exp().approx_eq(Complex::real(std::f64::consts::E), 1e-12));
    }

    #[test]
    fn constants_and_conversion() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
        let z: Complex = 2.5.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
        assert_eq!(z * 2.0, Complex::new(5.0, 0.0));
    }
}
