//! Small statistical helpers shared by the clustering, evaluation and
//! benchmarking code (means, variances, standard errors, histograms).

/// Sample mean; `0.0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (divides by `n`); `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n - 1`); `0.0` for fewer than two samples.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Standard error of the mean, the ± value the paper reports next to every
/// accuracy (`std dev / sqrt(n)`).
pub fn standard_error(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Minimum value; `None` for empty input.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum value; `None` for empty input.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Histogram of values into `bins` equal-width bins over `[lo, hi]`.
/// Values outside the range are clamped into the first/last bin.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let mut idx = ((x - lo) / width).floor() as isize;
        if idx < 0 {
            idx = 0;
        }
        if idx as usize >= bins {
            idx = bins as isize - 1;
        }
        counts[idx as usize] += 1;
    }
    counts
}

/// Pearson correlation coefficient between two equal-length samples; `0.0`
/// when either sample is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx == 0.0 || dy == 0.0 {
        0.0
    } else {
        num / (dx.sqrt() * dy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(standard_error(&[1.0]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn standard_error_shrinks_with_samples() {
        let small = [1.0, 2.0, 3.0, 4.0];
        let large: Vec<f64> = small.iter().cycle().take(64).copied().collect();
        assert!(standard_error(&large) < standard_error(&small));
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(7.0));
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [0.1, 0.2, 0.6, 0.9, -5.0, 5.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h.iter().sum::<usize>(), xs.len());
        assert_eq!(h[0], 3); // 0.1, 0.2, -5.0 (clamped)
        assert_eq!(h[1], 3); // 0.6, 0.9, 5.0 (clamped)
    }

    #[test]
    fn pearson_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
        let constant = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(pearson(&xs, &constant), 0.0);
    }
}
