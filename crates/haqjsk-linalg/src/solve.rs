//! Linear solvers, determinants and inverses via LU decomposition with
//! partial pivoting.
//!
//! These are support routines: the GCN comparison model and a handful of
//! tests need `solve`/`inverse`, while `determinant` is used by sanity checks
//! on kernel matrices.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// LU decomposition with partial pivoting: `P A = L U`.
///
/// Returned as a packed matrix (L below the diagonal with implicit unit
/// diagonal, U on and above), the pivot permutation, and the permutation sign.
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Matrix,
    pivots: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Computes the decomposition. Fails for rectangular or singular input.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut pivots: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: pick the row with the largest magnitude entry.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for row in (col + 1)..n {
                let v = lu[(row, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-14 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                for k in 0..n {
                    let tmp = lu[(col, k)];
                    lu[(col, k)] = lu[(pivot_row, k)];
                    lu[(pivot_row, k)] = tmp;
                }
                pivots.swap(col, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(col, col)];
            for row in (col + 1)..n {
                let factor = lu[(row, col)] / pivot;
                lu[(row, col)] = factor;
                for k in (col + 1)..n {
                    let delta = factor * lu[(col, k)];
                    lu[(row, k)] -= delta;
                }
            }
        }

        Ok(Lu {
            packed: lu,
            pivots,
            sign,
        })
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.sign;
        for i in 0..n {
            det *= self.packed[(i, i)];
        }
        det
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the pivot permutation to b.
        let mut x: Vec<f64> = self.pivots.iter().map(|&p| b[p]).collect();
        // Forward substitution with the unit-diagonal L.
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.packed[(i, k)] * x[k];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.packed[(i, k)] * x[k];
            }
            x[i] /= self.packed[(i, i)];
        }
        Ok(x)
    }

    /// Inverse of the original matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for col in 0..n {
            let mut e = vec![0.0; n];
            e[col] = 1.0;
            let x = self.solve(&e)?;
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
        }
        Ok(inv)
    }
}

/// Solves the linear system `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve(b)
}

/// Determinant of a square matrix (0 reported as an explicit value only for
/// matrices that are numerically non-singular enough to decompose; genuinely
/// singular matrices return `Ok(0.0)`).
pub fn determinant(a: &Matrix) -> Result<f64> {
    match Lu::new(a) {
        Ok(lu) => Ok(lu.determinant()),
        Err(LinalgError::Singular) => Ok(0.0),
        Err(e) => Err(e),
    }
}

/// Inverse of a square, non-singular matrix.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_matching_rhs() {
        let a = Matrix::identity(3);
        assert!(solve(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!((determinant(&a).unwrap() - (-2.0)).abs() < 1e-12);
        assert!((determinant(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-12);
        // Singular matrix reports zero determinant.
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(determinant(&s).unwrap(), 0.0);
    }

    #[test]
    fn determinant_tracks_row_swaps() {
        // A permutation matrix with a single swap has determinant -1.
        let p = Matrix::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert!((determinant(&p).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![4.0, 7.0, 2.0],
            vec![3.0, 6.0, 1.0],
            vec![2.0, 5.0, 3.0],
        ])
        .unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &Matrix::identity(3)).max_abs() < 1e-10);
    }

    #[test]
    fn inverse_of_singular_fails() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(inverse(&s), Err(LinalgError::Singular)));
    }

    #[test]
    fn rectangular_rejected() {
        let r = Matrix::zeros(2, 3);
        assert!(Lu::new(&r).is_err());
    }

    #[test]
    fn lu_solves_against_multiple_rhs_consistently() {
        let a = Matrix::from_rows(&[
            vec![10.0, -7.0, 0.0],
            vec![-3.0, 2.0, 6.0],
            vec![5.0, -1.0, 5.0],
        ])
        .unwrap();
        let lu = Lu::new(&a).unwrap();
        for rhs in [[7.0, 4.0, 6.0], [1.0, 0.0, 0.0], [0.0, -2.0, 9.0]] {
            let x = lu.solve(&rhs).unwrap();
            let back = a.matvec(&x).unwrap();
            for (b, r) in back.iter().zip(rhs.iter()) {
                assert!((b - r).abs() < 1e-10);
            }
        }
    }
}
