//! Batched, structure-of-arrays values-only symmetric eigensolver.
//!
//! The quantum-kernel Gram loops reduce every pair to **one** values-only
//! eigenvalue solve of a mixture matrix (see [`crate::eigen`]). Executing
//! those solves one at a time leaves all data-level parallelism on the
//! table: each solve walks its own row-major matrix through `tred2`/`tqli`
//! with strictly sequential dependencies. This module runs **K solves at
//! once** instead:
//!
//! * the K same-dimension matrices are transposed into a
//!   **structure-of-arrays** (SoA) layout — element `(i, j)` of all K
//!   matrices sits contiguously — so every inner loop of the Householder
//!   reduction becomes a `f64` array loop over lanes that maps directly
//!   onto vector registers: the hot phases dispatch to the explicit-SIMD
//!   kernels of [`crate::simd`] (AVX-512F / AVX2 / NEON, picked at runtime
//!   and overridable via `HAQJSK_SIMD`), with the plain lane loops in this
//!   module as the always-compiled scalar fallback,
//! * the Householder reduction and the implicit-QL sweep run
//!   **lane-parallel**: all lanes advance through the same loop structure,
//!   but every data-dependent decision (the zero-scale skip, the QL split
//!   point, the shift sequence, per-eigenvalue iteration counts) is taken
//!   **per lane**, never fused across the batch,
//! * mixed-dimension batches are chunked by dimension class (each chunk
//!   holds up to [`MAX_BATCH_LANES`] matrices of one size), and straggler
//!   chunks of a single matrix fall back to the scalar
//!   [`EigenWorkspace`](crate::EigenWorkspace) path.
//!
//! Because each lane executes exactly the scalar driver's arithmetic — same
//! operations, same order, same `f64` semantics (no fast-math, no fusion) —
//! the per-matrix eigenvalues are **bit-identical** to
//! [`symmetric_eigenvalues`](crate::symmetric_eigenvalues); the property
//! tests assert this across mixed batch shapes. The payoff is in the
//! `O(n³)` Householder phase, whose hot loops vectorize across lanes; the
//! QL sweep is `O(n²)` and dominated by per-lane `hypot` calls, so it
//! mostly benefits from the amortised bookkeeping.
//!
//! This is the CPU half of the roadmap's batched-eigendecomposition
//! backend: a GPU backend replaces the lane loops with device kernels
//! behind the same batch entry point.

use crate::eigen::{
    check_symmetric, pythag, EigenWorkspace, MAX_QL_ITERATIONS, WORKSPACE_DIM_LIMIT,
};
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::simd::{self, SimdPath};
use crate::Result;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Hard cap on matrices solved by one SoA kernel invocation (sizes the
/// per-lane state arrays). The *effective* chunk width is per dispatch
/// path — [`max_batch_lanes`](crate::simd::max_batch_lanes): 16 under
/// AVX-512F (two ZMM registers per SoA element row), 8 for AVX2 / NEON /
/// scalar (the pre-SIMD width, which keeps the SoA working set of
/// graph-sized matrices inside L2).
pub const MAX_BATCH_LANES: usize = 16;

/// Batched solves are counted process-wide so benchmarks and serving stats
/// can report how much of the eigen work actually runs batched.
static BATCHED_CALLS: AtomicU64 = AtomicU64::new(0);
static BATCHED_MATRICES: AtomicU64 = AtomicU64::new(0);
static SCALAR_FALLBACKS: AtomicU64 = AtomicU64::new(0);
/// SoA kernel invocations by dispatched SIMD path, indexed by
/// [`SimdPath::index`] (scalar, avx2, avx512, neon).
static PATH_CALLS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Cumulative counters of the batched eigensolver (process-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSolveStats {
    /// SoA kernel invocations (one per same-dimension chunk of ≥ 2).
    pub batched_calls: u64,
    /// Matrices solved through the SoA kernel.
    pub batched_matrices: u64,
    /// Matrices solved through the scalar straggler fallback.
    pub scalar_fallbacks: u64,
    /// SoA kernel invocations that executed the Householder/QL phases,
    /// split by the SIMD path they dispatched to. Indexed like
    /// [`SimdPath::ALL`] (scalar, avx2, avx512, neon); pair with
    /// [`SimdPath::label`] for reporting. Dimension-1 chunks return before
    /// either phase runs, so these can undercount `batched_calls`.
    pub simd_path_calls: [u64; 4],
}

impl BatchSolveStats {
    /// Mean number of matrices per SoA kernel invocation.
    pub fn mean_batch(&self) -> f64 {
        if self.batched_calls == 0 {
            0.0
        } else {
            self.batched_matrices as f64 / self.batched_calls as f64
        }
    }
}

/// Snapshot of the process-wide batched-solve counters.
pub fn batch_solve_stats() -> BatchSolveStats {
    let mut simd_path_calls = [0u64; 4];
    for (slot, counter) in simd_path_calls.iter_mut().zip(&PATH_CALLS) {
        *slot = counter.load(Ordering::Relaxed);
    }
    BatchSolveStats {
        batched_calls: BATCHED_CALLS.load(Ordering::Relaxed),
        batched_matrices: BATCHED_MATRICES.load(Ordering::Relaxed),
        scalar_fallbacks: SCALAR_FALLBACKS.load(Ordering::Relaxed),
        simd_path_calls,
    }
}

/// Lane-occupancy histogram of the SoA eigensolver: one observation per
/// solve invocation, value = lanes filled (1 = scalar straggler fallback).
/// No clock involved, so recording costs a few atomic increments.
fn lane_histogram() -> &'static haqjsk_obs::Histogram {
    static HISTOGRAM: std::sync::OnceLock<haqjsk_obs::Histogram> = std::sync::OnceLock::new();
    HISTOGRAM.get_or_init(|| {
        haqjsk_obs::registry().histogram(
            "haqjsk_eigen_batch_lanes",
            "Occupied lanes per batched eigensolve invocation (1 = scalar fallback).",
            &[],
        )
    })
}

/// Registers the batched-eigensolver counters with the process-global
/// metrics registry: a collector re-exports the atomic totals as
/// `haqjsk_eigen_*` counters at every snapshot, the lane-occupancy
/// histogram family is created eagerly so it appears in every scrape, and
/// the SIMD dispatch is reported as an info-style gauge family
/// (`haqjsk_eigen_simd_path{path=...}`: 1 on the active path, 0 on the
/// rest) plus per-path solve counters
/// (`haqjsk_eigen_simd_calls_total{path=...}`). Idempotent.
pub fn register_batch_metrics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let registry = haqjsk_obs::registry();
        lane_histogram();
        let calls = registry.counter(
            "haqjsk_eigen_batched_calls_total",
            "SoA batched eigensolve invocations.",
            &[],
        );
        let matrices = registry.counter(
            "haqjsk_eigen_batched_matrices_total",
            "Matrices solved through the SoA batched eigensolver.",
            &[],
        );
        let fallbacks = registry.counter(
            "haqjsk_eigen_scalar_fallbacks_total",
            "Matrices solved through the scalar straggler fallback.",
            &[],
        );
        let mut path_gauges = Vec::new();
        let mut path_counters = Vec::new();
        for path in SimdPath::ALL {
            path_gauges.push((
                path,
                registry.gauge(
                    "haqjsk_eigen_simd_path",
                    "Active SIMD dispatch path of the batched eigensolver \
                     (info-style: 1 on the active path, 0 elsewhere).",
                    &[("path", path.label())],
                ),
            ));
            path_counters.push(registry.counter(
                "haqjsk_eigen_simd_calls_total",
                "SoA batched eigensolve invocations by dispatched SIMD path.",
                &[("path", path.label())],
            ));
        }
        registry.register_collector(move || {
            let stats = batch_solve_stats();
            calls.store(stats.batched_calls);
            matrices.store(stats.batched_matrices);
            fallbacks.store(stats.scalar_fallbacks);
            let active = simd::active_simd_label();
            for (path, gauge) in &path_gauges {
                gauge.set(if path.label() == active { 1.0 } else { 0.0 });
            }
            for (path, counter) in SimdPath::ALL.iter().zip(&path_counters) {
                counter.store(stats.simd_path_calls[path.index()]);
            }
        });
    });
}

/// Per-lane scalar registers of the two batched phases. Fixed-size arrays
/// (indexed `..lanes`) so the compiler keeps them in registers / on one
/// cache line instead of behind a heap indirection.
#[derive(Debug)]
struct LaneState {
    scale: [f64; MAX_BATCH_LANES],
    h: [f64; MAX_BATCH_LANES],
    f: [f64; MAX_BATCH_LANES],
    g: [f64; MAX_BATCH_LANES],
    hh: [f64; MAX_BATCH_LANES],
    fj: [f64; MAX_BATCH_LANES],
    gj: [f64; MAX_BATCH_LANES],
    s: [f64; MAX_BATCH_LANES],
    c: [f64; MAX_BATCH_LANES],
    p: [f64; MAX_BATCH_LANES],
    r: [f64; MAX_BATCH_LANES],
    m: [usize; MAX_BATCH_LANES],
    iter: [usize; MAX_BATCH_LANES],
    skip: [bool; MAX_BATCH_LANES],
    active: [bool; MAX_BATCH_LANES],
    done: [bool; MAX_BATCH_LANES],
}

impl Default for LaneState {
    fn default() -> Self {
        LaneState {
            scale: [0.0; MAX_BATCH_LANES],
            h: [0.0; MAX_BATCH_LANES],
            f: [0.0; MAX_BATCH_LANES],
            g: [0.0; MAX_BATCH_LANES],
            hh: [0.0; MAX_BATCH_LANES],
            fj: [0.0; MAX_BATCH_LANES],
            gj: [0.0; MAX_BATCH_LANES],
            s: [0.0; MAX_BATCH_LANES],
            c: [0.0; MAX_BATCH_LANES],
            p: [0.0; MAX_BATCH_LANES],
            r: [0.0; MAX_BATCH_LANES],
            m: [0; MAX_BATCH_LANES],
            iter: [0; MAX_BATCH_LANES],
            skip: [false; MAX_BATCH_LANES],
            active: [false; MAX_BATCH_LANES],
            done: [false; MAX_BATCH_LANES],
        }
    }
}

/// Lane-parallel Householder tridiagonalisation (values-only `tred2`) of
/// `lanes` matrices stored SoA in `z` (`z[(i*n + j) * lanes + lane]`).
/// `e[i*lanes + lane]` receives the sub-diagonal; the diagonal is read off
/// `z` by the caller, exactly like the scalar driver. Each lane performs
/// the scalar reduction's arithmetic verbatim; the rare all-zero-row skip
/// is decided per lane and masked out of the updates.
fn batch_tred2(z: &mut [f64], n: usize, lanes: usize, e: &mut [f64], ws: &mut LaneState) {
    for i in (1..n).rev() {
        let l = i - 1;
        if l == 0 {
            // i == 1: the reduction is trivial, e[1] = z[1, 0].
            let src = (i * n) * lanes;
            for lane in 0..lanes {
                e[i * lanes + lane] = z[src + lane];
            }
            continue;
        }

        // scale[lane] = Σ_k |z[i, k]| over the active row prefix.
        ws.scale[..lanes].fill(0.0);
        for k in 0..=l {
            let zi = (i * n + k) * lanes;
            for lane in 0..lanes {
                ws.scale[lane] += z[zi + lane].abs();
            }
        }
        let mut any_skip = false;
        let mut any_live = false;
        for lane in 0..lanes {
            let skip = ws.scale[lane] == 0.0;
            ws.skip[lane] = skip;
            any_skip |= skip;
            any_live |= !skip;
            ws.h[lane] = 0.0;
            if skip {
                e[i * lanes + lane] = z[(i * n + l) * lanes + lane];
            }
        }
        if !any_live {
            continue;
        }

        if any_skip {
            householder_step::<true>(z, n, lanes, e, ws, i, l);
        } else {
            householder_step::<false>(z, n, lanes, e, ws, i, l);
        }
    }
    // Final sub-diagonal slot, matching the scalar driver's e[0] = 0.
    e[..lanes].fill(0.0);
}

/// One Householder step for row `i` (active prefix `0..=l`, `l > 0`).
/// `MASKED` statically selects the predicated variant used when some lane
/// has a zero scale; the common all-live case monomorphises to clean,
/// unconditionally vectorizable lane loops.
#[inline(always)]
fn householder_step<const MASKED: bool>(
    z: &mut [f64],
    n: usize,
    lanes: usize,
    e: &mut [f64],
    ws: &mut LaneState,
    i: usize,
    l: usize,
) {
    macro_rules! live {
        ($skip:expr, $lane:expr) => {
            !MASKED || !$skip[$lane]
        };
    }

    // Split off row i: the reduction reads it everywhere but only mutates
    // rows `0..=l` in the rank-2 update, and the split lets the hot loops
    // borrow both halves without bounds checks.
    let row_i_base = (i * n) * lanes;
    let (zl, zi_row) = z.split_at_mut(row_i_base);
    let row_i = &mut zi_row[..(l + 1) * lanes];
    let skip = &ws.skip[..lanes];
    let scale = &ws.scale[..lanes];
    let h = &mut ws.h[..lanes];

    // Normalise the row by its scale and accumulate h = Σ v².
    for k in 0..=l {
        let row_k = &mut row_i[k * lanes..(k + 1) * lanes];
        for lane in 0..lanes {
            if live!(skip, lane) {
                let v = row_k[lane] / scale[lane];
                row_k[lane] = v;
                h[lane] += v * v;
            }
        }
    }
    // Householder head: choose the reflection sign per lane.
    for lane in 0..lanes {
        if live!(skip, lane) {
            let f = row_i[l * lanes + lane];
            let sqrt_h = h[lane].sqrt();
            let g = if f >= 0.0 { -sqrt_h } else { sqrt_h };
            e[i * lanes + lane] = scale[lane] * g;
            h[lane] -= f * g;
            row_i[l * lanes + lane] = f - g;
            ws.f[lane] = 0.0;
        }
    }
    // p = A·v (stored in e[0..=l]) and f = vᵀ·p. The two k-loops read the
    // symmetric half exactly like the scalar reduction; they run
    // unpredicated (skipped lanes compute garbage that is never written).
    for j in 0..=l {
        let g = &mut ws.g[..lanes];
        g.fill(0.0);
        let row_j = &zl[(j * n) * lanes..(j * n + j + 1) * lanes];
        for k in 0..=j {
            let zj = &row_j[k * lanes..(k + 1) * lanes];
            let zi = &row_i[k * lanes..(k + 1) * lanes];
            for ((gl, &a), &b) in g.iter_mut().zip(zj).zip(zi) {
                *gl += a * b;
            }
        }
        for k in (j + 1)..=l {
            let zk = &zl[(k * n + j) * lanes..(k * n + j + 1) * lanes];
            let zi = &row_i[k * lanes..(k + 1) * lanes];
            for ((gl, &a), &b) in g.iter_mut().zip(zk).zip(zi) {
                *gl += a * b;
            }
        }
        let ej = &mut e[j * lanes..(j + 1) * lanes];
        let zij = &row_i[j * lanes..(j + 1) * lanes];
        for lane in 0..lanes {
            if live!(skip, lane) {
                let v = g[lane] / h[lane];
                ej[lane] = v;
                ws.f[lane] += v * zij[lane];
            }
        }
    }
    for lane in 0..lanes {
        if live!(skip, lane) {
            ws.hh[lane] = ws.f[lane] / (h[lane] + h[lane]);
        }
    }
    // Rank-2 update A ← A - v·qᵀ - q·vᵀ on the lower triangle.
    for j in 0..=l {
        let fj = &mut ws.fj[..lanes];
        let gj = &mut ws.gj[..lanes];
        {
            let ej = &mut e[j * lanes..(j + 1) * lanes];
            let zij = &row_i[j * lanes..(j + 1) * lanes];
            for lane in 0..lanes {
                if live!(skip, lane) {
                    let f = zij[lane];
                    let g = ej[lane] - ws.hh[lane] * f;
                    ej[lane] = g;
                    fj[lane] = f;
                    gj[lane] = g;
                }
            }
        }
        let row_j = &mut zl[(j * n) * lanes..(j * n + j + 1) * lanes];
        for k in 0..=j {
            let zjk = &mut row_j[k * lanes..(k + 1) * lanes];
            let zik = &row_i[k * lanes..(k + 1) * lanes];
            let ek = &e[k * lanes..(k + 1) * lanes];
            for lane in 0..lanes {
                if live!(skip, lane) {
                    let delta = fj[lane] * ek[lane] + gj[lane] * zik[lane];
                    zjk[lane] -= delta;
                }
            }
        }
    }
}

/// Lane-parallel values-only implicit-QL sweep (`tqli`) over `lanes`
/// tridiagonal systems stored SoA in `d`/`e` (`d[i*lanes + lane]`).
///
/// The eigenvalue index loop is lane-uniform; inside it every lane runs its
/// **own** shift sequence: its own split point `m`, its own iteration count
/// and its own early termination, decided per lane each pass. Converged
/// lanes idle (masked off) while the rest finish, which reproduces the
/// scalar per-matrix arithmetic exactly.
fn batch_tqli(
    d: &mut [f64],
    e: &mut [f64],
    n: usize,
    lanes: usize,
    ws: &mut LaneState,
) -> Result<()> {
    for i in 1..n {
        for lane in 0..lanes {
            e[(i - 1) * lanes + lane] = e[i * lanes + lane];
        }
    }
    for lane in 0..lanes {
        e[(n - 1) * lanes + lane] = 0.0;
    }

    for l in 0..n {
        ws.iter[..lanes].fill(0);
        loop {
            // Per-lane search for a small off-diagonal split element.
            let mut any_active = false;
            let mut max_m = l;
            for lane in 0..lanes {
                let mut m = l;
                while m + 1 < n {
                    let dd = d[m * lanes + lane].abs() + d[(m + 1) * lanes + lane].abs();
                    if e[m * lanes + lane].abs() <= f64::EPSILON * dd {
                        break;
                    }
                    m += 1;
                }
                ws.m[lane] = m;
                let active = m > l;
                ws.active[lane] = active;
                if active {
                    any_active = true;
                    max_m = max_m.max(m);
                }
            }
            if !any_active {
                break;
            }

            // Per-lane shift initialisation.
            for lane in 0..lanes {
                if !ws.active[lane] {
                    continue;
                }
                ws.iter[lane] += 1;
                if ws.iter[lane] > MAX_QL_ITERATIONS {
                    return Err(LinalgError::NoConvergence {
                        algorithm: "batched symmetric QL iteration",
                        iterations: MAX_QL_ITERATIONS,
                    });
                }
                let el = e[l * lanes + lane];
                let mut g = (d[(l + 1) * lanes + lane] - d[l * lanes + lane]) / (2.0 * el);
                let r = pythag(g, 1.0);
                g = d[ws.m[lane] * lanes + lane] - d[l * lanes + lane]
                    + el / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
                ws.g[lane] = g;
                ws.s[lane] = 1.0;
                ws.c[lane] = 1.0;
                ws.p[lane] = 0.0;
                ws.r[lane] = r;
                ws.done[lane] = false;
            }

            // Lockstep plane rotations: lane `k` participates exactly for
            // its own index range `l..m[k]`, in descending order.
            for i in (l..max_m).rev() {
                for lane in 0..lanes {
                    if !ws.active[lane] || ws.done[lane] || i >= ws.m[lane] {
                        continue;
                    }
                    let ei = e[i * lanes + lane];
                    let f = ws.s[lane] * ei;
                    let b = ws.c[lane] * ei;
                    let r = pythag(f, ws.g[lane]);
                    e[(i + 1) * lanes + lane] = r;
                    if r == 0.0 {
                        d[(i + 1) * lanes + lane] -= ws.p[lane];
                        e[ws.m[lane] * lanes + lane] = 0.0;
                        ws.r[lane] = r;
                        ws.done[lane] = true;
                        continue;
                    }
                    let s = f / r;
                    let c = ws.g[lane] / r;
                    let g = d[(i + 1) * lanes + lane] - ws.p[lane];
                    let r2 = (d[i * lanes + lane] - g) * s + 2.0 * c * b;
                    let p = s * r2;
                    d[(i + 1) * lanes + lane] = g + p;
                    ws.g[lane] = c * r2 - b;
                    ws.s[lane] = s;
                    ws.c[lane] = c;
                    ws.p[lane] = p;
                    ws.r[lane] = r2;
                }
            }
            for lane in 0..lanes {
                if !ws.active[lane] {
                    continue;
                }
                // Mirrors the scalar `if r == 0.0 && m > l { continue; }`.
                if ws.r[lane] == 0.0 && ws.m[lane] > l {
                    continue;
                }
                d[l * lanes + lane] -= ws.p[lane];
                e[l * lanes + lane] = ws.g[lane];
                e[ws.m[lane] * lanes + lane] = 0.0;
            }
        }
    }
    Ok(())
}

/// Reusable buffers of the batched values-only eigensolver: the SoA matrix
/// block, the SoA tridiagonal pair, the per-lane registers, and a scalar
/// [`EigenWorkspace`] serving the straggler fallback. Buffers grow to the
/// largest `dimension² × lanes` seen and are reused across calls, so tiled
/// Gram loops stop allocating per tile.
#[derive(Debug, Default)]
pub struct BatchEigenWorkspace {
    soa: Vec<f64>,
    d: Vec<f64>,
    e: Vec<f64>,
    lanes: Box<LaneState>,
    scalar: EigenWorkspace,
}

impl BatchEigenWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        BatchEigenWorkspace::default()
    }

    /// Capacity (in `f64` elements) of the SoA scratch — exposed so tests
    /// can assert that repeated batches reuse the allocation.
    pub fn soa_capacity(&self) -> usize {
        self.soa.capacity()
    }

    /// Eigenvalues of every matrix in `mats`, each in ascending order and
    /// **bit-identical** to `symmetric_eigenvalues(mats[k])`.
    ///
    /// Matrices are grouped by dimension and each group is solved in SoA
    /// chunks of up to [`max_batch_lanes`](crate::simd::max_batch_lanes)
    /// lanes (16 under AVX-512F, 8 otherwise); a chunk of one matrix
    /// (straggler) takes the scalar path. The Householder/QL phases run on
    /// the explicit-SIMD path resolved by
    /// [`active_simd_path`](crate::simd::active_simd_path) — every path
    /// produces the same bits, so the dispatch choice is invisible in the
    /// output. Validation matches the scalar driver (square + symmetric
    /// within tolerance); the first invalid matrix fails the whole call,
    /// as does a (pathological) lane that exceeds the QL iteration cap or
    /// a malformed `HAQJSK_SIMD` override.
    pub fn eigenvalues(&mut self, mats: &[&Matrix]) -> Result<Vec<Vec<f64>>> {
        let path = simd::active_simd_path()?;
        let lane_cap = path.batch_lanes();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); mats.len()];
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (idx, mat) in mats.iter().enumerate() {
            let n = check_symmetric(mat)?;
            if n > 0 {
                groups.entry(n).or_default().push(idx);
            }
        }
        for (&n, idxs) in &groups {
            for chunk in idxs.chunks(lane_cap) {
                if chunk.len() == 1 {
                    // Straggler: the scalar path has less bookkeeping and
                    // produces the same bits.
                    out[chunk[0]] = self.scalar.eigenvalues(mats[chunk[0]])?.to_vec();
                    SCALAR_FALLBACKS.fetch_add(1, Ordering::Relaxed);
                    lane_histogram().observe(1.0);
                } else {
                    self.solve_chunk(mats, chunk, n, path, &mut out)?;
                }
            }
        }
        Ok(out)
    }

    fn solve_chunk(
        &mut self,
        mats: &[&Matrix],
        chunk: &[usize],
        n: usize,
        path: SimdPath,
        out: &mut [Vec<f64>],
    ) -> Result<()> {
        let lanes = chunk.len();
        debug_assert!((2..=MAX_BATCH_LANES).contains(&lanes));
        if self.soa.len() < n * n * lanes {
            self.soa.resize(n * n * lanes, 0.0);
        }
        if self.d.len() < n * lanes {
            self.d.resize(n * lanes, 0.0);
            self.e.resize(n * lanes, 0.0);
        }
        let soa = &mut self.soa[..n * n * lanes];
        let d = &mut self.d[..n * lanes];
        let e = &mut self.e[..n * lanes];

        // Symmetrise each matrix straight into its SoA lane — the same
        // arithmetic as the scalar workspace's in-place symmetrisation.
        for (lane, &idx) in chunk.iter().enumerate() {
            let data = mats[idx].data();
            for i in 0..n {
                for j in 0..n {
                    soa[(i * n + j) * lanes + lane] = 0.5 * (data[i * n + j] + data[j * n + i]);
                }
            }
        }
        BATCHED_CALLS.fetch_add(1, Ordering::Relaxed);
        BATCHED_MATRICES.fetch_add(lanes as u64, Ordering::Relaxed);
        lane_histogram().observe(lanes as f64);
        if n == 1 {
            for (lane, &idx) in chunk.iter().enumerate() {
                out[idx] = vec![soa[lane]];
            }
            return Ok(());
        }

        d.fill(0.0);
        e.fill(0.0);
        PATH_CALLS[path.index()].fetch_add(1, Ordering::Relaxed);
        match path {
            SimdPath::Scalar => batch_tred2(soa, n, lanes, e, &mut self.lanes),
            _ => simd::dispatch_tred2(path, soa, n, lanes, e),
        }
        // The scalar driver reads the reduced diagonal into d after the
        // Householder phase; do the same per lane.
        for i in 0..n {
            let zii = (i * n + i) * lanes;
            for lane in 0..lanes {
                d[i * lanes + lane] = soa[zii + lane];
            }
        }
        match path {
            SimdPath::Scalar => batch_tqli(d, e, n, lanes, &mut self.lanes)?,
            _ => simd::dispatch_tqli(path, d, e, n, lanes)?,
        }

        for (lane, &idx) in chunk.iter().enumerate() {
            let mut vals: Vec<f64> = (0..n).map(|i| d[i * lanes + lane]).collect();
            // Stable ascending sort, matching the scalar drivers.
            vals.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));
            out[idx] = vals;
        }
        Ok(())
    }
}

thread_local! {
    /// Per-thread workspace backing [`batch_symmetric_eigenvalues`].
    static BATCH_WORKSPACE: RefCell<BatchEigenWorkspace> =
        RefCell::new(BatchEigenWorkspace::new());
}

/// Eigenvalues of a batch of symmetric matrices, each ascending and
/// bit-identical to [`symmetric_eigenvalues`](crate::symmetric_eigenvalues)
/// on that matrix.
///
/// Same-dimension matrices are solved
/// [`max_batch_lanes`](crate::simd::max_batch_lanes) at a time through the
/// lane-parallel SoA kernel (mixed-size batches are chunked by
/// dimension class); stragglers fall back to the scalar path. Graph-sized
/// batches reuse a thread-local [`BatchEigenWorkspace`]; batches containing
/// a matrix above the scalar workspace-dimension limit use a transient one
/// so huge one-off solves cannot pin the thread-local scratch.
pub fn batch_symmetric_eigenvalues(mats: &[&Matrix]) -> Result<Vec<Vec<f64>>> {
    if mats.iter().any(|m| m.rows() > WORKSPACE_DIM_LIMIT) {
        return BatchEigenWorkspace::new().eigenvalues(mats);
    }
    BATCH_WORKSPACE.with(|ws| ws.borrow_mut().eigenvalues(mats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::symmetric_eigenvalues;

    /// Deterministic pseudo-random symmetric matrix (LCG fill).
    fn lcg_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    fn assert_bits_equal(batch: &[Vec<f64>], mats: &[&Matrix], label: &str) {
        for (k, mat) in mats.iter().enumerate() {
            let scalar = symmetric_eigenvalues(mat).unwrap();
            assert_eq!(
                batch[k].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{label}: matrix {k} (dim {}) drifted from the scalar driver",
                mat.rows()
            );
        }
    }

    #[test]
    fn uniform_batch_is_bit_identical_to_scalar() {
        for n in [2usize, 3, 5, 8, 13, 24] {
            let mats: Vec<Matrix> = (0..7).map(|s| lcg_symmetric(n, 31 * s + 1)).collect();
            let refs: Vec<&Matrix> = mats.iter().collect();
            let batch = batch_symmetric_eigenvalues(&refs).unwrap();
            assert_bits_equal(&batch, &refs, "uniform");
        }
    }

    #[test]
    fn mixed_dimension_batch_chunks_by_class() {
        // 11 matrices over 3 dimension classes, one class with a straggler.
        let mats: Vec<Matrix> = (0..11)
            .map(|k| lcg_symmetric([4, 7, 12][k % 3] + (k == 10) as usize, k as u64))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let before = batch_solve_stats();
        let batch = batch_symmetric_eigenvalues(&refs).unwrap();
        let after = batch_solve_stats();
        assert_bits_equal(&batch, &refs, "mixed");
        assert!(after.batched_matrices > before.batched_matrices);
        assert!(
            after.scalar_fallbacks > before.scalar_fallbacks,
            "the singleton dimension class must take the scalar fallback"
        );
    }

    #[test]
    fn oversized_batch_splits_into_lane_chunks() {
        let mats: Vec<Matrix> = (0..MAX_BATCH_LANES * 2 + 3)
            .map(|s| lcg_symmetric(6, s as u64 + 5))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let batch = batch_symmetric_eigenvalues(&refs).unwrap();
        assert_bits_equal(&batch, &refs, "oversized");
    }

    #[test]
    fn zero_rows_exercise_the_masked_householder_path() {
        // A matrix with an all-zero row/column hits the per-lane zero-scale
        // skip; mix it with dense lanes so masking is actually exercised.
        let mut sparse = lcg_symmetric(9, 77);
        for k in 0..9 {
            sparse[(4, k)] = 0.0;
            sparse[(k, 4)] = 0.0;
            sparse[(7, k)] = 0.0;
            sparse[(k, 7)] = 0.0;
        }
        let dense = lcg_symmetric(9, 78);
        let diag = Matrix::from_diag(&[3.0, -1.0, 2.0, 0.0, 0.0, 1.0, 4.0, -2.0, 5.0]);
        let refs: Vec<&Matrix> = vec![&sparse, &dense, &diag, &sparse];
        let batch = batch_symmetric_eigenvalues(&refs).unwrap();
        assert_bits_equal(&batch, &refs, "zero-rows");
    }

    #[test]
    fn tiny_dimensions_and_empty_batches() {
        assert!(batch_symmetric_eigenvalues(&[]).unwrap().is_empty());
        let e = Matrix::zeros(0, 0);
        let s1 = Matrix::from_diag(&[7.0]);
        let s2 = Matrix::from_diag(&[-3.0]);
        let p = lcg_symmetric(2, 9);
        let refs: Vec<&Matrix> = vec![&e, &s1, &s2, &p, &p];
        let batch = batch_symmetric_eigenvalues(&refs).unwrap();
        assert!(batch[0].is_empty());
        assert_eq!(batch[1], vec![7.0]);
        assert_eq!(batch[2], vec![-3.0]);
        assert_bits_equal(&batch[3..], &refs[3..], "tiny");
    }

    #[test]
    fn invalid_matrices_fail_the_call() {
        let good = lcg_symmetric(3, 1);
        let rect = Matrix::zeros(2, 3);
        assert!(batch_symmetric_eigenvalues(&[&good, &rect]).is_err());
        let asym = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]).unwrap();
        assert!(batch_symmetric_eigenvalues(&[&asym, &good]).is_err());
    }

    #[test]
    fn every_available_simd_path_is_bit_identical() {
        // Forces each compiled path in turn and re-runs the bit-equality
        // gauntlet: mixed dimensions, zero rows (masked Householder),
        // oversized batches (straggler tails inside the dispatch blocks).
        let mut mats: Vec<Matrix> = (0..crate::simd::max_batch_lanes() * 2 + 3)
            .map(|k| lcg_symmetric([3, 6, 9, 17][k % 4], k as u64 + 900))
            .collect();
        let mut sparse = lcg_symmetric(9, 901);
        for k in 0..9 {
            sparse[(4, k)] = 0.0;
            sparse[(k, 4)] = 0.0;
        }
        mats.push(sparse);
        let refs: Vec<&Matrix> = mats.iter().collect();
        for path in crate::simd::available_simd_paths() {
            crate::simd::set_simd_path(Some(path)).unwrap();
            let before = batch_solve_stats().simd_path_calls[path.index()];
            let batch = batch_symmetric_eigenvalues(&refs).unwrap();
            assert_bits_equal(&batch, &refs, path.label());
            let after = batch_solve_stats().simd_path_calls[path.index()];
            assert!(
                after > before,
                "{}: per-path counter must record the dispatch",
                path.label()
            );
        }
        crate::simd::set_simd_path(None).unwrap();
    }

    #[test]
    fn batch_metrics_report_the_simd_path() {
        register_batch_metrics();
        let mats: Vec<Matrix> = (0..5).map(|s| lcg_symmetric(7, s + 300)).collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let _ = batch_symmetric_eigenvalues(&refs).unwrap();
        let snapshot = haqjsk_obs::registry().snapshot();
        let mut active = 0;
        for path in SimdPath::ALL {
            let v = snapshot
                .gauge_value("haqjsk_eigen_simd_path", &[("path", path.label())])
                .expect("info gauge present for every path");
            if v == 1.0 {
                active += 1;
            }
            assert!(snapshot
                .counter_value("haqjsk_eigen_simd_calls_total", &[("path", path.label())])
                .is_some());
        }
        assert_eq!(active, 1, "exactly one path is active");
    }

    #[test]
    fn workspace_buffers_are_reused() {
        let mut ws = BatchEigenWorkspace::new();
        let mats: Vec<Matrix> = (0..6).map(|s| lcg_symmetric(10, s + 40)).collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let _ = ws.eigenvalues(&refs).unwrap();
        let cap = ws.soa_capacity();
        assert!(cap >= 10 * 10 * 6);
        for round in 0..4 {
            let batch = ws.eigenvalues(&refs).unwrap();
            assert_bits_equal(&batch, &refs, "reuse");
            assert_eq!(
                ws.soa_capacity(),
                cap,
                "round {round} must not grow the SoA"
            );
        }
    }
}
