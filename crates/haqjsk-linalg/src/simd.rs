//! Explicit-SIMD lanes for the batched eigensolver, with runtime dispatch.
//!
//! The SoA layout of [`crate::batch`] puts lane `k` of element `(i, j)` at
//! `z[(i*n + j) * lanes + k]`: the lane axis is contiguous, which is exactly
//! the shape `core::arch` vector registers want. This module makes the
//! vectorisation explicit instead of relying on LLVM auto-vectorising the
//! plain `f64` lane loops:
//!
//! * a [`LaneVec`] trait abstracts a block of `WIDTH` adjacent lanes with
//!   **IEEE-exact** `f64` operations only — add/sub/mul/div/sqrt plus
//!   bitwise `abs`/`neg` and ordered compares. No FMA contraction, no
//!   reassociation, no approximate reciprocals: every lane of every vector
//!   op produces exactly the bits the scalar driver would,
//! * generic block kernels ([`tred2_block`], [`tqli_block`]) run the
//!   Householder reduction and the implicit-QL sweep over one `WIDTH`-lane
//!   block, mirroring the scalar lane loop of `crate::batch` op for op.
//!   Data-dependent control flow (the zero-scale skip, QL split points,
//!   shift sequences, iteration counts, convergence) stays **per lane**:
//!   diverging lanes are masked with IEEE-exact selects, so garbage
//!   computed in a masked-off lane is discarded, never stored,
//! * thin `#[target_feature]` wrappers monomorphise the generic kernels per
//!   ISA — AVX-512F (8 × f64), AVX2 (4 × f64), NEON (2 × f64) — and a
//!   width-1 [`ScalarLane`] runs straggler tail lanes through the *same*
//!   generic code, so tails are bit-identical by construction,
//! * [`active_simd_path`] picks the widest ISA the host supports at
//!   runtime (`is_x86_feature_detected!`), overridable via the
//!   [`SIMD_ENV_VAR`] knob (`HAQJSK_SIMD=auto|avx512|avx2|neon|scalar`).
//!   Unknown values and unavailable ISAs are hard errors, mirroring the
//!   `HAQJSK_BACKEND` convention: a typo must never silently change paths.
//!
//! The scalar lane loop in `crate::batch` remains the always-compiled
//! fallback (and the reference the property tests compare against); the
//! kernels here are an *optimisation* of it, never a semantic fork — every
//! compiled path must produce bit-identical eigenvalues, which the forced
//! path proptests assert.

use crate::eigen::{pythag, MAX_QL_ITERATIONS};
use crate::error::LinalgError;
use crate::Result;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Name of the environment variable forcing the SIMD dispatch path.
pub const SIMD_ENV_VAR: &str = "HAQJSK_SIMD";

/// Hard cap on lanes per SoA chunk; [`SimdPath::batch_lanes`] picks the
/// effective width per path (16 under AVX-512F, 8 otherwise). Mirrored by
/// `crate::batch::MAX_BATCH_LANES`, which sizes the lane-state arrays.
pub(crate) const LANE_CAP: usize = 16;

/// A runtime-dispatched implementation of the batched eigensolver lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdPath {
    /// The plain `f64` lane loops of `crate::batch` (always compiled).
    Scalar,
    /// AVX2: 4 × f64 per vector, x86-64 only.
    Avx2,
    /// AVX-512F: 8 × f64 per vector, x86-64 only.
    Avx512,
    /// NEON: 2 × f64 per vector, aarch64 only.
    Neon,
}

impl SimdPath {
    /// Every dispatchable path, in the fixed reporting order used by the
    /// per-path counters ([`SimdPath::index`]).
    pub const ALL: [SimdPath; 4] = [
        SimdPath::Scalar,
        SimdPath::Avx2,
        SimdPath::Avx512,
        SimdPath::Neon,
    ];

    /// Stable lowercase label (`scalar` / `avx2` / `avx512` / `neon`) used
    /// by the env knob, metric labels and JSON reporting.
    pub fn label(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
            SimdPath::Avx512 => "avx512",
            SimdPath::Neon => "neon",
        }
    }

    /// Position of this path in [`SimdPath::ALL`] (counter indexing).
    pub fn index(self) -> usize {
        match self {
            SimdPath::Scalar => 0,
            SimdPath::Avx2 => 1,
            SimdPath::Avx512 => 2,
            SimdPath::Neon => 3,
        }
    }

    /// `f64` lanes per vector register on this path (1 for scalar).
    pub fn lane_width(self) -> usize {
        match self {
            SimdPath::Scalar => 1,
            SimdPath::Avx2 => 4,
            SimdPath::Avx512 => 8,
            SimdPath::Neon => 2,
        }
    }

    /// Matrices per SoA chunk on this path: 16 under AVX-512F (two ZMM
    /// registers per SoA element row keep the rank-2 update busy), 8
    /// everywhere else (the pre-SIMD width, one ZMM / two YMM / four
    /// NEON registers).
    pub fn batch_lanes(self) -> usize {
        match self {
            SimdPath::Avx512 => 16,
            _ => 8,
        }
    }

    /// Whether the host can execute this path.
    pub fn is_available(self) -> bool {
        match self {
            SimdPath::Scalar => true,
            SimdPath::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            SimdPath::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            SimdPath::Neon => cfg!(target_arch = "aarch64"),
        }
    }
}

/// A parsed [`SIMD_ENV_VAR`] value: pick the widest available ISA, or
/// force one specific path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdChoice {
    /// Detect and use the widest ISA the host supports.
    Auto,
    /// Force one path; resolution hard-errors if the host lacks it.
    Force(SimdPath),
}

/// Resolves a raw [`SIMD_ENV_VAR`] value (as read from the environment) to
/// a dispatch choice: `Auto` when unset, a hard error listing the valid
/// names for anything unrecognised — same convention as `HAQJSK_BACKEND`,
/// so a typo can never silently change which kernels run. Pure function,
/// factored out so rejection behavior is testable without touching
/// process-global environment state.
pub fn resolve_simd_env_value(raw: Option<&str>) -> Result<SimdChoice> {
    match raw {
        None => Ok(SimdChoice::Auto),
        Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(SimdChoice::Auto),
            "scalar" => Ok(SimdChoice::Force(SimdPath::Scalar)),
            "avx2" => Ok(SimdChoice::Force(SimdPath::Avx2)),
            "avx512" => Ok(SimdChoice::Force(SimdPath::Avx512)),
            "neon" => Ok(SimdChoice::Force(SimdPath::Neon)),
            other => Err(LinalgError::InvalidArgument(format!(
                "invalid {SIMD_ENV_VAR} value {other:?}: \
                 expected one of auto, avx512, avx2, neon, scalar"
            ))),
        },
    }
}

/// The widest path the host supports: AVX-512F > AVX2 > NEON > scalar.
pub fn detect_best_path() -> SimdPath {
    for path in [SimdPath::Avx512, SimdPath::Avx2, SimdPath::Neon] {
        if path.is_available() {
            return path;
        }
    }
    SimdPath::Scalar
}

/// Paths the host can execute, scalar always included. Tests iterate this
/// to force every compiled kernel through the bit-identity assertions.
pub fn available_simd_paths() -> Vec<SimdPath> {
    SimdPath::ALL
        .into_iter()
        .filter(|p| p.is_available())
        .collect()
}

/// One-shot resolution of the env knob + host detection. The `Err` arm is
/// sticky on purpose: a bad `HAQJSK_SIMD` must fail every solve, not just
/// the first, so it cannot hide behind a warm cache.
fn env_resolution() -> &'static std::result::Result<SimdPath, String> {
    static CELL: OnceLock<std::result::Result<SimdPath, String>> = OnceLock::new();
    CELL.get_or_init(|| {
        let raw = std::env::var(SIMD_ENV_VAR).ok();
        match resolve_simd_env_value(raw.as_deref()).map_err(|e| e.to_string())? {
            SimdChoice::Auto => Ok(detect_best_path()),
            SimdChoice::Force(path) if path.is_available() => Ok(path),
            SimdChoice::Force(path) => Err(format!(
                "{SIMD_ENV_VAR}={} requests an ISA this host does not support \
                 (available: {})",
                path.label(),
                available_simd_paths()
                    .iter()
                    .map(|p| p.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    })
}

/// Process-global test/tool override: 0 = none (env + detection decide),
/// `1 + SimdPath::index()` = forced path. Lets one process exercise every
/// compiled path in sequence, which the env knob (read once) cannot.
static PATH_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces the dispatch path for the whole process (`None` restores env +
/// detection). Errors if the host cannot execute the requested path.
/// Intended for tests and benchmarks; because every path is bit-identical,
/// flipping it concurrently with running solves changes *which* kernels
/// run, never what they produce.
pub fn set_simd_path(path: Option<SimdPath>) -> Result<()> {
    match path {
        None => PATH_OVERRIDE.store(0, Ordering::Relaxed),
        Some(p) => {
            if !p.is_available() {
                return Err(LinalgError::InvalidArgument(format!(
                    "SIMD path {} is not available on this host",
                    p.label()
                )));
            }
            PATH_OVERRIDE.store(1 + p.index() as u8, Ordering::Relaxed);
        }
    }
    Ok(())
}

/// The path the batched eigensolver dispatches to: the process override if
/// set, else the cached [`SIMD_ENV_VAR`] + detection resolution. A
/// malformed or unavailable env request is a hard error on every call.
pub fn active_simd_path() -> Result<SimdPath> {
    match PATH_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_resolution()
            .clone()
            .map_err(LinalgError::InvalidArgument),
        k => Ok(SimdPath::ALL[(k - 1) as usize]),
    }
}

/// Label of the active path for reporting (`"invalid"` when the env knob
/// holds a value that fails resolution — solves error in that state too).
pub fn active_simd_label() -> &'static str {
    match active_simd_path() {
        Ok(path) => path.label(),
        Err(_) => "invalid",
    }
}

/// Effective lanes-per-chunk of the active path (8 when resolution fails —
/// the chunk size only matters once a solve succeeds, which it then won't).
pub fn max_batch_lanes() -> usize {
    active_simd_path().map_or(8, SimdPath::batch_lanes)
}

// ---------------------------------------------------------------------------
// Lane-vector abstraction
// ---------------------------------------------------------------------------

/// A block of `WIDTH` adjacent SoA lanes with IEEE-exact `f64` semantics.
///
/// Every operation must be bit-exact per lane against the scalar `f64`
/// operator it names: no FMA contraction, no reassociation, no flush-to-
/// zero, correctly rounded `sqrt`. `abs`/`neg` are sign-bit operations
/// (so `-0.0` behaves exactly like scalar negation), and the compares use
/// *ordered* predicates (false on NaN), matching scalar `>=`/`>`/`==`.
///
/// Masks are plain `u16` bitmasks (lane `k` = bit `k`): the generic
/// kernels share one mask representation across ISAs and the scalar
/// control logic can inspect masks directly. [`LaneVec::blend_bits`]
/// selects per lane, which is how diverging lanes discard the garbage
/// they computed while masked off.
///
/// # Safety
///
/// `load`/`store` dereference raw pointers to `WIDTH` consecutive `f64`s.
/// Implementations backed by ISA intrinsics must only be *executed* on
/// hosts with that ISA; the `#[target_feature]` wrappers plus runtime
/// detection uphold this.
trait LaneVec: Copy {
    /// Lanes per vector.
    const WIDTH: usize;
    /// Bitmask with every lane set.
    const FULL: u16;

    /// # Safety
    /// `ptr` must be valid for reading `WIDTH` consecutive `f64`s.
    unsafe fn load(ptr: *const f64) -> Self;
    /// # Safety
    /// `ptr` must be valid for writing `WIDTH` consecutive `f64`s.
    unsafe fn store(self, ptr: *mut f64);
    fn splat(x: f64) -> Self;
    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn div(self, o: Self) -> Self;
    fn sqrt(self) -> Self;
    /// Sign-bit clear (exact, no branching on value).
    fn abs(self) -> Self;
    /// Sign-bit flip (exact; `neg(+0.0) == -0.0` like scalar `-x`).
    fn neg(self) -> Self;
    /// Ordered `self >= o` per lane (false on NaN), as a bitmask.
    fn ge_bits(self, o: Self) -> u16;
    /// Ordered `self > o` per lane (false on NaN), as a bitmask.
    fn gt_bits(self, o: Self) -> u16;
    /// Ordered `self == o` per lane (false on NaN), as a bitmask.
    fn eq_bits(self, o: Self) -> u16;
    /// Per lane: bit set → `on_true`, clear → `on_false` (exact copy).
    fn blend_bits(bits: u16, on_true: Self, on_false: Self) -> Self;
}

/// Width-1 lane used for straggler tails: runs the *same* generic block
/// kernels as the vector paths, so tail lanes are bit-identical to full
/// blocks by construction (scalar `f64` ops are trivially IEEE-exact).
#[derive(Debug, Clone, Copy)]
struct ScalarLane(f64);

impl LaneVec for ScalarLane {
    const WIDTH: usize = 1;
    const FULL: u16 = 1;

    #[inline(always)]
    unsafe fn load(ptr: *const f64) -> Self {
        ScalarLane(*ptr)
    }
    #[inline(always)]
    unsafe fn store(self, ptr: *mut f64) {
        *ptr = self.0;
    }
    #[inline(always)]
    fn splat(x: f64) -> Self {
        ScalarLane(x)
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        ScalarLane(self.0 + o.0)
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        ScalarLane(self.0 - o.0)
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        ScalarLane(self.0 * o.0)
    }
    #[inline(always)]
    fn div(self, o: Self) -> Self {
        ScalarLane(self.0 / o.0)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        ScalarLane(self.0.sqrt())
    }
    #[inline(always)]
    fn abs(self) -> Self {
        ScalarLane(self.0.abs())
    }
    #[inline(always)]
    fn neg(self) -> Self {
        ScalarLane(-self.0)
    }
    #[inline(always)]
    fn ge_bits(self, o: Self) -> u16 {
        (self.0 >= o.0) as u16
    }
    #[inline(always)]
    fn gt_bits(self, o: Self) -> u16 {
        (self.0 > o.0) as u16
    }
    #[inline(always)]
    fn eq_bits(self, o: Self) -> u16 {
        (self.0 == o.0) as u16
    }
    #[inline(always)]
    fn blend_bits(bits: u16, on_true: Self, on_false: Self) -> Self {
        if bits & 1 == 1 {
            on_true
        } else {
            on_false
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::LaneVec;
    use core::arch::x86_64::*;

    /// Per-lane all-ones/all-zeros masks for `blendv`, indexed by bitmask.
    /// `blendv_pd` keys on the sign bit, so all-ones lanes select `on_true`.
    static AVX2_MASKS: [[u64; 4]; 16] = {
        let mut table = [[0u64; 4]; 16];
        let mut bits = 0;
        while bits < 16 {
            let mut lane = 0;
            while lane < 4 {
                if bits >> lane & 1 == 1 {
                    table[bits][lane] = u64::MAX;
                }
                lane += 1;
            }
            bits += 1;
        }
        table
    };

    /// 4 × f64 AVX2 lanes. All arithmetic maps to single IEEE-exact
    /// VEX-encoded instructions; `abs`/`neg` are bitwise ops on the sign
    /// bit; compares use ordered-quiet predicates.
    #[derive(Clone, Copy)]
    pub(super) struct Avx2Vec(__m256d);

    impl LaneVec for Avx2Vec {
        const WIDTH: usize = 4;
        const FULL: u16 = 0b1111;

        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            Avx2Vec(_mm256_loadu_pd(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            _mm256_storeu_pd(ptr, self.0)
        }
        #[inline(always)]
        fn splat(x: f64) -> Self {
            Avx2Vec(unsafe { _mm256_set1_pd(x) })
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Avx2Vec(unsafe { _mm256_add_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            Avx2Vec(unsafe { _mm256_sub_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Avx2Vec(unsafe { _mm256_mul_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn div(self, o: Self) -> Self {
            Avx2Vec(unsafe { _mm256_div_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            Avx2Vec(unsafe { _mm256_sqrt_pd(self.0) })
        }
        #[inline(always)]
        fn abs(self) -> Self {
            // Clear the sign bit: andnot(-0.0, x).
            Avx2Vec(unsafe { _mm256_andnot_pd(_mm256_set1_pd(-0.0), self.0) })
        }
        #[inline(always)]
        fn neg(self) -> Self {
            // Flip the sign bit: xor(-0.0, x) — exact for ±0.0, unlike 0-x.
            Avx2Vec(unsafe { _mm256_xor_pd(_mm256_set1_pd(-0.0), self.0) })
        }
        #[inline(always)]
        fn ge_bits(self, o: Self) -> u16 {
            unsafe { _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(self.0, o.0)) as u16 }
        }
        #[inline(always)]
        fn gt_bits(self, o: Self) -> u16 {
            unsafe { _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(self.0, o.0)) as u16 }
        }
        #[inline(always)]
        fn eq_bits(self, o: Self) -> u16 {
            unsafe { _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(self.0, o.0)) as u16 }
        }
        #[inline(always)]
        fn blend_bits(bits: u16, on_true: Self, on_false: Self) -> Self {
            let mask = unsafe {
                _mm256_loadu_pd(AVX2_MASKS[(bits & 0b1111) as usize].as_ptr() as *const f64)
            };
            Avx2Vec(unsafe { _mm256_blendv_pd(on_false.0, on_true.0, mask) })
        }
    }

    /// 8 × f64 AVX-512F lanes. Compares produce native `__mmask8`
    /// registers; blends are single mask-blend instructions; `neg` is an
    /// integer-domain xor because `_mm512_xor_pd` needs AVX-512DQ.
    #[derive(Clone, Copy)]
    pub(super) struct Avx512Vec(__m512d);

    impl LaneVec for Avx512Vec {
        const WIDTH: usize = 8;
        const FULL: u16 = 0xff;

        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            Avx512Vec(_mm512_loadu_pd(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            _mm512_storeu_pd(ptr, self.0)
        }
        #[inline(always)]
        fn splat(x: f64) -> Self {
            Avx512Vec(unsafe { _mm512_set1_pd(x) })
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            Avx512Vec(unsafe { _mm512_add_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            Avx512Vec(unsafe { _mm512_sub_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            Avx512Vec(unsafe { _mm512_mul_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn div(self, o: Self) -> Self {
            Avx512Vec(unsafe { _mm512_div_pd(self.0, o.0) })
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            Avx512Vec(unsafe { _mm512_sqrt_pd(self.0) })
        }
        #[inline(always)]
        fn abs(self) -> Self {
            Avx512Vec(unsafe { _mm512_abs_pd(self.0) })
        }
        #[inline(always)]
        fn neg(self) -> Self {
            Avx512Vec(unsafe {
                _mm512_castsi512_pd(_mm512_xor_si512(
                    _mm512_castpd_si512(self.0),
                    _mm512_set1_epi64(i64::MIN),
                ))
            })
        }
        #[inline(always)]
        fn ge_bits(self, o: Self) -> u16 {
            unsafe { _mm512_cmp_pd_mask::<_CMP_GE_OQ>(self.0, o.0) as u16 }
        }
        #[inline(always)]
        fn gt_bits(self, o: Self) -> u16 {
            unsafe { _mm512_cmp_pd_mask::<_CMP_GT_OQ>(self.0, o.0) as u16 }
        }
        #[inline(always)]
        fn eq_bits(self, o: Self) -> u16 {
            unsafe { _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(self.0, o.0) as u16 }
        }
        #[inline(always)]
        fn blend_bits(bits: u16, on_true: Self, on_false: Self) -> Self {
            // mask_blend picks the *second* operand where the bit is set.
            Avx512Vec(unsafe { _mm512_mask_blend_pd(bits as u8, on_false.0, on_true.0) })
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::LaneVec;
    use core::arch::aarch64::*;

    /// Per-lane select masks for `vbslq_f64`, indexed by bitmask.
    static NEON_MASKS: [[u64; 2]; 4] = [[0, 0], [u64::MAX, 0], [0, u64::MAX], [u64::MAX, u64::MAX]];

    /// 2 × f64 NEON lanes. `FNEG`/`FABS` are exact sign-bit operations and
    /// NEON f64 arithmetic is IEEE-exact (no flush-to-zero for f64).
    #[derive(Clone, Copy)]
    pub(super) struct NeonVec(float64x2_t);

    impl LaneVec for NeonVec {
        const WIDTH: usize = 2;
        const FULL: u16 = 0b11;

        #[inline(always)]
        unsafe fn load(ptr: *const f64) -> Self {
            NeonVec(vld1q_f64(ptr))
        }
        #[inline(always)]
        unsafe fn store(self, ptr: *mut f64) {
            vst1q_f64(ptr, self.0)
        }
        #[inline(always)]
        fn splat(x: f64) -> Self {
            NeonVec(unsafe { vdupq_n_f64(x) })
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            NeonVec(unsafe { vaddq_f64(self.0, o.0) })
        }
        #[inline(always)]
        fn sub(self, o: Self) -> Self {
            NeonVec(unsafe { vsubq_f64(self.0, o.0) })
        }
        #[inline(always)]
        fn mul(self, o: Self) -> Self {
            NeonVec(unsafe { vmulq_f64(self.0, o.0) })
        }
        #[inline(always)]
        fn div(self, o: Self) -> Self {
            NeonVec(unsafe { vdivq_f64(self.0, o.0) })
        }
        #[inline(always)]
        fn sqrt(self) -> Self {
            NeonVec(unsafe { vsqrtq_f64(self.0) })
        }
        #[inline(always)]
        fn abs(self) -> Self {
            NeonVec(unsafe { vabsq_f64(self.0) })
        }
        #[inline(always)]
        fn neg(self) -> Self {
            NeonVec(unsafe { vnegq_f64(self.0) })
        }
        #[inline(always)]
        fn ge_bits(self, o: Self) -> u16 {
            let m = unsafe { vcgeq_f64(self.0, o.0) };
            unsafe {
                (vgetq_lane_u64::<0>(m) & 1) as u16 | ((vgetq_lane_u64::<1>(m) & 1) << 1) as u16
            }
        }
        #[inline(always)]
        fn gt_bits(self, o: Self) -> u16 {
            let m = unsafe { vcgtq_f64(self.0, o.0) };
            unsafe {
                (vgetq_lane_u64::<0>(m) & 1) as u16 | ((vgetq_lane_u64::<1>(m) & 1) << 1) as u16
            }
        }
        #[inline(always)]
        fn eq_bits(self, o: Self) -> u16 {
            let m = unsafe { vceqq_f64(self.0, o.0) };
            unsafe {
                (vgetq_lane_u64::<0>(m) & 1) as u16 | ((vgetq_lane_u64::<1>(m) & 1) << 1) as u16
            }
        }
        #[inline(always)]
        fn blend_bits(bits: u16, on_true: Self, on_false: Self) -> Self {
            let mask = unsafe { vld1q_u64(NEON_MASKS[(bits & 0b11) as usize].as_ptr()) };
            NeonVec(unsafe { vbslq_f64(mask, on_true.0, on_false.0) })
        }
    }
}

// ---------------------------------------------------------------------------
// Generic block kernels
// ---------------------------------------------------------------------------

/// `sqrt(a² + b²)` per lane, mirroring [`crate::eigen::pythag`]'s decision
/// tree with IEEE-exact selects: each lane computes the branch the scalar
/// function would take with the exact ops it would use; the branch it
/// would not take produces garbage that the blend discards. Returns exact
/// `+0.0` only when both inputs are zero, like the scalar function.
#[inline(always)]
fn pythag_v<V: LaneVec>(a: V, b: V) -> V {
    let absa = a.abs();
    let absb = b.abs();
    let one = V::splat(1.0);
    let zero = V::splat(0.0);
    let a_gt_b = absa.gt_bits(absb);
    let ra = absb.div(absa);
    let va = absa.mul(one.add(ra.mul(ra)).sqrt());
    let rb = absa.div(absb);
    let vb = absb.mul(one.add(rb.mul(rb)).sqrt());
    let b_zero = absb.eq_bits(zero);
    V::blend_bits(a_gt_b, va, V::blend_bits(b_zero, zero, vb))
}

/// Values-only Householder tridiagonalisation of the `V::WIDTH` SoA lanes
/// starting at lane `base`: the explicit-SIMD mirror of the scalar lane
/// loop in `crate::batch::batch_tred2`, op for op per lane. The per-lane
/// zero-scale skip becomes a lane mask: masked-off lanes keep computing
/// (their garbage is IEEE-legal) but every store blends against the mask,
/// so their memory never changes except where the scalar driver writes it.
///
/// # Safety
///
/// `base + V::WIDTH <= lanes`, `z.len() >= n*n*lanes`, `e.len() >=
/// n*lanes`, and the host must support `V`'s ISA.
#[inline(always)]
unsafe fn tred2_block<V: LaneVec>(
    z: &mut [f64],
    n: usize,
    lanes: usize,
    base: usize,
    e: &mut [f64],
) {
    debug_assert!(base + V::WIDTH <= lanes);
    debug_assert!(z.len() >= n * n * lanes && e.len() >= n * lanes);
    let zp = z.as_mut_ptr();
    let ep = e.as_mut_ptr();
    let zero = V::splat(0.0);

    for i in (1..n).rev() {
        let l = i - 1;
        if l == 0 {
            // i == 1: the reduction is trivial, e[1] = z[1, 0].
            V::load(zp.add(i * n * lanes + base)).store(ep.add(i * lanes + base));
            continue;
        }

        // scale = Σ_k |z[i, k]| over the active row prefix.
        let mut scale = zero;
        for k in 0..=l {
            scale = scale.add(V::load(zp.add((i * n + k) * lanes + base)).abs());
        }
        let skip = scale.eq_bits(zero);
        let live = !skip & V::FULL;
        if skip != 0 {
            // Skipped lanes take the scalar driver's trivial row: e[i] =
            // z[i, l], everything else untouched.
            let off = i * lanes + base;
            let trivial = V::load(zp.add((i * n + l) * lanes + base));
            V::blend_bits(skip, trivial, V::load(ep.add(off))).store(ep.add(off));
            if live == 0 {
                continue;
            }
        }

        // Normalise the row by its scale and accumulate h = Σ v².
        let mut h = zero;
        for k in 0..=l {
            let off = (i * n + k) * lanes + base;
            let orig = V::load(zp.add(off));
            let v = orig.div(scale);
            V::blend_bits(live, v, orig).store(zp.add(off));
            h = h.add(V::blend_bits(live, v.mul(v), zero));
        }
        // Householder head: choose the reflection sign per lane.
        let off_l = (i * n + l) * lanes + base;
        let f = V::load(zp.add(off_l));
        let sqrt_h = h.sqrt();
        let g = V::blend_bits(f.ge_bits(zero), sqrt_h.neg(), sqrt_h);
        {
            let off = i * lanes + base;
            V::blend_bits(live, scale.mul(g), V::load(ep.add(off))).store(ep.add(off));
        }
        let h = V::blend_bits(live, h.sub(f.mul(g)), h);
        V::blend_bits(live, f.sub(g), f).store(zp.add(off_l));

        // p = A·v (stored in e[0..=l]) and facc = vᵀ·p. The accumulation
        // loops run unmasked (garbage in skipped lanes is never stored).
        let mut facc = zero;
        for j in 0..=l {
            let mut gv = zero;
            for k in 0..=j {
                gv = gv.add(
                    V::load(zp.add((j * n + k) * lanes + base))
                        .mul(V::load(zp.add((i * n + k) * lanes + base))),
                );
            }
            for k in (j + 1)..=l {
                gv = gv.add(
                    V::load(zp.add((k * n + j) * lanes + base))
                        .mul(V::load(zp.add((i * n + k) * lanes + base))),
                );
            }
            let off = j * lanes + base;
            let v = gv.div(h);
            V::blend_bits(live, v, V::load(ep.add(off))).store(ep.add(off));
            facc = facc.add(V::blend_bits(
                live,
                v.mul(V::load(zp.add((i * n + j) * lanes + base))),
                zero,
            ));
        }
        let hh = facc.div(h.add(h));
        // Rank-2 update A ← A - v·qᵀ - q·vᵀ on the lower triangle.
        for j in 0..=l {
            let fv = V::load(zp.add((i * n + j) * lanes + base));
            let ej_off = j * lanes + base;
            let ej = V::load(ep.add(ej_off));
            let gv = ej.sub(hh.mul(fv));
            V::blend_bits(live, gv, ej).store(ep.add(ej_off));
            for k in 0..=j {
                let off = (j * n + k) * lanes + base;
                let zjk = V::load(zp.add(off));
                let delta = fv
                    .mul(V::load(ep.add(k * lanes + base)))
                    .add(gv.mul(V::load(zp.add((i * n + k) * lanes + base))));
                V::blend_bits(live, zjk.sub(delta), zjk).store(zp.add(off));
            }
        }
    }
    // Final sub-diagonal slot, matching the scalar driver's e[0] = 0.
    zero.store(ep.add(base));
}

/// Values-only implicit-QL sweep of the `V::WIDTH` SoA lanes starting at
/// lane `base`: the explicit-SIMD mirror of `crate::batch::batch_tqli`'s
/// lane loop. All data-dependent control flow stays scalar per lane — the
/// split-point search, the shift initialisation, iteration counting and
/// convergence — while the hot rotation recurrence runs vectorised with
/// the lane registers (`s`, `c`, `g`, `p`, `r`) held in vectors across the
/// descending rotation index. The rare degenerate rotation (`r == 0`) is
/// handled by a scalar fixup exactly where the scalar driver takes its
/// early-out branch. Expects the caller to have already shifted `e` down
/// one slot (as both scalar drivers do first).
///
/// # Safety
///
/// `base + V::WIDTH <= lanes`, `d.len() >= n*lanes`, `e.len() >=
/// n*lanes`, `n >= 1`, and the host must support `V`'s ISA.
#[inline(always)]
unsafe fn tqli_block<V: LaneVec>(
    d: &mut [f64],
    e: &mut [f64],
    n: usize,
    lanes: usize,
    base: usize,
) -> Result<()> {
    debug_assert!(base + V::WIDTH <= lanes);
    debug_assert!(d.len() >= n * lanes && e.len() >= n * lanes);
    let w = V::WIDTH;
    let zero = V::splat(0.0);
    let two = V::splat(2.0);
    let mut m_arr = [0usize; LANE_CAP];
    let mut iter = [0usize; LANE_CAP];
    let mut active = [false; LANE_CAP];
    let mut done = [false; LANE_CAP];
    let mut fixed = [false; LANE_CAP];
    let mut init = [0.0f64; LANE_CAP];
    let mut spill = [0.0f64; LANE_CAP];

    for l in 0..n {
        iter[..w].fill(0);
        loop {
            // Per-lane search for a small off-diagonal split element.
            let mut any_active = false;
            let mut max_m = l;
            for lane in 0..w {
                let at = |i: usize| i * lanes + base + lane;
                let mut m = l;
                while m + 1 < n {
                    let dd = d[at(m)].abs() + d[at(m + 1)].abs();
                    if e[at(m)].abs() <= f64::EPSILON * dd {
                        break;
                    }
                    m += 1;
                }
                m_arr[lane] = m;
                active[lane] = m > l;
                if active[lane] {
                    any_active = true;
                    max_m = max_m.max(m);
                }
            }
            if !any_active {
                break;
            }

            // Per-lane shift initialisation (scalar: one-off per pass).
            let (mut sv, mut cv, mut gv, mut pv, mut rv);
            {
                let mut s_a = [0.0f64; LANE_CAP];
                let mut c_a = [0.0f64; LANE_CAP];
                let mut g_a = [0.0f64; LANE_CAP];
                let mut r_a = [0.0f64; LANE_CAP];
                for lane in 0..w {
                    if !active[lane] {
                        continue;
                    }
                    iter[lane] += 1;
                    if iter[lane] > MAX_QL_ITERATIONS {
                        return Err(LinalgError::NoConvergence {
                            algorithm: "batched symmetric QL iteration",
                            iterations: MAX_QL_ITERATIONS,
                        });
                    }
                    let at = |i: usize| i * lanes + base + lane;
                    let el = e[at(l)];
                    let mut g = (d[at(l + 1)] - d[at(l)]) / (2.0 * el);
                    let r = pythag(g, 1.0);
                    g = d[at(m_arr[lane])] - d[at(l)]
                        + el / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
                    g_a[lane] = g;
                    s_a[lane] = 1.0;
                    c_a[lane] = 1.0;
                    r_a[lane] = r;
                    done[lane] = false;
                    fixed[lane] = false;
                }
                sv = V::load(s_a.as_ptr());
                cv = V::load(c_a.as_ptr());
                gv = V::load(g_a.as_ptr());
                pv = zero;
                rv = V::load(r_a.as_ptr());
            }

            // Lockstep plane rotations: lane `k` participates exactly for
            // its own index range `l..m[k]`, in descending order, with the
            // rotation registers held in vectors across iterations.
            for i in (l..max_m).rev() {
                let mut alive: u16 = 0;
                for lane in 0..w {
                    if active[lane] && !done[lane] && i < m_arr[lane] {
                        alive |= 1 << lane;
                    }
                }
                if alive == 0 {
                    continue;
                }
                let ei = V::load(e.as_ptr().add(i * lanes + base));
                let f = sv.mul(ei);
                let b = cv.mul(ei);
                let r_new = pythag_v::<V>(f, gv);
                {
                    let off = (i + 1) * lanes + base;
                    let old = V::load(e.as_ptr().add(off));
                    V::blend_bits(alive, r_new, old).store(e.as_mut_ptr().add(off));
                }
                let r_zero = r_new.eq_bits(zero) & alive;
                if r_zero != 0 {
                    // Degenerate rotation: the scalar driver's early-out
                    // branch, taken per lane (rare — both f and g zero).
                    pv.store(spill.as_mut_ptr());
                    for lane in 0..w {
                        if r_zero >> lane & 1 == 1 {
                            d[(i + 1) * lanes + base + lane] -= spill[lane];
                            e[m_arr[lane] * lanes + base + lane] = 0.0;
                            done[lane] = true;
                            fixed[lane] = true;
                        }
                    }
                }
                let alive2 = alive & !r_zero;
                if alive2 == 0 {
                    continue;
                }
                let s_new = f.div(r_new);
                let c_new = gv.div(r_new);
                let g1 = V::load(d.as_ptr().add((i + 1) * lanes + base)).sub(pv);
                let r2 = V::load(d.as_ptr().add(i * lanes + base))
                    .sub(g1)
                    .mul(s_new)
                    .add(two.mul(c_new).mul(b));
                let p_new = s_new.mul(r2);
                {
                    let off = (i + 1) * lanes + base;
                    let old = V::load(d.as_ptr().add(off));
                    V::blend_bits(alive2, g1.add(p_new), old).store(d.as_mut_ptr().add(off));
                }
                let g_new = c_new.mul(r2).sub(b);
                sv = V::blend_bits(alive2, s_new, sv);
                cv = V::blend_bits(alive2, c_new, cv);
                gv = V::blend_bits(alive2, g_new, gv);
                pv = V::blend_bits(alive2, p_new, pv);
                rv = V::blend_bits(alive2, r2, rv);
            }

            // Per-lane tail, mirroring the scalar `if r == 0 && m > l`
            // early-out (fixed lanes carry r = 0 by construction).
            pv.store(spill.as_mut_ptr());
            gv.store(init.as_mut_ptr());
            let mut r_s = [0.0f64; LANE_CAP];
            rv.store(r_s.as_mut_ptr());
            for lane in 0..w {
                if !active[lane] {
                    continue;
                }
                let r_l = if fixed[lane] { 0.0 } else { r_s[lane] };
                if r_l == 0.0 && m_arr[lane] > l {
                    continue;
                }
                let at = |i: usize| i * lanes + base + lane;
                d[at(l)] -= spill[lane];
                e[at(l)] = init[lane];
                e[at(m_arr[lane])] = 0.0;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Target-feature wrappers and dispatch
// ---------------------------------------------------------------------------

// The generic kernels are `#[inline(always)]` all the way down to the
// intrinsics, so monomorphising them inside a `#[target_feature]` wrapper
// compiles the whole phase with that ISA enabled — the supported pattern
// for feature-gated codegen without a global `-C target-cpu`.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tred2_avx2(z: &mut [f64], n: usize, lanes: usize, base: usize, e: &mut [f64]) {
    tred2_block::<x86::Avx2Vec>(z, n, lanes, base, e)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tqli_avx2(
    d: &mut [f64],
    e: &mut [f64],
    n: usize,
    lanes: usize,
    base: usize,
) -> Result<()> {
    tqli_block::<x86::Avx2Vec>(d, e, n, lanes, base)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tred2_avx512(z: &mut [f64], n: usize, lanes: usize, base: usize, e: &mut [f64]) {
    tred2_block::<x86::Avx512Vec>(z, n, lanes, base, e)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn tqli_avx512(
    d: &mut [f64],
    e: &mut [f64],
    n: usize,
    lanes: usize,
    base: usize,
) -> Result<()> {
    tqli_block::<x86::Avx512Vec>(d, e, n, lanes, base)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn tred2_neon(z: &mut [f64], n: usize, lanes: usize, base: usize, e: &mut [f64]) {
    tred2_block::<arm::NeonVec>(z, n, lanes, base, e)
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn tqli_neon(
    d: &mut [f64],
    e: &mut [f64],
    n: usize,
    lanes: usize,
    base: usize,
) -> Result<()> {
    tqli_block::<arm::NeonVec>(d, e, n, lanes, base)
}

/// Runs the explicit-SIMD Householder phase over all `lanes` on `path`:
/// full `lane_width` blocks through the ISA wrapper, tail lanes one at a
/// time through the width-1 instantiation of the same generic kernel.
/// Must only be called with a path that [`SimdPath::is_available`] — the
/// resolver guarantees this; `Scalar` routes to the width-1 kernel.
pub(crate) fn dispatch_tred2(path: SimdPath, z: &mut [f64], n: usize, lanes: usize, e: &mut [f64]) {
    debug_assert!(path.is_available());
    let width = path.lane_width();
    let mut base = 0;
    while base < lanes {
        if width > 1 && base + width <= lanes {
            match path {
                #[cfg(target_arch = "x86_64")]
                SimdPath::Avx2 => unsafe { tred2_avx2(z, n, lanes, base, e) },
                #[cfg(target_arch = "x86_64")]
                SimdPath::Avx512 => unsafe { tred2_avx512(z, n, lanes, base, e) },
                #[cfg(target_arch = "aarch64")]
                SimdPath::Neon => unsafe { tred2_neon(z, n, lanes, base, e) },
                _ => unreachable!("dispatched SIMD path unavailable on this architecture"),
            }
            base += width;
        } else {
            unsafe { tred2_block::<ScalarLane>(z, n, lanes, base, e) };
            base += 1;
        }
    }
}

/// Runs the explicit-SIMD QL phase over all `lanes` on `path` (including
/// the initial `e` shift-down both scalar drivers perform). Same block /
/// tail structure and availability contract as [`dispatch_tred2`].
pub(crate) fn dispatch_tqli(
    path: SimdPath,
    d: &mut [f64],
    e: &mut [f64],
    n: usize,
    lanes: usize,
) -> Result<()> {
    debug_assert!(path.is_available());
    for i in 1..n {
        for lane in 0..lanes {
            e[(i - 1) * lanes + lane] = e[i * lanes + lane];
        }
    }
    for lane in 0..lanes {
        e[(n - 1) * lanes + lane] = 0.0;
    }
    let width = path.lane_width();
    let mut base = 0;
    while base < lanes {
        if width > 1 && base + width <= lanes {
            match path {
                #[cfg(target_arch = "x86_64")]
                SimdPath::Avx2 => unsafe { tqli_avx2(d, e, n, lanes, base)? },
                #[cfg(target_arch = "x86_64")]
                SimdPath::Avx512 => unsafe { tqli_avx512(d, e, n, lanes, base)? },
                #[cfg(target_arch = "aarch64")]
                SimdPath::Neon => unsafe { tqli_neon(d, e, n, lanes, base)? },
                _ => unreachable!("dispatched SIMD path unavailable on this architecture"),
            }
            base += width;
        } else {
            unsafe { tqli_block::<ScalarLane>(d, e, n, lanes, base)? };
            base += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolver_accepts_every_documented_value() {
        assert_eq!(resolve_simd_env_value(None).unwrap(), SimdChoice::Auto);
        assert_eq!(
            resolve_simd_env_value(Some("auto")).unwrap(),
            SimdChoice::Auto
        );
        for (raw, path) in [
            ("scalar", SimdPath::Scalar),
            ("avx2", SimdPath::Avx2),
            ("avx512", SimdPath::Avx512),
            ("neon", SimdPath::Neon),
        ] {
            assert_eq!(
                resolve_simd_env_value(Some(raw)).unwrap(),
                SimdChoice::Force(path),
                "{raw}"
            );
        }
        // Case-insensitive and whitespace-tolerant, like HAQJSK_BACKEND.
        assert_eq!(
            resolve_simd_env_value(Some("  AVX2 ")).unwrap(),
            SimdChoice::Force(SimdPath::Avx2)
        );
    }

    #[test]
    fn resolver_hard_errors_list_the_valid_names() {
        for bad in ["", "sse2", "avx", "fastest", "auto?"] {
            let err = resolve_simd_env_value(Some(bad)).unwrap_err().to_string();
            assert!(err.contains(SIMD_ENV_VAR), "{bad}: {err}");
            for name in ["auto", "avx512", "avx2", "neon", "scalar"] {
                assert!(err.contains(name), "{bad}: error must list {name}: {err}");
            }
        }
    }

    #[test]
    fn scalar_is_always_available_and_detection_is_consistent() {
        assert!(SimdPath::Scalar.is_available());
        let best = detect_best_path();
        assert!(best.is_available());
        let avail = available_simd_paths();
        assert!(avail.contains(&SimdPath::Scalar));
        assert!(avail.contains(&best));
        for path in avail {
            assert!(path.batch_lanes() <= LANE_CAP);
            assert!(path.lane_width() <= path.batch_lanes());
            assert_eq!(path.batch_lanes() % path.lane_width(), 0);
        }
    }

    #[test]
    fn override_forces_each_available_path_and_rejects_missing_ones() {
        for path in available_simd_paths() {
            set_simd_path(Some(path)).unwrap();
            assert_eq!(active_simd_path().unwrap(), path);
            assert_eq!(active_simd_label(), path.label());
            assert_eq!(max_batch_lanes(), path.batch_lanes());
        }
        set_simd_path(None).unwrap();
        for path in SimdPath::ALL {
            if !path.is_available() {
                let err = set_simd_path(Some(path)).unwrap_err().to_string();
                assert!(err.contains(path.label()), "{err}");
            }
        }
        // After clearing, resolution is env + detection again (the test
        // env does not set the knob, so this is plain detection).
        set_simd_path(None).unwrap();
        assert!(active_simd_path().is_ok());
    }

    #[test]
    fn labels_round_trip_through_the_resolver() {
        for path in SimdPath::ALL {
            assert_eq!(
                resolve_simd_env_value(Some(path.label())).unwrap(),
                SimdChoice::Force(path)
            );
            assert_eq!(SimdPath::ALL[path.index()], path);
        }
    }
}
