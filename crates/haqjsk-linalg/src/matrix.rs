//! Dense, row-major, `f64` matrices.
//!
//! [`Matrix`] is the workhorse type of the whole workspace: adjacency
//! matrices, Laplacians, CTQW density matrices, correspondence matrices and
//! Gram matrices are all stored in this representation. The type favours
//! clarity and predictable performance over generality: it is always dense,
//! always `f64`, and all shape errors are reported through
//! [`LinalgError`](crate::LinalgError) rather than panics (except for indexing,
//! which follows the standard library convention of panicking on
//! out-of-bounds access).

use crate::error::LinalgError;
use crate::Result;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "data length {} does not match shape {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
        }
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a square diagonal matrix with `diag` on its main diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns an element, or `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Sets an element. Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self[(row, col)] = value;
    }

    /// Returns row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Cache-blocked i-k-j microkernel: fixed-size row blocks of `self`/the
    /// output are paired with row blocks of `other`, so a block of `other`
    /// rows stays in cache while several output rows accumulate against it.
    /// Each output element still accumulates its `k` terms in ascending
    /// order, so the result is bit-identical to the unblocked i-k-j loop —
    /// blocking changes the traversal, not the arithmetic.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        const BLOCK: usize = 16;
        let mut out = Matrix::zeros(self.rows, other.cols);
        for ib in (0..self.rows).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(self.rows);
            for kb in (0..self.cols).step_by(BLOCK) {
                let k_end = (kb + BLOCK).min(self.cols);
                for i in ib..i_end {
                    for k in kb..k_end {
                        let a = self.data[i * self.cols + k];
                        if a == 0.0 {
                            continue;
                        }
                        let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                        let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                        for (c, &o) in crow.iter_mut().zip(orow.iter()) {
                            *c += a * o;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let out = (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect();
        Ok(out)
    }

    /// Computes `A^T * A` (always square, symmetric positive semidefinite).
    pub fn gram(&self) -> Matrix {
        let t = self.transpose();
        t.matmul(self).expect("A^T A is always conformable")
    }

    /// Scales all elements by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|x| x * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Trace (sum of the diagonal) of a square matrix.
    pub fn trace(&self) -> f64 {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).sum()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Maximum absolute difference from the transpose, i.e. how far the
    /// matrix is from being symmetric.
    pub fn asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.asymmetry() <= tol
    }

    /// Returns `(self + self^T) / 2`, forcing exact symmetry.
    pub fn symmetrize(&self) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "hadamard",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Extracts the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Returns a new matrix padded with zero rows/columns to `rows x cols`.
    ///
    /// Used by the unaligned QJSK kernel, which expands the density matrix of
    /// the smaller graph with zeros so the composite state can be formed.
    pub fn zero_pad(&self, rows: usize, cols: usize) -> Result<Matrix> {
        if rows < self.rows || cols < self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "cannot pad {}x{} down to {}x{}",
                self.rows, self.cols, rows, cols
            )));
        }
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Extracts the `rows x cols` submatrix with top-left corner `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Result<Matrix> {
        if r0 + rows > self.rows || c0 + cols > self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "submatrix ({r0}+{rows}, {c0}+{cols}) exceeds {}x{}",
                self.rows, self.cols
            )));
        }
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                out[(i, j)] = self[(r0 + i, c0 + j)];
            }
        }
        Ok(out)
    }

    /// Permutes rows and columns of a square matrix by the same permutation:
    /// result[i][j] = self[perm[i]][perm[j]].
    ///
    /// This is exactly the `Q A Q^T` relabelling used in the paper's
    /// permutation-invariance discussion.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if perm.len() != self.rows {
            return Err(LinalgError::InvalidArgument(format!(
                "permutation length {} does not match matrix size {}",
                perm.len(),
                self.rows
            )));
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(LinalgError::InvalidArgument(
                    "not a valid permutation".to_string(),
                ));
            }
            seen[p] = true;
        }
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(i, j)] = self[(perm[i], perm[j])];
            }
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix += shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix -= shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_shape_check() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_ragged_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(2, 2)], 3.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = sample();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let a = sample();
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn trace_sum_norms() {
        let m = sample();
        assert_eq!(m.trace(), 5.0);
        assert_eq!(m.sum(), 10.0);
        assert!((m.frobenius_norm() - (30.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn symmetry_checks() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = sample();
        assert!(!a.is_symmetric(1e-12));
        let sym = a.symmetrize().unwrap();
        assert!(sym.is_symmetric(1e-12));
        assert_eq!(sym[(0, 1)], 2.5);
    }

    #[test]
    fn hadamard_product() {
        let a = sample();
        let h = a.hadamard(&a).unwrap();
        assert_eq!(h[(1, 1)], 16.0);
    }

    #[test]
    fn zero_pad_and_submatrix() {
        let a = sample();
        let p = a.zero_pad(3, 3).unwrap();
        assert_eq!(p.shape(), (3, 3));
        assert_eq!(p[(2, 2)], 0.0);
        assert_eq!(p[(1, 1)], 4.0);
        let s = p.submatrix(0, 0, 2, 2).unwrap();
        assert_eq!(s, a);
        assert!(a.zero_pad(1, 1).is_err());
        assert!(a.submatrix(1, 1, 2, 2).is_err());
    }

    #[test]
    fn permute_symmetric_relabels() {
        let a = Matrix::from_rows(&[
            vec![0.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 0.0],
        ])
        .unwrap();
        let p = a.permute_symmetric(&[2, 1, 0]).unwrap();
        // The path graph 0-1-2 relabelled by reversal is the same matrix.
        assert_eq!(p, a);
        assert!(a.permute_symmetric(&[0, 0, 1]).is_err());
        assert!(a.permute_symmetric(&[0, 1]).is_err());
    }

    #[test]
    fn arithmetic_operators() {
        let a = sample();
        let b = &a + &a;
        assert_eq!(b[(1, 1)], 8.0);
        let c = &b - &a;
        assert_eq!(c, a);
        let d = &a * 2.0;
        assert_eq!(d, b);
        let mut e = a.clone();
        e += &a;
        assert_eq!(e, b);
        e -= &a;
        assert_eq!(e, a);
        let n = -&a;
        assert_eq!(n[(0, 0)], -1.0);
    }

    #[test]
    fn gram_is_symmetric_psd_shaped() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let g = a.gram();
        assert_eq!(g.shape(), (3, 3));
        assert!(g.is_symmetric(1e-12));
    }

    #[test]
    fn row_col_accessors() {
        let a = sample();
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        assert_eq!(a.diagonal(), vec![1.0, 4.0]);
        assert_eq!(a.get(5, 5), None);
        assert_eq!(a.get(0, 1), Some(2.0));
        let rows: Vec<&[f64]> = a.rows_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0]);
    }

    #[test]
    fn map_and_from_fn() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        assert_eq!(m[(1, 1)], 2.0);
        let sq = m.map(|x| x * x);
        assert_eq!(sq[(1, 1)], 4.0);
    }

    #[test]
    fn display_does_not_panic() {
        let text = format!("{}", sample());
        assert!(text.contains("2x2"));
    }
}
