//! Linear assignment via the Hungarian (Kuhn–Munkres) algorithm.
//!
//! The aligned QJSK baseline (Eq. 11 of the paper) follows Umeyama's spectral
//! matching: the vertex-correspondence matrix `Q` is the permutation that
//! maximises the overlap `|Φ_p||Φ_q|ᵀ` of eigenvector magnitudes. Extracting
//! that permutation from the overlap matrix is a linear assignment problem,
//! solved here with the O(n³) Jonker-style shortest augmenting path variant of
//! the Hungarian algorithm.

/// Solves the minimum-cost assignment problem for a square cost matrix given
/// in row-major order (`cost[i * n + j]` is the cost of assigning row `i` to
/// column `j`).
///
/// Returns `assignment` where `assignment[i] = j` means row `i` is matched to
/// column `j`, together with the total cost of the optimal assignment.
///
/// For rectangular problems, pad the cost matrix with a large constant before
/// calling (the callers in this workspace always pad to square).
pub fn hungarian(cost: &[f64], n: usize) -> (Vec<usize>, f64) {
    assert_eq!(cost.len(), n * n, "cost matrix must be n*n");
    if n == 0 {
        return (vec![], 0.0);
    }

    // Shortest augmenting path formulation (1-indexed internally, as in the
    // classical presentation) — O(n^3).
    const INF: f64 = f64::INFINITY;
    let mut u = vec![0.0_f64; n + 1];
    let mut v = vec![0.0_f64; n + 1];
    // p[j] = row assigned to column j (0 = none).
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total: f64 = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i * n + j])
        .sum();
    (assignment, total)
}

/// Solves the **maximum**-profit assignment problem by negating the profit
/// matrix and running [`hungarian`]. Returns the assignment and the total
/// profit.
pub fn hungarian_max(profit: &[f64], n: usize) -> (Vec<usize>, f64) {
    let neg: Vec<f64> = profit.iter().map(|&x| -x).collect();
    let (assignment, neg_total) = hungarian(&neg, n);
    (assignment, -neg_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force over all permutations; only usable for tiny n.
    fn brute_force_min(cost: &[f64], n: usize) -> f64 {
        fn permute(
            remaining: &mut Vec<usize>,
            chosen: &mut Vec<usize>,
            best: &mut f64,
            cost: &[f64],
            n: usize,
        ) {
            if remaining.is_empty() {
                let total: f64 = chosen
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| cost[i * n + j])
                    .sum();
                if total < *best {
                    *best = total;
                }
                return;
            }
            for idx in 0..remaining.len() {
                let j = remaining.remove(idx);
                chosen.push(j);
                permute(remaining, chosen, best, cost, n);
                chosen.pop();
                remaining.insert(idx, j);
            }
        }
        let mut best = f64::INFINITY;
        let mut remaining: Vec<usize> = (0..n).collect();
        permute(&mut remaining, &mut Vec::new(), &mut best, cost, n);
        best
    }

    #[test]
    fn trivial_cases() {
        let (a, c) = hungarian(&[], 0);
        assert!(a.is_empty());
        assert_eq!(c, 0.0);
        let (a, c) = hungarian(&[5.0], 1);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 5.0);
    }

    #[test]
    fn known_three_by_three() {
        // Classic example: optimal cost is 5 (0->1, 1->0, 2->2 style).
        let cost = vec![
            4.0, 1.0, 3.0, //
            2.0, 0.0, 5.0, //
            3.0, 2.0, 2.0, //
        ];
        let (assignment, total) = hungarian(&cost, 3);
        assert_eq!(total, 5.0);
        // Assignment must be a permutation.
        let mut seen = vec![false; 3];
        for &j in &assignment {
            assert!(!seen[j]);
            seen[j] = true;
        }
    }

    #[test]
    fn identity_cost_prefers_diagonal() {
        // Cost 0 on the diagonal and 1 elsewhere: optimal = diagonal.
        let n = 5;
        let mut cost = vec![1.0; n * n];
        for i in 0..n {
            cost[i * n + i] = 0.0;
        }
        let (assignment, total) = hungarian(&cost, n);
        assert_eq!(total, 0.0);
        for (i, &j) in assignment.iter().enumerate() {
            assert_eq!(i, j);
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut state: u64 = 7;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for n in 2..=5 {
            for _ in 0..5 {
                let cost: Vec<f64> = (0..n * n).map(|_| next() * 10.0).collect();
                let (_, total) = hungarian(&cost, n);
                let best = brute_force_min(&cost, n);
                assert!((total - best).abs() < 1e-9, "n={n}: {total} vs {best}");
            }
        }
    }

    #[test]
    fn max_variant_maximises() {
        let profit = vec![
            1.0, 9.0, //
            9.0, 1.0, //
        ];
        let (assignment, total) = hungarian_max(&profit, 2);
        assert_eq!(total, 18.0);
        assert_eq!(assignment, vec![1, 0]);
    }

    #[test]
    fn handles_negative_costs() {
        let cost = vec![
            -5.0, 2.0, //
            3.0, -4.0, //
        ];
        let (assignment, total) = hungarian(&cost, 2);
        assert_eq!(assignment, vec![0, 1]);
        assert_eq!(total, -9.0);
    }
}
