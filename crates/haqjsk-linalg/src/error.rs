//! Error type shared by the linear-algebra routines.

use std::fmt;

/// Errors produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes, e.g. multiplying a `3x4` matrix
    /// by a `3x4` matrix.
    ShapeMismatch {
        /// Human readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The operation requires a square matrix but a rectangular one was given.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// inverted / solved against.
    Singular,
    /// An iterative algorithm (eigen iteration, k-means, SMO, ...) failed to
    /// converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Iteration budget that was exhausted.
        iterations: usize,
    },
    /// A matrix expected to be symmetric was not, beyond tolerance.
    NotSymmetric {
        /// Maximum absolute asymmetry that was observed.
        max_asymmetry: f64,
    },
    /// An argument was outside its valid domain (empty input, negative
    /// dimension, ...).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::NotSymmetric { max_asymmetry } => {
                write!(
                    f,
                    "matrix is not symmetric (max asymmetry {max_asymmetry:e})"
                )
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (2, 3),
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
    }

    #[test]
    fn display_not_square() {
        let err = LinalgError::NotSquare { rows: 3, cols: 5 };
        assert!(err.to_string().contains("3x5"));
    }

    #[test]
    fn display_singular_and_convergence() {
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
        let err = LinalgError::NoConvergence {
            algorithm: "ql",
            iterations: 30,
        };
        assert!(err.to_string().contains("ql"));
        assert!(err.to_string().contains("30"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&LinalgError::Singular);
    }
}
