//! # haqjsk-linalg
//!
//! Dense linear-algebra substrate for the HAQJSK reproduction.
//!
//! The HAQJSK kernels (and every baseline quantum kernel they are compared
//! against) are built on a small number of numerical primitives:
//!
//! * dense real matrices and vectors ([`Matrix`], [`vector`]),
//! * the symmetric eigendecomposition used to evolve continuous-time quantum
//!   walks and to compute von Neumann entropies ([`eigen`]),
//! * linear solvers and matrix inverses ([`solve`]),
//! * complex arithmetic for finite-time CTQW evolution ([`Complex`],
//!   [`CMatrix`]),
//! * the Hungarian (Kuhn–Munkres) assignment algorithm used by the Umeyama
//!   spectral matching step of the aligned QJSK baseline ([`assignment`]),
//! * small statistical helpers shared by the clustering and evaluation code
//!   ([`stats`]).
//!
//! Everything is implemented from scratch on top of `std` so that the
//! workspace has no dependency on external numerics crates. All matrices that
//! appear in the paper (adjacency matrices, Laplacians, CTQW density matrices,
//! Gram matrices) are real and symmetric, for which the classic Householder
//! tridiagonalisation followed by the implicit-shift QL iteration is exact and
//! robust.

pub mod assignment;
pub mod batch;
pub mod cmatrix;
pub mod complex;
pub mod eigen;
pub mod error;
pub mod matrix;
pub mod simd;
pub mod solve;
pub mod stats;
pub mod vector;

pub use assignment::hungarian;
pub use batch::{
    batch_solve_stats, batch_symmetric_eigenvalues, register_batch_metrics, BatchEigenWorkspace,
    BatchSolveStats, MAX_BATCH_LANES,
};
pub use cmatrix::CMatrix;
pub use complex::Complex;
pub use eigen::{symmetric_eigen, symmetric_eigenvalues, EigenWorkspace, SymmetricEigen};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use simd::{
    active_simd_label, active_simd_path, available_simd_paths, max_batch_lanes,
    resolve_simd_env_value, set_simd_path, SimdChoice, SimdPath, SIMD_ENV_VAR,
};
pub use solve::{determinant, inverse, solve};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Absolute tolerance used by the crate's convergence checks and tests.
pub const EPS: f64 = 1e-10;
