//! Symmetric eigendecomposition.
//!
//! The whole quantum-kernel machinery of the paper rests on the spectral
//! decomposition `L = Φ Λ Φᵀ` of graph Laplacians (Eq. 3) and on the
//! eigenvalues of density matrices (the von Neumann entropy of Eq. 6–7).
//! Both are real symmetric, so we implement the textbook two-phase algorithm:
//!
//! 1. **Householder tridiagonalisation** (`tred2`): reduce the symmetric
//!    matrix to tridiagonal form, optionally accumulating the orthogonal
//!    transformation.
//! 2. **Implicit-shift QL iteration** (`tqli`): diagonalise the tridiagonal
//!    matrix, optionally rotating the accumulated transformation into the
//!    eigenvector matrix.
//!
//! Both phases share one core and come in two drivers: the full
//! decomposition ([`symmetric_eigen`]) and a values-only path
//! ([`symmetric_eigenvalues`]) that skips every eigenvector operation — the
//! orthogonal-transform accumulation in `tred2` and the row rotations in the
//! QL sweep — which is 2–4× fewer flops and needs only O(n) memory beyond
//! the tridiagonal working copy. The eigen*values* the two drivers produce
//! are **bit-identical**: the skipped operations never feed back into the
//! `d`/`e` recurrences. Repeated values-only solves (the O(N²) kernel pair
//! loops) should reuse an [`EigenWorkspace`] so the hot loop stops
//! allocating; [`symmetric_eigenvalues`] does this internally through a
//! thread-local workspace.
//!
//! Eigenvalues are returned in ascending order, matching the paper's
//! convention `λ₁ < λ₂ < … < λ|V|`.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;
use std::cell::RefCell;

/// Result of a symmetric eigendecomposition `A = Q diag(λ) Qᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors stored as the **columns** of this matrix, in
    /// the same order as `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Reconstructs `Q diag(λ) Qᵀ`; useful for testing round-trip accuracy.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let q = &self.eigenvectors;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += q[(i, k)] * self.eigenvalues[k] * q[(j, k)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Applies a scalar function to the spectrum: returns `Q diag(f(λ)) Qᵀ`.
    ///
    /// This is how matrix functions (e.g. `exp`, `log`, `sqrt`) of symmetric
    /// matrices are computed throughout the workspace.
    pub fn map_spectrum(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let n = self.eigenvalues.len();
        let q = &self.eigenvectors;
        let mapped: Vec<f64> = self.eigenvalues.iter().map(|&l| f(l)).collect();
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += q[(i, k)] * mapped[k] * q[(j, k)];
                }
                out[(i, j)] = acc;
                out[(j, i)] = acc;
            }
        }
        out
    }

    /// Smallest eigenvalue.
    pub fn min_eigenvalue(&self) -> f64 {
        self.eigenvalues.first().copied().unwrap_or(0.0)
    }

    /// Largest eigenvalue.
    pub fn max_eigenvalue(&self) -> f64 {
        self.eigenvalues.last().copied().unwrap_or(0.0)
    }

    /// Groups eigenvalue indices into eigenspaces of (numerically) equal
    /// eigenvalues. The paper's closed-form density matrix (Eq. 5) sums over
    /// the basis `B_λ` of each distinct eigenvalue's eigenspace; this helper
    /// provides exactly that partition.
    pub fn eigenspaces(&self, tol: f64) -> Vec<(f64, Vec<usize>)> {
        let mut spaces: Vec<(f64, Vec<usize>)> = Vec::new();
        for (idx, &lambda) in self.eigenvalues.iter().enumerate() {
            match spaces.last_mut() {
                Some((rep, members)) if (lambda - *rep).abs() <= tol => members.push(idx),
                _ => spaces.push((lambda, vec![idx])),
            }
        }
        spaces
    }
}

/// Maximum QL sweeps per eigenvalue before declaring non-convergence.
pub(crate) const MAX_QL_ITERATIONS: usize = 64;

/// `sqrt(a² + b²)` without destructive overflow — the classic `pythag`
/// scaling. Used by every QL sweep (scalar and batched) instead of the libm
/// `hypot` call: it inlines to a handful of arithmetic ops (and therefore
/// vectorizes), and because the scalar and batched drivers share this exact
/// function their rotation sequences stay bit-identical. Returns exactly
/// `0.0` only when both inputs are zero, which the sweeps rely on for their
/// degenerate-rotation check.
#[inline(always)]
pub(crate) fn pythag(a: f64, b: f64) -> f64 {
    let absa = a.abs();
    let absb = b.abs();
    if absa > absb {
        let r = absb / absa;
        absa * (1.0 + r * r).sqrt()
    } else if absb == 0.0 {
        0.0
    } else {
        let r = absa / absb;
        absb * (1.0 + r * r).sqrt()
    }
}

/// Validates shape and symmetry; returns the dimension.
pub(crate) fn check_symmetric(a: &Matrix) -> Result<usize> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let asym = a.asymmetry();
    let scale = a.max_abs().max(1.0);
    if asym > 1e-6 * scale {
        return Err(LinalgError::NotSymmetric {
            max_asymmetry: asym,
        });
    }
    Ok(a.rows())
}

/// Phase 1: Householder reduction of the symmetrised matrix stored row-major
/// in `z` (length `n*n`) to tridiagonal form (`tred2`). `d` receives the
/// diagonal, `e` the sub-diagonal. With `accumulate` the orthogonal
/// transformation is accumulated in `z` for the eigenvector driver; without
/// it every eigenvector-only operation is skipped. The skipped writes are
/// never read back by the reduction itself, so `d`/`e` are bit-identical
/// either way.
fn tred2(z: &mut [f64], n: usize, d: &mut [f64], e: &mut [f64], accumulate: bool) {
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[i * n + k].abs();
            }
            if scale == 0.0 {
                e[i] = z[i * n + l];
            } else {
                for k in 0..=l {
                    z[i * n + k] /= scale;
                    h += z[i * n + k] * z[i * n + k];
                }
                let mut f = z[i * n + l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[i * n + l] = f - g;
                f = 0.0;
                for j in 0..=l {
                    if accumulate {
                        // Store the scaled Householder vector for phase-2
                        // accumulation; the reduction never reads it back.
                        z[j * n + i] = z[i * n + j] / h;
                    }
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[j * n + k] * z[i * n + k];
                    }
                    for k in (j + 1)..=l {
                        g += z[k * n + j] * z[i * n + k];
                    }
                    e[j] = g / h;
                    f += e[j] * z[i * n + j];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[i * n + j];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[i * n + k];
                        z[j * n + k] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[i * n + l];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if accumulate {
            if d[i] != 0.0 {
                for j in 0..i {
                    let mut g = 0.0;
                    for k in 0..i {
                        g += z[i * n + k] * z[k * n + j];
                    }
                    for k in 0..i {
                        let delta = g * z[k * n + i];
                        z[k * n + j] -= delta;
                    }
                }
            }
            d[i] = z[i * n + i];
            z[i * n + i] = 1.0;
            for j in 0..i {
                z[j * n + i] = 0.0;
                z[i * n + j] = 0.0;
            }
        } else {
            d[i] = z[i * n + i];
        }
    }
}

/// Phase 2: implicit-shift QL iteration on the tridiagonal matrix (`tqli`).
/// When `z` is given, every plane rotation is applied to its columns so it
/// becomes the eigenvector matrix; without it the sweep touches only the
/// O(n) `d`/`e` recurrences, whose arithmetic is identical in both modes.
fn tqli(d: &mut [f64], e: &mut [f64], n: usize, mut z: Option<&mut [f64]>) -> Result<()> {
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERATIONS {
                return Err(LinalgError::NoConvergence {
                    algorithm: "symmetric QL iteration",
                    iterations: MAX_QL_ITERATIONS,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = pythag(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = pythag(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                if let Some(z) = z.as_deref_mut() {
                    for k in 0..n {
                        f = z[k * n + i + 1];
                        z[k * n + i + 1] = s * z[k * n + i] + c * f;
                        z[k * n + i] = c * z[k * n + i] - s * f;
                    }
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Computes the eigendecomposition of a symmetric matrix.
///
/// The input is symmetrised (`(A + Aᵀ)/2`) before decomposition so that tiny
/// floating-point asymmetries produced by upstream accumulation do not poison
/// the result; a genuinely asymmetric matrix is rejected.
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    let n = check_symmetric(a)?;
    if n == 0 {
        return Ok(SymmetricEigen {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }
    let a = a.symmetrize()?;

    if n == 1 {
        return Ok(SymmetricEigen {
            eigenvalues: vec![a[(0, 0)]],
            eigenvectors: Matrix::identity(1),
        });
    }

    // `z` starts as the symmetrised input and is transformed in place into
    // the (unsorted) eigenvector matrix by the two phases.
    let mut z = a;
    let mut d = vec![0.0_f64; n];
    let mut e = vec![0.0_f64; n];
    tred2(z.data_mut(), n, &mut d, &mut e, true);
    tqli(&mut d, &mut e, n, Some(z.data_mut()))?;

    // Sort eigenvalues ascending and permute eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("eigenvalues are finite"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            eigenvectors[(row, new_col)] = z[(row, old_col)];
        }
    }

    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Reusable scratch buffers for values-only eigenvalue computation.
///
/// A values-only solve still needs an `n × n` working copy for the
/// Householder reduction; the workspace keeps that copy (plus the `d`/`e`
/// tridiagonal buffers) alive across calls so the O(N²) kernel pair loops
/// stop allocating per solve. Buffers grow to the largest dimension seen
/// and are reused for every smaller one.
#[derive(Debug, Default)]
pub struct EigenWorkspace {
    scratch: Vec<f64>,
    d: Vec<f64>,
    e: Vec<f64>,
}

impl EigenWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        EigenWorkspace::default()
    }

    /// Capacity (in `f64` elements) of the matrix scratch buffer — exposed
    /// so tests can assert that repeated solves reuse the allocation.
    pub fn scratch_capacity(&self) -> usize {
        self.scratch.capacity()
    }

    /// Eigenvalues of a symmetric matrix in ascending order, without
    /// eigenvectors, reusing this workspace's buffers. The returned slice
    /// borrows the workspace and is valid until the next call.
    ///
    /// Bit-identical to `symmetric_eigen(a)?.eigenvalues`: the eigenvector
    /// operations the values-only drivers skip never feed back into the
    /// eigenvalue recurrences, and the ascending sort is stable in both.
    pub fn eigenvalues(&mut self, a: &Matrix) -> Result<&[f64]> {
        let n = check_symmetric(a)?;
        if n == 0 {
            return Ok(&[]);
        }
        if self.scratch.len() < n * n {
            self.scratch.resize(n * n, 0.0);
        }
        if self.d.len() < n {
            self.d.resize(n, 0.0);
            self.e.resize(n, 0.0);
        }
        // Symmetrise straight into the scratch buffer (same arithmetic as
        // `Matrix::symmetrize`, without the intermediate allocation).
        let data = a.data();
        for i in 0..n {
            for j in 0..n {
                self.scratch[i * n + j] = 0.5 * (data[i * n + j] + data[j * n + i]);
            }
        }
        if n == 1 {
            self.d[0] = self.scratch[0];
            return Ok(&self.d[..1]);
        }
        let d = &mut self.d[..n];
        let e = &mut self.e[..n];
        d.fill(0.0);
        e.fill(0.0);
        tred2(&mut self.scratch[..n * n], n, d, e, false);
        tqli(d, e, n, None)?;
        // Stable ascending sort matches the full driver's stable index sort,
        // so ties (including ±0.0) land in the same order.
        d.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));
        Ok(&self.d[..n])
    }
}

thread_local! {
    /// Per-thread workspace backing [`symmetric_eigenvalues`], so the hot
    /// pair loops get allocation reuse without threading a workspace
    /// through every call site.
    static VALUES_WORKSPACE: RefCell<EigenWorkspace> = RefCell::new(EigenWorkspace::new());
}

/// Matrices up to this dimension reuse the thread-local workspace; larger
/// one-off solves (e.g. the minimum eigenvalue of a whole `N × N` Gram
/// matrix) get a transient workspace instead, so they cannot pin an
/// `8·N²`-byte scratch to the thread for its lifetime.
pub(crate) const WORKSPACE_DIM_LIMIT: usize = 256;

/// Returns the eigenvalues of a symmetric matrix in ascending order without
/// the eigenvectors.
///
/// This is a true values-only driver: it skips the orthogonal-transform
/// accumulation in the Householder phase and the eigenvector row-rotations
/// in the QL sweep (≈2–4× fewer flops than [`symmetric_eigen`]) and never
/// allocates the `n × n` eigenvector matrix — for graph-sized inputs the
/// only per-call allocation is the returned `Vec` (the matrix scratch lives
/// in a thread-local [`EigenWorkspace`]; dimensions above
/// [`WORKSPACE_DIM_LIMIT`] use a transient one). The eigenvalues are
/// bit-identical to the full decomposition's.
pub fn symmetric_eigenvalues(a: &Matrix) -> Result<Vec<f64>> {
    if a.rows() > WORKSPACE_DIM_LIMIT {
        return EigenWorkspace::new().eigenvalues(a).map(<[f64]>::to_vec);
    }
    VALUES_WORKSPACE.with(|ws| ws.borrow_mut().eigenvalues(a).map(<[f64]>::to_vec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let m = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let eig = symmetric_eigen(&m).unwrap();
        assert_close(eig.eigenvalues[0], -1.0, 1e-10);
        assert_close(eig.eigenvalues[1], 2.0, 1e-10);
        assert_close(eig.eigenvalues[2], 3.0, 1e-10);
    }

    #[test]
    fn two_by_two_known_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = symmetric_eigen(&m).unwrap();
        assert_close(eig.eigenvalues[0], 1.0, 1e-10);
        assert_close(eig.eigenvalues[1], 3.0, 1e-10);
    }

    #[test]
    fn path_graph_laplacian_spectrum() {
        // Laplacian of the path P3: eigenvalues 0, 1, 3.
        let l = Matrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ])
        .unwrap();
        let eig = symmetric_eigen(&l).unwrap();
        assert_close(eig.eigenvalues[0], 0.0, 1e-9);
        assert_close(eig.eigenvalues[1], 1.0, 1e-9);
        assert_close(eig.eigenvalues[2], 3.0, 1e-9);
    }

    #[test]
    fn reconstruction_roundtrip() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.5],
            vec![2.0, 0.0, 5.0, 1.0],
            vec![0.5, 1.5, 1.0, 2.0],
        ])
        .unwrap();
        let eig = symmetric_eigen(&m).unwrap();
        let r = eig.reconstruct();
        assert!((&r - &m).max_abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let eig = symmetric_eigen(&m).unwrap();
        let q = &eig.eigenvectors;
        let qtq = q.transpose().matmul(q).unwrap();
        assert!((&qtq - &Matrix::identity(3)).max_abs() < 1e-9);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.3, 0.2],
            vec![0.3, 2.0, 0.1],
            vec![0.2, 0.1, 3.0],
        ])
        .unwrap();
        let eig = symmetric_eigen(&m).unwrap();
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert_close(sum, m.trace(), 1e-9);
    }

    #[test]
    fn map_spectrum_computes_matrix_square() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = symmetric_eigen(&m).unwrap();
        let sq = eig.map_spectrum(|l| l * l);
        let direct = m.matmul(&m).unwrap();
        assert!((&sq - &direct).max_abs() < 1e-9);
    }

    #[test]
    fn eigenspaces_group_repeated_eigenvalues() {
        // The complete graph K3 Laplacian has eigenvalues {0, 3, 3}.
        let l = Matrix::from_rows(&[
            vec![2.0, -1.0, -1.0],
            vec![-1.0, 2.0, -1.0],
            vec![-1.0, -1.0, 2.0],
        ])
        .unwrap();
        let eig = symmetric_eigen(&l).unwrap();
        let spaces = eig.eigenspaces(1e-8);
        assert_eq!(spaces.len(), 2);
        assert_eq!(spaces[0].1.len(), 1);
        assert_eq!(spaces[1].1.len(), 2);
    }

    #[test]
    fn rejects_asymmetric_and_rectangular() {
        let r = Matrix::zeros(2, 3);
        assert!(symmetric_eigen(&r).is_err());
        let a = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn empty_and_singleton() {
        let e = symmetric_eigen(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
        let s = symmetric_eigen(&Matrix::from_diag(&[7.0])).unwrap();
        assert_eq!(s.eigenvalues, vec![7.0]);
        assert_eq!(s.min_eigenvalue(), 7.0);
        assert_eq!(s.max_eigenvalue(), 7.0);
    }

    #[test]
    fn eigenvalues_only_helper() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let vals = symmetric_eigenvalues(&m).unwrap();
        assert_close(vals[0], 1.0, 1e-10);
        assert_close(vals[1], 3.0, 1e-10);
    }

    /// Deterministic pseudo-random symmetric matrix (LCG fill).
    fn lcg_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    #[test]
    fn values_only_driver_is_bit_identical_to_full() {
        for (n, seed) in [(2usize, 1u64), (5, 7), (11, 42), (24, 99)] {
            let m = lcg_symmetric(n, seed);
            let full = symmetric_eigen(&m).unwrap().eigenvalues;
            let values = symmetric_eigenvalues(&m).unwrap();
            assert_eq!(
                full.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                values.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n} seed={seed}: values-only must match the full driver bit for bit"
            );
        }
        // Degenerate spectra (repeated eigenvalues) too.
        let k3 = Matrix::from_rows(&[
            vec![2.0, -1.0, -1.0],
            vec![-1.0, 2.0, -1.0],
            vec![-1.0, -1.0, 2.0],
        ])
        .unwrap();
        assert_eq!(
            symmetric_eigen(&k3).unwrap().eigenvalues,
            symmetric_eigenvalues(&k3).unwrap()
        );
    }

    #[test]
    fn workspace_reuses_buffers_and_never_builds_the_eigenvector_matrix() {
        let mut ws = EigenWorkspace::new();
        let m = lcg_symmetric(12, 3);
        let first_ptr = {
            let vals = ws.eigenvalues(&m).unwrap();
            assert_eq!(vals.len(), 12);
            vals.as_ptr()
        };
        // The scratch holds exactly one n×n working copy — there is no
        // second eigenvector matrix behind this API.
        let cap_after_first = ws.scratch_capacity();
        assert!(cap_after_first >= 12 * 12);
        assert!(cap_after_first < 2 * 12 * 12, "only one n×n buffer");
        // Repeated solves (same or smaller size) reuse the allocation: the
        // returned slice points into the same buffer and capacity is flat.
        for seed in 0..5 {
            let vals = ws.eigenvalues(&lcg_symmetric(12, seed)).unwrap();
            assert_eq!(vals.as_ptr(), first_ptr, "d buffer must be reused");
        }
        let small = ws.eigenvalues(&lcg_symmetric(5, 8)).unwrap();
        assert_eq!(small.len(), 5);
        assert_eq!(ws.scratch_capacity(), cap_after_first);
    }

    #[test]
    fn workspace_validates_like_the_full_driver() {
        let mut ws = EigenWorkspace::new();
        assert!(ws.eigenvalues(&Matrix::zeros(2, 3)).is_err());
        let asym = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]).unwrap();
        assert!(ws.eigenvalues(&asym).is_err());
        assert!(ws.eigenvalues(&Matrix::zeros(0, 0)).unwrap().is_empty());
        assert_eq!(ws.eigenvalues(&Matrix::from_diag(&[7.0])).unwrap(), &[7.0]);
    }

    #[test]
    fn larger_random_symmetric_roundtrip() {
        // Deterministic pseudo-random symmetric matrix (no rand dependency in
        // unit tests): linear congruential fill.
        let n = 20;
        let mut state: u64 = 42;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = next();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        let eig = symmetric_eigen(&m).unwrap();
        assert!((&eig.reconstruct() - &m).max_abs() < 1e-8);
        // Ascending order.
        for w in eig.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
