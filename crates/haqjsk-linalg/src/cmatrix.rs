//! Dense complex matrices for the finite-time CTQW evolution.
//!
//! [`CMatrix`] mirrors the real [`Matrix`](crate::Matrix) API for the small
//! set of operations the quantum-walk simulation needs: construction from a
//! real matrix, multiplication, conjugate transpose, outer products of state
//! vectors and extraction of the real part (the time-averaged density matrix
//! of a CTQW is real symmetric even though the instantaneous states are
//! complex).

use crate::complex::Complex;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;
use std::ops::{Add, Index, IndexMut};

/// A dense row-major matrix of complex values.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows x cols` complex matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` complex identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Lifts a real matrix into the complex domain.
    pub fn from_real(m: &Matrix) -> Self {
        let data = m.data().iter().map(|&x| Complex::real(x)).collect();
        CMatrix {
            rows: m.rows(),
            cols: m.cols(),
            data,
        }
    }

    /// Builds the diagonal matrix `diag(e^{-i λ_k t})` used in the CTQW
    /// evolution operator `Φᵀ e^{-iΛt} Φ`.
    pub fn evolution_diagonal(eigenvalues: &[f64], t: f64) -> Self {
        let n = eigenvalues.len();
        let mut m = CMatrix::zeros(n, n);
        for (k, &lambda) in eigenvalues.iter().enumerate() {
            m[(k, k)] = Complex::cis(-lambda * t);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Matrix product.
    pub fn matmul(&self, other: &CMatrix) -> Result<CMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "complex matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = CMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..other.cols {
                    let prod = a * other.data[k * other.cols + j];
                    out.data[i * other.cols + j] += prod;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[Complex]) -> Result<Vec<Complex>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "complex matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let out = (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .zip(v)
                    .fold(Complex::ZERO, |acc, (&a, &b)| acc + a * b)
            })
            .collect();
        Ok(out)
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn conj_transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Elementwise real part as a real matrix.
    pub fn real_part(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|z| z.re).collect(),
        )
        .expect("shape is consistent by construction")
    }

    /// Elementwise imaginary part as a real matrix.
    pub fn imag_part(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|z| z.im).collect(),
        )
        .expect("shape is consistent by construction")
    }

    /// Maximum modulus of any entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, z| acc.max(z.abs()))
    }

    /// Trace of a square complex matrix.
    pub fn trace(&self) -> Complex {
        let n = self.rows.min(self.cols);
        let mut t = Complex::ZERO;
        for i in 0..n {
            t += self[(i, i)];
        }
        t
    }

    /// Scales all entries by a complex factor.
    pub fn scale(&self, s: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Whether the matrix is unitary within `tol` (i.e. `U U† ≈ I`).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let prod = match self.matmul(&self.conj_transpose()) {
            Ok(p) => p,
            Err(_) => return false,
        };
        let id = CMatrix::identity(self.rows);
        prod.data
            .iter()
            .zip(id.data.iter())
            .all(|(a, b)| (*a - *b).abs() <= tol)
    }
}

/// Outer product `|ψ⟩⟨ψ|` of a complex state vector with itself, the building
/// block of density matrices.
pub fn outer_product(psi: &[Complex]) -> CMatrix {
    let n = psi.len();
    let mut out = CMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = psi[i] * psi[j].conj();
        }
    }
    out
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &Complex {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut Complex {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "complex addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_real_and_parts() {
        let r = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let c = CMatrix::from_real(&r);
        assert_eq!(c.real_part(), r);
        assert_eq!(c.imag_part().max_abs(), 0.0);
        assert_eq!(c[(1, 0)], Complex::real(3.0));
    }

    #[test]
    fn identity_is_unitary() {
        assert!(CMatrix::identity(4).is_unitary(1e-12));
    }

    #[test]
    fn evolution_diagonal_is_unitary() {
        let u = CMatrix::evolution_diagonal(&[0.0, 1.0, 2.5, 4.0], 1.7);
        assert!(u.is_unitary(1e-12));
        // At t = 0 the evolution operator is the identity.
        let u0 = CMatrix::evolution_diagonal(&[0.0, 1.0, 2.5, 4.0], 0.0);
        assert!((&u0.real_part() - &Matrix::identity(4)).max_abs() < 1e-12);
    }

    #[test]
    fn matmul_matches_real_matmul_for_real_input() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 0.0]]).unwrap();
        let cc = CMatrix::from_real(&a)
            .matmul(&CMatrix::from_real(&b))
            .unwrap();
        let rr = a.matmul(&b).unwrap();
        assert!((&cc.real_part() - &rr).max_abs() < 1e-12);
        assert_eq!(cc.imag_part().max_abs(), 0.0);
    }

    #[test]
    fn conj_transpose_involution() {
        let mut m = CMatrix::zeros(2, 3);
        m[(0, 1)] = Complex::new(1.0, 2.0);
        m[(1, 2)] = Complex::new(-0.5, 0.25);
        let back = m.conj_transpose().conj_transpose();
        assert_eq!(back, m);
        assert_eq!(m.conj_transpose()[(1, 0)], Complex::new(1.0, -2.0));
    }

    #[test]
    fn outer_product_is_hermitian_with_unit_trace_for_unit_state() {
        let inv_sqrt2 = 1.0 / 2.0_f64.sqrt();
        let psi = vec![Complex::new(inv_sqrt2, 0.0), Complex::new(0.0, inv_sqrt2)];
        let rho = outer_product(&psi);
        // Hermitian: rho == rho†
        assert_eq!(rho.conj_transpose(), rho);
        // Unit trace for a normalised state.
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.trace().im.abs() < 1e-12);
    }

    #[test]
    fn matvec_and_scale() {
        let m = CMatrix::identity(2).scale(Complex::I);
        let v = vec![Complex::real(1.0), Complex::real(2.0)];
        let out = m.matvec(&v).unwrap();
        assert!(out[0].approx_eq(Complex::new(0.0, 1.0), 1e-12));
        assert!(out[1].approx_eq(Complex::new(0.0, 2.0), 1e-12));
        assert!(m.matvec(&[Complex::ONE]).is_err());
    }

    #[test]
    fn addition_and_trace() {
        let a = CMatrix::identity(3);
        let b = &a + &a;
        assert!((b.trace().re - 6.0).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
        assert!(!a.is_unitary(1e-12));
    }
}
