//! Small helpers for `Vec<f64>`-based vectors.
//!
//! The clustering, depth-based representation and evaluation code all operate
//! on plain `&[f64]` slices; these free functions provide the handful of
//! operations they need (norms, distances, normalisation, dot products)
//! without introducing a dedicated vector type.

/// Dot product of two equal-length slices.
///
/// Panics if the lengths differ (callers always control both operands).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length slices.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Sum of the entries.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Normalises the slice to unit L2 norm in place. Leaves the all-zero vector
/// untouched.
pub fn normalize_l2(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Normalises the slice to unit L1 mass (a probability distribution) in
/// place. Leaves the all-zero vector untouched.
pub fn normalize_l1(a: &mut [f64]) {
    let s: f64 = a.iter().map(|x| x.abs()).sum();
    if s > 0.0 {
        for x in a.iter_mut() {
            *x /= s;
        }
    }
}

/// `a + b` elementwise.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector addition length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// `a - b` elementwise.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector subtraction length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// `a * s` elementwise.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Index of the maximum entry (first one on ties); `None` for empty input.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in a.iter().enumerate() {
        if x > a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum entry (first one on ties); `None` for empty input.
pub fn argmin(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in a.iter().enumerate() {
        if x < a[best] {
            best = i;
        }
    }
    Some(best)
}

/// Shannon entropy (natural log) of a non-negative vector that is treated as
/// an unnormalised distribution. Zero entries contribute zero.
pub fn shannon_entropy(p: &[f64]) -> f64 {
    let total: f64 = p.iter().filter(|&&x| x > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &x in p {
        if x > 0.0 {
            let q = x / total;
            h -= q * q.ln();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert!((distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sums_and_means() {
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn normalization() {
        let mut v = vec![3.0, 4.0];
        normalize_l2(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
        let mut p = vec![2.0, 2.0, 4.0];
        normalize_l1(&mut p);
        assert!((sum(&p) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_l2(&mut z);
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(scale(&[1.0, 2.0], 3.0), vec![3.0, 6.0]);
    }

    #[test]
    fn arg_extrema() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0, 0.5]), Some(3));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
        // First index wins on ties.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn entropy_properties() {
        // Uniform distribution over 4 outcomes has entropy ln(4).
        let h = shannon_entropy(&[1.0, 1.0, 1.0, 1.0]);
        assert!((h - 4.0_f64.ln()).abs() < 1e-12);
        // Deterministic distribution has zero entropy.
        assert_eq!(shannon_entropy(&[1.0, 0.0, 0.0]), 0.0);
        // Empty / all-zero input is defined as zero.
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[0.0, 0.0]), 0.0);
        // Entropy is invariant to scaling the unnormalised counts.
        let a = shannon_entropy(&[1.0, 2.0, 3.0]);
        let b = shannon_entropy(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }
}
