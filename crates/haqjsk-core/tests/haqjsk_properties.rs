//! Property-based tests of the HAQJSK kernels' theoretical guarantees on
//! randomly generated datasets: positive semidefiniteness of the Gram
//! matrix, permutation invariance, symmetry and boundedness, plus shape
//! invariants of the intermediate aligned structures.

use haqjsk_core::aligned::{aligned_adjacency_family, aligned_density_family};
use haqjsk_core::correspondence::GraphCorrespondences;
use haqjsk_core::db_representation::DbRepresentations;
use haqjsk_core::{HaqjskConfig, HaqjskModel, HaqjskVariant, PrototypeHierarchy};
use haqjsk_graph::generators::{barabasi_albert, erdos_renyi, random_tree, watts_strogatz};
use haqjsk_graph::Graph;
use proptest::prelude::*;

fn random_dataset(seed: u64, count: usize) -> Vec<Graph> {
    (0..count)
        .map(|i| {
            let s = seed.wrapping_mul(97).wrapping_add(i as u64);
            match i % 4 {
                0 => erdos_renyi(6 + i % 4, 0.4, s),
                1 => barabasi_albert(7 + i % 3, 2, s),
                2 => watts_strogatz(8 + i % 3, 4, 0.3, s),
                _ => random_tree(6 + i % 5, s),
            }
        })
        .collect()
}

fn tiny_config() -> HaqjskConfig {
    HaqjskConfig {
        hierarchy_levels: 2,
        num_prototypes: 8,
        layer_cap: 3,
        kmeans_max_iterations: 15,
        ..HaqjskConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Aligned structures have the prototype-determined fixed shape, conserve
    /// adjacency mass, and the aligned densities are valid quantum states.
    #[test]
    fn aligned_structures_shape_and_mass(seed in 0u64..300) {
        let graphs = random_dataset(seed, 5);
        let reps = DbRepresentations::compute_auto(&graphs, 3);
        let config = tiny_config();
        let hierarchy = PrototypeHierarchy::build(&reps, &config);
        for (gi, graph) in graphs.iter().enumerate() {
            let corr = GraphCorrespondences::compute(&reps, gi, &hierarchy);
            let adjacency_family = aligned_adjacency_family(graph, &corr);
            for (h, aligned) in adjacency_family.iter().enumerate() {
                let m = hierarchy.prototypes_at(h + 1, 1);
                prop_assert_eq!(aligned.shape(), (m, m));
                prop_assert!(aligned.is_symmetric(1e-9));
                prop_assert!((aligned.sum() - graph.adjacency_matrix().sum()).abs() < 1e-8);
            }
            let density_family = aligned_density_family(graph, &corr).unwrap();
            for rho in &density_family {
                prop_assert!((rho.matrix().trace() - 1.0).abs() < 1e-8);
                prop_assert!(rho.spectrum().iter().all(|&l| l >= -1e-7));
            }
        }
    }

    /// The fitted model's Gram matrix is PSD and its entries obey symmetry
    /// and the self-similarity bound.
    #[test]
    fn gram_matrix_properties(seed in 0u64..300) {
        let graphs = random_dataset(seed, 6);
        let model = HaqjskModel::fit(&graphs, tiny_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let gram = model.gram_matrix(&graphs).unwrap();
        prop_assert!(gram.is_positive_semidefinite(1e-6).unwrap());
        let bound = model.max_kernel_value();
        for i in 0..graphs.len() {
            prop_assert!((gram.get(i, i) - bound).abs() < 1e-8);
            for j in 0..graphs.len() {
                prop_assert!((gram.get(i, j) - gram.get(j, i)).abs() < 1e-10);
                prop_assert!(gram.get(i, j) > 0.0);
                prop_assert!(gram.get(i, j) <= bound + 1e-8);
            }
        }
    }

    /// Permutation invariance of the kernel value for arbitrary relabellings.
    #[test]
    fn permutation_invariance(seed in 0u64..300, perm_seed in 0u64..50) {
        let graphs = random_dataset(seed, 5);
        let model = HaqjskModel::fit(&graphs, tiny_config(), HaqjskVariant::AlignedDensity).unwrap();
        let target = &graphs[0];
        let n = target.num_vertices();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = perm_seed + 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let relabelled = target.permute(&perm).unwrap();
        for other in &graphs {
            let before = model.kernel_between(target, other).unwrap();
            let after = model.kernel_between(&relabelled, other).unwrap();
            prop_assert!((before - after).abs() < 1e-8);
        }
    }

    /// Fitting is deterministic: the same dataset, config and seed give the
    /// same Gram matrix.
    #[test]
    fn fitting_is_deterministic(seed in 0u64..200) {
        let graphs = random_dataset(seed, 5);
        let a = HaqjskModel::fit(&graphs, tiny_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let b = HaqjskModel::fit(&graphs, tiny_config(), HaqjskVariant::AlignedAdjacency).unwrap();
        let ga = a.gram_matrix(&graphs).unwrap();
        let gb = b.gram_matrix(&graphs).unwrap();
        prop_assert!((ga.matrix() - gb.matrix()).max_abs() < 1e-12);
    }
}
