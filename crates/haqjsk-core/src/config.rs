//! Configuration of the HAQJSK kernels.

/// Which of the two HAQJSK kernels to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaqjskVariant {
    /// HAQJSK(A): CTQW densities of the hierarchical transitive **aligned
    /// adjacency matrices** (Definition 3.1, Eq. 26–28).
    AlignedAdjacency,
    /// HAQJSK(D): the hierarchical transitive **aligned density matrices** of
    /// the CTQW evolved on the original graphs (Definition 3.2, Eq. 29–31).
    AlignedDensity,
}

impl HaqjskVariant {
    /// Short name used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            HaqjskVariant::AlignedAdjacency => "HAQJSK(A)",
            HaqjskVariant::AlignedDensity => "HAQJSK(D)",
        }
    }
}

/// Hyper-parameters of the HAQJSK kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct HaqjskConfig {
    /// Greatest hierarchy level `H` (the paper uses 5).
    pub hierarchy_levels: usize,
    /// Number of 1-level prototypes `M = |P^{1,k}|` (the paper uses 256; the
    /// effective number is capped by the number of vertex representations in
    /// the dataset).
    pub num_prototypes: usize,
    /// Factor by which the prototype count shrinks per hierarchy level
    /// (`|P^{h}| = max(round(M · shrink^{h-1}), min_prototypes)`); Fig. 2 of
    /// the paper shows strictly coarser prototype sets at deeper levels.
    pub level_shrink: f64,
    /// Lower bound on the prototype count at any level.
    pub min_prototypes: usize,
    /// Largest expansion-subgraph layer `K`. `None` uses the greatest
    /// shortest-path length over the dataset, capped by `layer_cap`.
    pub max_layers: Option<usize>,
    /// Cap applied to the automatically derived `K`.
    pub layer_cap: usize,
    /// Maximum number of κ-means iterations per level.
    pub kmeans_max_iterations: usize,
    /// Seed driving κ-means initialisation (the whole pipeline is
    /// deterministic given the seed).
    pub seed: u64,
    /// Decay factor applied inside `exp(-μ · D_QJS)`; the paper uses 1.
    pub mu: f64,
}

impl Default for HaqjskConfig {
    fn default() -> Self {
        HaqjskConfig {
            hierarchy_levels: 5,
            num_prototypes: 256,
            level_shrink: 0.5,
            min_prototypes: 2,
            max_layers: None,
            layer_cap: 6,
            kmeans_max_iterations: 50,
            seed: 42,
            mu: 1.0,
        }
    }
}

impl HaqjskConfig {
    /// A small configuration suitable for unit tests and quick examples:
    /// fewer prototypes and hierarchy levels, so kernels stay fast on tiny
    /// datasets.
    pub fn small() -> Self {
        HaqjskConfig {
            hierarchy_levels: 3,
            num_prototypes: 16,
            layer_cap: 4,
            kmeans_max_iterations: 25,
            ..Default::default()
        }
    }

    /// Number of prototypes requested at hierarchy level `h` (1-based).
    pub fn prototypes_at_level(&self, h: usize) -> usize {
        assert!(h >= 1, "hierarchy levels are 1-based");
        let scaled = self.num_prototypes as f64 * self.level_shrink.powi(h as i32 - 1);
        (scaled.round() as usize).max(self.min_prototypes)
    }

    /// Validates the configuration, returning a human-readable error when a
    /// parameter is out of its valid domain.
    pub fn validate(&self) -> Result<(), String> {
        if self.hierarchy_levels == 0 {
            return Err("hierarchy_levels must be at least 1".to_string());
        }
        if self.num_prototypes < self.min_prototypes {
            return Err(format!(
                "num_prototypes ({}) must be at least min_prototypes ({})",
                self.num_prototypes, self.min_prototypes
            ));
        }
        if self.min_prototypes == 0 {
            return Err("min_prototypes must be at least 1".to_string());
        }
        if !(0.0..=1.0).contains(&self.level_shrink) || self.level_shrink == 0.0 {
            return Err("level_shrink must lie in (0, 1]".to_string());
        }
        if self.layer_cap == 0 && self.max_layers.is_none() {
            return Err("layer_cap must be positive when max_layers is automatic".to_string());
        }
        if let Some(k) = self.max_layers {
            if k == 0 {
                return Err("max_layers must be at least 1 when given".to_string());
            }
        }
        if self.mu <= 0.0 {
            return Err("mu must be positive".to_string());
        }
        if self.kmeans_max_iterations == 0 {
            return Err("kmeans_max_iterations must be at least 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = HaqjskConfig::default();
        assert_eq!(c.hierarchy_levels, 5);
        assert_eq!(c.num_prototypes, 256);
        assert_eq!(c.mu, 1.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn prototype_counts_shrink_per_level() {
        let c = HaqjskConfig::default();
        assert_eq!(c.prototypes_at_level(1), 256);
        assert_eq!(c.prototypes_at_level(2), 128);
        assert_eq!(c.prototypes_at_level(3), 64);
        // Deep levels saturate at the minimum.
        assert_eq!(c.prototypes_at_level(20), c.min_prototypes);
        let flat = HaqjskConfig {
            level_shrink: 1.0,
            ..Default::default()
        };
        assert_eq!(flat.prototypes_at_level(5), 256);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn level_zero_is_rejected() {
        HaqjskConfig::default().prototypes_at_level(0);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut c = HaqjskConfig::default();
        c.hierarchy_levels = 0;
        assert!(c.validate().is_err());
        let mut c = HaqjskConfig::default();
        c.level_shrink = 0.0;
        assert!(c.validate().is_err());
        let mut c = HaqjskConfig::default();
        c.level_shrink = 1.5;
        assert!(c.validate().is_err());
        let mut c = HaqjskConfig::default();
        c.mu = 0.0;
        assert!(c.validate().is_err());
        let mut c = HaqjskConfig::default();
        c.max_layers = Some(0);
        assert!(c.validate().is_err());
        let mut c = HaqjskConfig::default();
        c.num_prototypes = 1;
        assert!(c.validate().is_err());
        let mut c = HaqjskConfig::default();
        c.kmeans_max_iterations = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_config_is_valid_and_smaller() {
        let c = HaqjskConfig::small();
        assert!(c.validate().is_ok());
        assert!(c.num_prototypes < HaqjskConfig::default().num_prototypes);
        assert!(c.hierarchy_levels < HaqjskConfig::default().hierarchy_levels);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(HaqjskVariant::AlignedAdjacency.label(), "HAQJSK(A)");
        assert_eq!(HaqjskVariant::AlignedDensity.label(), "HAQJSK(D)");
    }
}
